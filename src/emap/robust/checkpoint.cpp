#include "emap/robust/checkpoint.hpp"

#include <fstream>

#include "emap/common/crc32.hpp"
#include "emap/mdb/codec.hpp"

namespace emap::robust {
namespace {

// Framing: magic | u32 version | u64 payload_size | payload | u32 crc.
constexpr std::uint8_t kMagic[4] = {'E', 'M', 'C', 'K'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kTrailerBytes = 4;

[[noreturn]] void reject(const std::string& what) {
  throw CheckpointError("checkpoint: " + what);
}

// A corrupt (but CRC-colliding) or hand-crafted payload must not drive a
// multi-gigabyte allocation: every element count is bounded by the bytes
// that could actually hold it.
void check_count(std::uint64_t count, std::size_t element_bytes,
                 std::size_t total_bytes) {
  if (element_bytes > 0 &&
      count > static_cast<std::uint64_t>(total_bytes) / element_bytes) {
    reject("element count exceeds payload size");
  }
}

void encode_rng(mdb::Encoder& enc, const RngState& rng) {
  for (const std::uint64_t word : rng.state) {
    enc.write_u64(word);
  }
  enc.write_u64(rng.seed);
  enc.write_f64(rng.spare_normal);
  enc.write_u8(rng.has_spare_normal ? 1 : 0);
}

RngState decode_rng(mdb::Decoder& dec) {
  RngState rng;
  for (std::uint64_t& word : rng.state) {
    word = dec.read_u64();
  }
  rng.seed = dec.read_u64();
  rng.spare_normal = dec.read_f64();
  rng.has_spare_normal = dec.read_u8() != 0;
  return rng;
}

void encode_fault_counts(mdb::Encoder& enc, const net::FaultCounts& counts) {
  enc.write_u64(counts.messages);
  enc.write_u64(counts.dropped);
  enc.write_u64(counts.corrupted);
  enc.write_u64(counts.duplicated);
  enc.write_u64(counts.reordered);
  enc.write_u64(counts.delayed);
}

net::FaultCounts decode_fault_counts(mdb::Decoder& dec) {
  net::FaultCounts counts;
  counts.messages = dec.read_u64();
  counts.dropped = dec.read_u64();
  counts.corrupted = dec.read_u64();
  counts.duplicated = dec.read_u64();
  counts.reordered = dec.read_u64();
  counts.delayed = dec.read_u64();
  return counts;
}

void encode_signals(mdb::Encoder& enc,
                    const std::vector<TrackedSignalState>& signals) {
  enc.write_u64(signals.size());
  for (const TrackedSignalState& signal : signals) {
    enc.write_u64(signal.set_id);
    enc.write_f64(signal.omega);
    enc.write_u64(signal.beta);
    enc.write_u8(signal.anomalous ? 1 : 0);
    enc.write_u8(signal.class_tag);
    enc.write_u64(signal.samples.size());
    for (const double sample : signal.samples) {
      enc.write_f64(sample);
    }
  }
}

std::vector<TrackedSignalState> decode_signals(mdb::Decoder& dec,
                                               std::size_t total_bytes) {
  const std::uint64_t count = dec.read_u64();
  // Each signal carries at least its fixed fields.
  check_count(count, 8 + 8 + 8 + 1 + 1 + 8, total_bytes);
  std::vector<TrackedSignalState> signals;
  signals.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TrackedSignalState signal;
    signal.set_id = dec.read_u64();
    signal.omega = dec.read_f64();
    signal.beta = dec.read_u64();
    signal.anomalous = dec.read_u8() != 0;
    signal.class_tag = dec.read_u8();
    const std::uint64_t samples = dec.read_u64();
    check_count(samples, 8, total_bytes);
    signal.samples.reserve(static_cast<std::size_t>(samples));
    for (std::uint64_t s = 0; s < samples; ++s) {
      signal.samples.push_back(dec.read_f64());
    }
    signals.push_back(std::move(signal));
  }
  return signals;
}

void encode_ring(mdb::Encoder& enc, const std::vector<std::uint8_t>& ring) {
  enc.write_u64(ring.size());
  for (const std::uint8_t flag : ring) {
    enc.write_u8(flag);
  }
}

std::vector<std::uint8_t> decode_ring(mdb::Decoder& dec,
                                      std::size_t total_bytes) {
  const std::uint64_t size = dec.read_u64();
  check_count(size, 1, total_bytes);
  std::vector<std::uint8_t> ring;
  ring.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t i = 0; i < size; ++i) {
    ring.push_back(dec.read_u8());
  }
  return ring;
}

void encode_slo(mdb::Encoder& enc, const obs::SloMonitorState& slo) {
  enc.write_u64(slo.observations);
  enc.write_u64(slo.deadline_misses);
  enc.write_u64(slo.near_misses);
  enc.write_f64(slo.max_latency_sec);
  encode_ring(enc, slo.recent_miss);
  enc.write_u64(slo.recent_next);
  enc.write_u64(slo.recent_count);
  enc.write_u64(slo.recent_misses);
}

obs::SloMonitorState decode_slo(mdb::Decoder& dec, std::size_t total_bytes) {
  obs::SloMonitorState slo;
  slo.observations = dec.read_u64();
  slo.deadline_misses = dec.read_u64();
  slo.near_misses = dec.read_u64();
  slo.max_latency_sec = dec.read_f64();
  slo.recent_miss = decode_ring(dec, total_bytes);
  slo.recent_next = dec.read_u64();
  slo.recent_count = dec.read_u64();
  slo.recent_misses = dec.read_u64();
  return slo;
}

void encode_degrade(mdb::Encoder& enc, const DegradeCheckpoint& degrade) {
  enc.write_u8(static_cast<std::uint8_t>(degrade.state));
  enc.write_u64(degrade.shed_level);
  enc.write_u64(degrade.bad_streak);
  enc.write_u64(degrade.clean_streak);
  enc.write_u64(degrade.miss_streak);
  enc.write_u64(degrade.critical_left);
  enc.write_u8(degrade.recovered_since_miss ? 1 : 0);
  enc.write_f64(degrade.pressure_ewma);
  enc.write_u8(static_cast<std::uint8_t>(degrade.summary.final_state));
  enc.write_u64(degrade.summary.transitions);
  enc.write_u64(degrade.summary.windows_nominal);
  enc.write_u64(degrade.summary.windows_degraded);
  enc.write_u64(degrade.summary.windows_critical);
  enc.write_u64(degrade.summary.windows_recovering);
  enc.write_u64(degrade.summary.max_shed_level);
  enc.write_u8(degrade.summary.entered_degraded ? 1 : 0);
}

DegradeState decode_degrade_state(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(DegradeState::kRecovering)) {
    reject("degrade state out of range");
  }
  return static_cast<DegradeState>(raw);
}

DegradeCheckpoint decode_degrade(mdb::Decoder& dec) {
  DegradeCheckpoint degrade;
  degrade.state = decode_degrade_state(dec.read_u8());
  degrade.shed_level = dec.read_u64();
  degrade.bad_streak = dec.read_u64();
  degrade.clean_streak = dec.read_u64();
  degrade.miss_streak = dec.read_u64();
  degrade.critical_left = dec.read_u64();
  degrade.recovered_since_miss = dec.read_u8() != 0;
  degrade.pressure_ewma = dec.read_f64();
  degrade.summary.final_state = decode_degrade_state(dec.read_u8());
  degrade.summary.transitions = dec.read_u64();
  degrade.summary.windows_nominal = dec.read_u64();
  degrade.summary.windows_degraded = dec.read_u64();
  degrade.summary.windows_critical = dec.read_u64();
  degrade.summary.windows_recovering = dec.read_u64();
  degrade.summary.max_shed_level = dec.read_u64();
  degrade.summary.entered_degraded = dec.read_u8() != 0;
  return degrade;
}

void encode_breaker(mdb::Encoder& enc, const BreakerCheckpoint& breaker) {
  enc.write_u8(static_cast<std::uint8_t>(breaker.state));
  enc.write_f64(breaker.open_until_sec);
  enc.write_u64(breaker.probe_successes);
  encode_ring(enc, breaker.recent_failure);
  enc.write_u64(breaker.recent_next);
  enc.write_u64(breaker.recent_count);
  enc.write_u8(static_cast<std::uint8_t>(breaker.summary.final_state));
  enc.write_u64(breaker.summary.opens);
  enc.write_u64(breaker.summary.rejected);
  enc.write_u64(breaker.summary.failures);
  enc.write_u64(breaker.summary.successes);
}

BreakerState decode_breaker_state(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(BreakerState::kHalfOpen)) {
    reject("breaker state out of range");
  }
  return static_cast<BreakerState>(raw);
}

BreakerCheckpoint decode_breaker(mdb::Decoder& dec,
                                 std::size_t total_bytes) {
  BreakerCheckpoint breaker;
  breaker.state = decode_breaker_state(dec.read_u8());
  breaker.open_until_sec = dec.read_f64();
  breaker.probe_successes = dec.read_u64();
  breaker.recent_failure = decode_ring(dec, total_bytes);
  breaker.recent_next = dec.read_u64();
  breaker.recent_count = dec.read_u64();
  breaker.summary.final_state = decode_breaker_state(dec.read_u8());
  breaker.summary.opens = dec.read_u64();
  breaker.summary.rejected = dec.read_u64();
  breaker.summary.failures = dec.read_u64();
  breaker.summary.successes = dec.read_u64();
  return breaker;
}

void encode_injector(mdb::Encoder& enc,
                     const net::FaultInjectorState& injector) {
  encode_rng(enc, injector.up_rng);
  encode_rng(enc, injector.down_rng);
  encode_fault_counts(enc, injector.up_counts);
  encode_fault_counts(enc, injector.down_counts);
  enc.write_u64(injector.up_draws);
  enc.write_u64(injector.down_draws);
}

net::FaultInjectorState decode_injector(mdb::Decoder& dec) {
  net::FaultInjectorState injector;
  injector.up_rng = decode_rng(dec);
  injector.down_rng = decode_rng(dec);
  injector.up_counts = decode_fault_counts(dec);
  injector.down_counts = decode_fault_counts(dec);
  injector.up_draws = dec.read_u64();
  injector.down_draws = dec.read_u64();
  return injector;
}

void encode_pending_call(mdb::Encoder& enc,
                         const PendingCallCheckpoint& pending) {
  enc.write_f64(pending.ready_at_sec);
  enc.write_f64(pending.delta_ec);
  enc.write_f64(pending.delta_cs);
  enc.write_f64(pending.delta_ce);
  enc.write_u32(pending.sequence);
  enc.write_u64(pending.attempts);
  enc.write_u64(pending.duplicates);
  enc.write_u8(pending.succeeded ? 1 : 0);
  enc.write_u64(pending.trace_id);
  enc.write_u64(pending.parent_span);
  encode_signals(enc, pending.correlation_set);
}

PendingCallCheckpoint decode_pending_call(mdb::Decoder& dec,
                                          std::size_t total_bytes) {
  PendingCallCheckpoint pending;
  pending.ready_at_sec = dec.read_f64();
  pending.delta_ec = dec.read_f64();
  pending.delta_cs = dec.read_f64();
  pending.delta_ce = dec.read_f64();
  pending.sequence = dec.read_u32();
  pending.attempts = dec.read_u64();
  pending.duplicates = dec.read_u64();
  pending.succeeded = dec.read_u8() != 0;
  pending.trace_id = dec.read_u64();
  pending.parent_span = dec.read_u64();
  pending.correlation_set = decode_signals(dec, total_bytes);
  return pending;
}

void encode_payload(mdb::Encoder& enc, const SessionState& state) {
  enc.write_string(state.config_fingerprint);
  enc.write_u32(state.input_fingerprint);
  enc.write_u64(state.next_window);
  enc.write_f64(state.last_pa);
  enc.write_u64(static_cast<std::uint64_t>(state.last_loaded_sequence));

  const RunCountersCheckpoint& c = state.counters;
  enc.write_u64(c.cloud_calls);
  enc.write_u64(c.failed_cloud_calls);
  enc.write_u64(c.retry_attempts);
  enc.write_u64(c.duplicates_discarded);
  enc.write_u8(c.degraded ? 1 : 0);
  enc.write_u8(c.first_round_trip_recorded ? 1 : 0);
  enc.write_f64(c.delta_ec_sec);
  enc.write_f64(c.delta_cs_sec);
  enc.write_f64(c.delta_ce_sec);
  enc.write_f64(c.delta_initial_sec);
  enc.write_f64(c.total_track_sec);
  enc.write_u64(c.track_steps);
  enc.write_f64(c.max_track_sec);
  enc.write_u64(c.critical_windows);
  enc.write_u64(c.shed_loads);
  enc.write_u64(c.deferred_flushes);
  enc.write_u64(c.watchdog_trips);
  enc.write_u64(c.quality.assessed);
  enc.write_u64(c.quality.good);
  enc.write_u64(c.quality.nan);
  enc.write_u64(c.quality.flatline);
  enc.write_u64(c.quality.saturated);
  enc.write_u64(c.quality.artifact);

  enc.write_u8(state.tracker.loaded ? 1 : 0);
  enc.write_u64(state.tracker.steps_since_load);
  encode_signals(enc, state.tracker.tracked);

  enc.write_u64(state.predictor.history.size());
  for (const double p : state.predictor.history) {
    enc.write_f64(p);
  }
  enc.write_u8(state.predictor.alarmed ? 1 : 0);
  enc.write_f64(state.predictor.alarm_time_sec);
  enc.write_u64(state.predictor.consecutive);

  enc.write_u64(state.fir.history.size());
  for (const double sample : state.fir.history) {
    enc.write_f64(sample);
  }
  enc.write_u64(state.fir.history_pos);

  enc.write_u8(state.pending.has_value() ? 1 : 0);
  if (state.pending.has_value()) {
    encode_pending_call(enc, *state.pending);
  }

  encode_degrade(enc, state.degrade);
  encode_breaker(enc, state.breaker);
  encode_slo(enc, state.edge_slo);
  encode_slo(enc, state.initial_slo);

  encode_injector(enc, state.injector);
  encode_rng(enc, state.channel_rng);
  enc.write_u64(state.trace_seed);

  // ---- Streaming extension (v3). ----
  enc.write_string(state.stream_fingerprint);
  enc.write_u64(state.completed_calls.size());
  for (const PendingCallCheckpoint& call : state.completed_calls) {
    encode_pending_call(enc, call);
  }
  enc.write_u64(state.replay.size());
  for (const ReplayEntryCheckpoint& entry : state.replay) {
    enc.write_u32(entry.sequence);
    enc.write_f64(entry.t_issue_sec);
    enc.write_u64(entry.trace_id);
    enc.write_u64(entry.parent_span);
  }
  enc.write_u64(state.workers.size());
  for (const WorkerCheckpoint& worker : state.workers) {
    encode_injector(enc, worker.injector);
    encode_rng(enc, worker.channel_rng);
  }
}

SessionState decode_payload(mdb::Decoder& dec, std::size_t total_bytes) {
  SessionState state;
  state.config_fingerprint = dec.read_string();
  state.input_fingerprint = dec.read_u32();
  state.next_window = dec.read_u64();
  state.last_pa = dec.read_f64();
  state.last_loaded_sequence = static_cast<std::int64_t>(dec.read_u64());

  RunCountersCheckpoint& c = state.counters;
  c.cloud_calls = dec.read_u64();
  c.failed_cloud_calls = dec.read_u64();
  c.retry_attempts = dec.read_u64();
  c.duplicates_discarded = dec.read_u64();
  c.degraded = dec.read_u8() != 0;
  c.first_round_trip_recorded = dec.read_u8() != 0;
  c.delta_ec_sec = dec.read_f64();
  c.delta_cs_sec = dec.read_f64();
  c.delta_ce_sec = dec.read_f64();
  c.delta_initial_sec = dec.read_f64();
  c.total_track_sec = dec.read_f64();
  c.track_steps = dec.read_u64();
  c.max_track_sec = dec.read_f64();
  c.critical_windows = dec.read_u64();
  c.shed_loads = dec.read_u64();
  c.deferred_flushes = dec.read_u64();
  c.watchdog_trips = dec.read_u64();
  c.quality.assessed = dec.read_u64();
  c.quality.good = dec.read_u64();
  c.quality.nan = dec.read_u64();
  c.quality.flatline = dec.read_u64();
  c.quality.saturated = dec.read_u64();
  c.quality.artifact = dec.read_u64();

  state.tracker.loaded = dec.read_u8() != 0;
  state.tracker.steps_since_load = dec.read_u64();
  state.tracker.tracked = decode_signals(dec, total_bytes);

  const std::uint64_t history = dec.read_u64();
  check_count(history, 8, total_bytes);
  state.predictor.history.reserve(static_cast<std::size_t>(history));
  for (std::uint64_t i = 0; i < history; ++i) {
    state.predictor.history.push_back(dec.read_f64());
  }
  state.predictor.alarmed = dec.read_u8() != 0;
  state.predictor.alarm_time_sec = dec.read_f64();
  state.predictor.consecutive = dec.read_u64();

  const std::uint64_t taps = dec.read_u64();
  check_count(taps, 8, total_bytes);
  state.fir.history.reserve(static_cast<std::size_t>(taps));
  for (std::uint64_t i = 0; i < taps; ++i) {
    state.fir.history.push_back(dec.read_f64());
  }
  state.fir.history_pos = static_cast<std::size_t>(dec.read_u64());

  if (dec.read_u8() != 0) {
    state.pending = decode_pending_call(dec, total_bytes);
  }

  state.degrade = decode_degrade(dec);
  state.breaker = decode_breaker(dec, total_bytes);
  state.edge_slo = decode_slo(dec, total_bytes);
  state.initial_slo = decode_slo(dec, total_bytes);

  state.injector = decode_injector(dec);
  state.channel_rng = decode_rng(dec);
  state.trace_seed = dec.read_u64();

  // ---- Streaming extension (v3). ----
  state.stream_fingerprint = dec.read_string();
  const std::uint64_t completed = dec.read_u64();
  // Each settled call carries at least its fixed fields.
  check_count(completed, 4 * 8 + 4 + 2 * 8 + 1 + 2 * 8 + 8, total_bytes);
  state.completed_calls.reserve(static_cast<std::size_t>(completed));
  for (std::uint64_t i = 0; i < completed; ++i) {
    state.completed_calls.push_back(decode_pending_call(dec, total_bytes));
  }
  const std::uint64_t replay = dec.read_u64();
  check_count(replay, 4 + 8 + 8 + 8, total_bytes);
  state.replay.reserve(static_cast<std::size_t>(replay));
  for (std::uint64_t i = 0; i < replay; ++i) {
    ReplayEntryCheckpoint entry;
    entry.sequence = dec.read_u32();
    entry.t_issue_sec = dec.read_f64();
    entry.trace_id = dec.read_u64();
    entry.parent_span = dec.read_u64();
    state.replay.push_back(entry);
  }
  const std::uint64_t workers = dec.read_u64();
  // Two injector RNG states alone dominate a worker entry.
  check_count(workers, 2 * (4 * 8 + 8 + 8 + 1), total_bytes);
  state.workers.reserve(static_cast<std::size_t>(workers));
  for (std::uint64_t i = 0; i < workers; ++i) {
    WorkerCheckpoint worker;
    worker.injector = decode_injector(dec);
    worker.channel_rng = decode_rng(dec);
    state.workers.push_back(worker);
  }
  return state;
}

}  // namespace

std::vector<std::uint8_t> encode_session(const SessionState& state) {
  mdb::Encoder payload_enc;
  encode_payload(payload_enc, state);
  const std::vector<std::uint8_t> payload = payload_enc.take();

  mdb::Encoder head;
  for (const std::uint8_t byte : kMagic) {
    head.write_u8(byte);
  }
  head.write_u32(kCheckpointVersion);
  head.write_u64(payload.size());
  std::vector<std::uint8_t> out = head.take();
  out.insert(out.end(), payload.begin(), payload.end());

  mdb::Encoder tail;
  tail.write_u32(crc32(payload.data(), payload.size()));
  const std::vector<std::uint8_t>& crc_bytes = tail.bytes();
  out.insert(out.end(), crc_bytes.begin(), crc_bytes.end());
  return out;
}

SessionState decode_session(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    reject("truncated header");
  }
  try {
    mdb::Decoder dec(bytes);
    for (const std::uint8_t expected : kMagic) {
      if (dec.read_u8() != expected) {
        reject("bad magic");
      }
    }
    const std::uint32_t version = dec.read_u32();
    if (version != kCheckpointVersion) {
      reject("version skew (snapshot v" + std::to_string(version) +
             ", expected v" + std::to_string(kCheckpointVersion) + ")");
    }
    const std::uint64_t payload_size = dec.read_u64();
    if (payload_size != bytes.size() - kHeaderBytes - kTrailerBytes) {
      reject("payload size does not match file size");
    }
    const std::uint32_t computed =
        crc32(bytes.data() + kHeaderBytes,
              static_cast<std::size_t>(payload_size));
    mdb::Decoder crc_dec(bytes);
    crc_dec.seek(kHeaderBytes + static_cast<std::size_t>(payload_size));
    if (crc_dec.read_u32() != computed) {
      reject("CRC mismatch");
    }
    SessionState state = decode_payload(dec, bytes.size());
    if (dec.cursor() != kHeaderBytes + payload_size) {
      reject("payload structure does not match declared size");
    }
    return state;
  } catch (const CheckpointError&) {
    throw;
  } catch (const CorruptData& error) {
    // Decoder truncation and framing errors surface as the typed
    // checkpoint rejection the recovery layer switches on.
    reject(error.what());
  }
}

std::filesystem::path checkpoint_path(const std::filesystem::path& dir) {
  return dir / "session.ckpt";
}

void write_checkpoint(const std::filesystem::path& dir,
                      const SessionState& state,
                      CrashPointRegistry* crashpoints) {
  std::filesystem::create_directories(dir);
  const std::vector<std::uint8_t> bytes = encode_session(state);
  const std::filesystem::path final_path = checkpoint_path(dir);
  const std::filesystem::path temp_path =
      final_path.string() + ".tmp";

  EMAP_CRASH_POINT(crashpoints, "checkpoint_pre_write");
  {
    std::ofstream stream(temp_path, std::ios::binary | std::ios::trunc);
    if (!stream) {
      throw IoError("write_checkpoint: cannot open " + temp_path.string());
    }
    stream.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    stream.flush();
    if (!stream) {
      throw IoError("write_checkpoint: write failed for " +
                    temp_path.string());
    }
  }
  // The rename is the commit point: a crash on either side of it leaves a
  // complete snapshot (old or new) under the final name.
  EMAP_CRASH_POINT(crashpoints, "checkpoint_pre_rename");
  std::error_code rename_error;
  std::filesystem::rename(temp_path, final_path, rename_error);
  if (rename_error) {
    throw IoError("write_checkpoint: rename failed for " +
                  final_path.string() + ": " + rename_error.message());
  }
  EMAP_CRASH_POINT(crashpoints, "checkpoint_post_write");
}

std::optional<SessionState> read_checkpoint(
    const std::filesystem::path& dir) {
  const std::filesystem::path path = checkpoint_path(dir);
  std::error_code exists_error;
  if (!std::filesystem::exists(path, exists_error) || exists_error) {
    return std::nullopt;
  }
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    throw IoError("read_checkpoint: cannot open " + path.string());
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(stream)),
      std::istreambuf_iterator<char>());
  if (stream.bad()) {
    throw IoError("read_checkpoint: read failed for " + path.string());
  }
  return decode_session(bytes);
}

void RecoveryOptions::validate() const {
  require(interval_windows >= 1,
          "RecoveryOptions: interval_windows must be >= 1");
}

}  // namespace emap::robust
