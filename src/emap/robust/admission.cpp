#include "emap/robust/admission.hpp"

#include <algorithm>

#include "emap/common/error.hpp"

namespace emap::robust {

const char* shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kConcurrency:
      return "concurrency";
  }
  return "?";
}

void AdmissionOptions::validate() const {
  require(max_queue_depth >= 1,
          "AdmissionOptions: max_queue_depth must be >= 1");
  require(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
          "AdmissionOptions: ewma_alpha must be in (0, 1]");
  require(initial_service_sec > 0.0,
          "AdmissionOptions: initial_service_sec must be > 0");
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         std::size_t workers,
                                         obs::MetricsRegistry* registry)
    : options_(options),
      workers_(std::max<std::size_t>(1, workers)),
      ewma_service_sec_(options.initial_service_sec),
      registry_(registry) {
  options_.validate();
  if (registry_ != nullptr) {
    queue_metric_ = &registry_->gauge(
        "emap_robust_admission_queue_depth", {},
        "Requests admitted and waiting for a worker");
    ewma_metric_ = &registry_->gauge(
        "emap_robust_admission_service_ewma_seconds", {},
        "EWMA of the observed per-request scan time");
    admitted_metric_ = &registry_->counter(
        "emap_robust_admission_decisions_total", {{"decision", "admitted"}},
        "Admission decisions by outcome");
    ewma_metric_->set(ewma_service_sec_);
  }
}

double AdmissionController::expected_wait_locked() const {
  return static_cast<double>(queued_) * ewma_service_sec_ /
         static_cast<double>(workers_);
}

void AdmissionController::shed_locked(AdmissionDecision& decision,
                                      ShedReason reason) {
  decision.accepted = false;
  decision.reason = reason;
  // Hint: by then the backlog ahead should have drained one worker slot.
  decision.retry_after_sec =
      std::max(expected_wait_locked(), ewma_service_sec_);
  switch (reason) {
    case ShedReason::kQueueFull:
      ++summary_.shed_queue_full;
      break;
    case ShedReason::kDeadline:
      ++summary_.shed_deadline;
      break;
    case ShedReason::kConcurrency:
      ++summary_.shed_concurrency;
      break;
    case ShedReason::kNone:
      break;
  }
  if (registry_ != nullptr) {
    registry_
        ->counter("emap_robust_admission_decisions_total",
                  {{"decision", shed_reason_name(reason)}},
                  "Admission decisions by outcome")
        .increment();
  }
}

AdmissionDecision AdmissionController::try_admit(
    double remaining_deadline_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionDecision decision;
  ++summary_.submitted;
  if (queued_ >= options_.max_queue_depth) {
    shed_locked(decision, ShedReason::kQueueFull);
    return decision;
  }
  if (options_.max_concurrency > 0 &&
      in_service_ >= options_.max_concurrency &&
      queued_ + 1 >= options_.max_queue_depth) {
    shed_locked(decision, ShedReason::kConcurrency);
    return decision;
  }
  // Deadline-aware shedding: admitting a request that cannot finish in
  // time only wastes a worker on an answer nobody will read.
  if (expected_wait_locked() + ewma_service_sec_ > remaining_deadline_sec) {
    shed_locked(decision, ShedReason::kDeadline);
    return decision;
  }
  ++queued_;
  ++summary_.admitted;
  if (queue_metric_ != nullptr) {
    queue_metric_->set(static_cast<double>(queued_));
  }
  if (admitted_metric_ != nullptr) {
    admitted_metric_->increment();
  }
  return decision;
}

void AdmissionController::on_start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queued_ > 0) {
    --queued_;
  }
  ++in_service_;
  if (queue_metric_ != nullptr) {
    queue_metric_->set(static_cast<double>(queued_));
  }
}

void AdmissionController::on_complete(double service_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_service_ > 0) {
    --in_service_;
  }
  ewma_service_sec_ = options_.ewma_alpha * std::max(service_sec, 0.0) +
                      (1.0 - options_.ewma_alpha) * ewma_service_sec_;
  if (ewma_metric_ != nullptr) {
    ewma_metric_->set(ewma_service_sec_);
  }
}

double AdmissionController::expected_service_sec() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ewma_service_sec_;
}

double AdmissionController::expected_wait_sec() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return expected_wait_locked();
}

std::size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t AdmissionController::in_service() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_service_;
}

AdmissionSummary AdmissionController::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

}  // namespace emap::robust
