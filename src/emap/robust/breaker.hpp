// Per-link circuit breaker for cloud calls.
//
// PR 2 gave the edge retries; retries on a *flapping* link are worse than
// nothing — every logical call burns max_attempts timeouts before
// degrading, so the edge pays the full timeout tax again and again.  The
// breaker is the classic three-state fix: CLOSED counts failures over a
// rolling outcome window and trips OPEN when too many accumulate; OPEN
// short-circuits cloud calls instantly (the pipeline keeps tracking its
// stale set at zero extra latency) until a SimTime cooldown expires;
// HALF_OPEN lets probe calls through and closes again only after a
// configurable run of successes.  allow() at any instant at or past the
// cooldown expiry always admits a probe, so the breaker can never stay
// OPEN forever — a property test holds it to that.
//
// Driven by SimTime, so trips and recoveries replay bit-for-bit.
// Thread-safe (mutex) for the cross-thread overload tests.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "emap/obs/metrics.hpp"

namespace emap::robust {

/// Breaker states.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Lowercase state label ("closed", "open", "half_open").
const char* breaker_state_name(BreakerState state);

/// Breaker tuning knobs.
struct BreakerOptions {
  /// Rolling window of recent call outcomes consulted in CLOSED.
  std::size_t window = 8;
  /// Failures within the window that trip the breaker OPEN.
  std::size_t open_after_failures = 4;
  /// SimTime seconds OPEN before the first HALF_OPEN probe is admitted.
  double cooldown_sec = 5.0;
  /// Consecutive probe successes in HALF_OPEN required to close.
  std::size_t half_open_successes = 2;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// Counters embeddable in the RunResult robustness summary.
struct BreakerSummary {
  BreakerState final_state = BreakerState::kClosed;
  std::size_t opens = 0;     ///< transitions into OPEN
  std::size_t rejected = 0;  ///< calls short-circuited while OPEN
  std::size_t failures = 0;
  std::size_t successes = 0;
};

/// Serializable breaker state (checkpoint support): the state machine, the
/// rolling outcome ring, and the cumulative counters, so a restored breaker
/// trips/recovers exactly as the uninterrupted one would.
struct BreakerCheckpoint {
  BreakerState state = BreakerState::kClosed;
  double open_until_sec = 0.0;
  std::uint64_t probe_successes = 0;
  std::vector<std::uint8_t> recent_failure;  ///< ring, 1 = failure
  std::uint64_t recent_next = 0;
  std::uint64_t recent_count = 0;
  BreakerSummary summary{};
};

/// Closed/open/half-open circuit breaker over one edge->cloud link.
class CircuitBreaker {
 public:
  /// `registry` is borrowed and may be null (summary-only operation).
  explicit CircuitBreaker(BreakerOptions options = {},
                          obs::MetricsRegistry* registry = nullptr);

  /// Whether a call may be issued at SimTime `now_sec`.  In OPEN this is
  /// where the cooldown expiry is checked: at or past it the breaker moves
  /// to HALF_OPEN and admits the probe.
  bool allow(double now_sec);

  /// Records the outcome of an admitted call that completed at `now_sec`.
  void record_success(double now_sec);
  void record_failure(double now_sec);

  BreakerState state() const;
  /// SimTime at which OPEN admits its first probe (0 when not OPEN).
  double open_until_sec() const;

  /// Advertised retry horizon at SimTime `now_sec`: the remaining OPEN
  /// cooldown, 0 when not OPEN.  The edge feeds this into
  /// RetryPolicy::backoff_for as the RetryAfter hint, so retries against a
  /// tripped link wait out the cooldown instead of hammering it.
  double retry_after_hint(double now_sec) const;

  BreakerSummary summary() const;
  const BreakerOptions& options() const { return options_; }

  /// Captures the restorable state (checkpoint support).
  BreakerCheckpoint checkpoint() const;

  /// Restores a saved state.  Throws InvalidArgument when the saved ring
  /// does not match this breaker's window.
  void restore(const BreakerCheckpoint& saved);

 private:
  void trip_locked(double now_sec);
  std::size_t window_failures_locked() const;

  BreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_ = 0.0;
  std::size_t probe_successes_ = 0;
  // Rolling ring of recent outcomes (true = failure) in CLOSED.
  std::vector<bool> recent_failure_;
  std::size_t recent_next_ = 0;
  std::size_t recent_count_ = 0;
  BreakerSummary summary_;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::Gauge* state_metric_ = nullptr;
  obs::Counter* opens_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
};

}  // namespace emap::robust
