#include "emap/robust/robust.hpp"

#include <fstream>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"

namespace emap::robust {

void RobustOptions::validate() const {
  degrade.validate();
  breaker.validate();
  watchdog.validate();
  quality.validate();
}

std::string robust_summary_json(const RobustSummary& summary) {
  obs::JsonWriter writer;
  writer.field("enabled", summary.enabled)
      .field("final_state",
             std::string(degrade_state_name(summary.degrade.final_state)))
      .field("transitions",
             static_cast<std::uint64_t>(summary.degrade.transitions))
      .field("windows_nominal",
             static_cast<std::uint64_t>(summary.degrade.windows_nominal))
      .field("windows_degraded",
             static_cast<std::uint64_t>(summary.degrade.windows_degraded))
      .field("windows_critical",
             static_cast<std::uint64_t>(summary.degrade.windows_critical))
      .field("windows_recovering",
             static_cast<std::uint64_t>(summary.degrade.windows_recovering))
      .field("max_shed_level",
             static_cast<std::uint64_t>(summary.degrade.max_shed_level))
      .field("entered_degraded", summary.degrade.entered_degraded)
      .field("breaker_state",
             std::string(breaker_state_name(summary.breaker.final_state)))
      .field("breaker_opens",
             static_cast<std::uint64_t>(summary.breaker.opens))
      .field("breaker_rejected",
             static_cast<std::uint64_t>(summary.breaker.rejected))
      .field("breaker_failures",
             static_cast<std::uint64_t>(summary.breaker.failures))
      .field("breaker_successes",
             static_cast<std::uint64_t>(summary.breaker.successes))
      .field("quality_assessed",
             static_cast<std::uint64_t>(summary.quality.assessed))
      .field("quality_bad", static_cast<std::uint64_t>(summary.quality.bad()))
      .field("quality_nan", static_cast<std::uint64_t>(summary.quality.nan))
      .field("quality_flatline",
             static_cast<std::uint64_t>(summary.quality.flatline))
      .field("quality_saturated",
             static_cast<std::uint64_t>(summary.quality.saturated))
      .field("quality_artifact",
             static_cast<std::uint64_t>(summary.quality.artifact))
      .field("watchdog_trips",
             static_cast<std::uint64_t>(summary.watchdog_trips))
      .field("critical_windows",
             static_cast<std::uint64_t>(summary.critical_windows))
      .field("shed_loads", static_cast<std::uint64_t>(summary.shed_loads))
      .field("deferred_flushes",
             static_cast<std::uint64_t>(summary.deferred_flushes))
      .field("recovery_enabled", summary.recovery.enabled)
      .field("recovery_resumed", summary.recovery.resumed)
      .field("recovery_resume_window",
             static_cast<std::uint64_t>(summary.recovery.resume_window))
      .field("recovery_checkpoints_written",
             static_cast<std::uint64_t>(summary.recovery.checkpoints_written))
      .field("recovery_cold_start_fallback",
             summary.recovery.cold_start_fallback)
      .field("recovery_reject_reason", summary.recovery.reject_reason)
      .field("checkpoint_last_snapshot_window",
             static_cast<std::uint64_t>(summary.recovery.last_snapshot_window))
      .field("checkpoint_drain_timeouts",
             static_cast<std::uint64_t>(summary.recovery.drain_timeouts))
      .field("checkpoint_replay_recorded",
             static_cast<std::uint64_t>(summary.recovery.replay_recorded))
      .field("checkpoint_replay_redelivered",
             static_cast<std::uint64_t>(summary.recovery.replay_redelivered))
      .field("checkpoint_snapshot_aborts",
             static_cast<std::uint64_t>(summary.recovery.snapshot_aborts))
      .field("checkpoint_emergency_snapshot",
             summary.recovery.emergency_snapshot)
      .field("streamed", summary.streamed)
      .field("supervisor_stalls",
             static_cast<std::uint64_t>(summary.supervisor_stalls))
      .field("supervisor_restarts",
             static_cast<std::uint64_t>(summary.supervisor_restarts))
      .field("supervisor_crashes",
             static_cast<std::uint64_t>(summary.supervisor_crashes));
  // Stage-queue columns (streaming mode): one flattened field group per
  // stage, keyed by stage name, so the JSON stays a flat one-line object.
  for (const StageQueueSummary& stage : summary.stages) {
    const std::string prefix = "stage_" + stage.stage + "_";
    writer.field(prefix + "processed", stage.processed)
        .field(prefix + "stalls", stage.stalls)
        .field(prefix + "crashes", stage.crashes)
        .field(prefix + "restarts", stage.restarts)
        .field(prefix + "failed", stage.failed);
    if (!stage.queue.empty()) {
      writer.field(prefix + "queue", stage.queue)
          .field(prefix + "queue_capacity", stage.queue_capacity)
          .field(prefix + "queue_max_depth", stage.queue_max_depth)
          .field(prefix + "queue_pushed", stage.queue_pushed)
          .field(prefix + "queue_shed", stage.queue_shed);
    }
  }
  return writer.str();
}

void write_robust_summary(const std::filesystem::path& path,
                          const RobustSummary& summary) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw IoError("write_robust_summary: cannot open " + path.string());
  }
  out << robust_summary_json(summary) << '\n';
  if (!out) {
    throw IoError("write_robust_summary: write failed for " + path.string());
  }
}

}  // namespace emap::robust
