#include "emap/robust/watchdog.hpp"

#include "emap/common/error.hpp"

namespace emap::robust {

void WatchdogOptions::validate() const {
  require(budget_sec > 0.0, "WatchdogOptions: budget_sec must be > 0");
  require(stuck_multiplier >= 1.0,
          "WatchdogOptions: stuck_multiplier must be >= 1");
}

StageWatchdog::StageWatchdog(WatchdogOptions options,
                             obs::MetricsRegistry* registry)
    : options_(options) {
  options_.validate();
  if (registry != nullptr) {
    trips_metric_ = &registry->counter(
        "emap_robust_watchdog_trips_total", {},
        "Stages whose duration crossed the stuck threshold (forces "
        "CRITICAL)");
  }
}

bool StageWatchdog::check_stage(double duration_sec) {
  if (duration_sec <= threshold_sec()) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++trips_;
  }
  if (trips_metric_ != nullptr) {
    trips_metric_->increment();
  }
  return true;
}

std::size_t StageWatchdog::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

}  // namespace emap::robust
