// Cloud admission control: bounded queue + deadline-aware shedding.
//
// The CloudService models a fleet's shared search tier; under overload its
// FIFO queue grows without bound and every queued request eventually gets
// an answer that arrives too late to matter (the edge already timed out
// and retried, doubling the load — the classic retry storm).  The
// admission controller bounds the damage at the door:
//
//   * bounded queue — beyond max_queue_depth requests are shed outright;
//   * deadline-aware shedding — a request whose remaining deadline cannot
//     cover the expected wait + Algorithm 1 scan time (an EWMA over the
//     service times actually observed, the same quantity the PR 3 profiler
//     tracks per stage) is shed immediately instead of wasting a worker;
//   * concurrency limit — an optional cap on in-service requests for
//     callers driving real threads rather than virtual workers.
//
// Every shed carries a RetryAfter hint (the expected queue-drain time)
// that net::RetryPolicy honors as the backoff for the next attempt, so a
// shed edge backs off exactly as long as the cloud asked it to instead of
// hammering on its blind exponential schedule.
//
// Thread-safe (mutex): the TSan'd overload tests drive try_admit /
// on_complete from concurrent submitters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>

#include "emap/obs/metrics.hpp"

namespace emap::robust {

/// Why a request was shed (kNone = admitted).
enum class ShedReason : std::uint8_t { kNone = 0, kQueueFull, kDeadline, kConcurrency };

/// Lowercase reason label ("queue_full", "deadline", "concurrency").
const char* shed_reason_name(ShedReason reason);

/// Admission knobs.
struct AdmissionOptions {
  /// Requests allowed to wait; beyond this the queue sheds.
  std::size_t max_queue_depth = 16;
  /// Cap on in-service requests (0 = no cap; the virtual workers already
  /// bound concurrency in the batch CloudService path).
  std::size_t max_concurrency = 0;
  /// EWMA smoothing for the observed per-request service time.
  double ewma_alpha = 0.2;
  /// Service-time estimate before any observation (cold start).
  double initial_service_sec = 0.25;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// Outcome of one admission attempt.
struct AdmissionDecision {
  bool accepted = true;
  ShedReason reason = ShedReason::kNone;
  /// Backoff hint for the client when shed: the expected time until the
  /// queue has drained enough to admit a retry.
  double retry_after_sec = 0.0;
};

/// Per-run counters, embeddable in reports.
struct AdmissionSummary {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t shed_queue_full = 0;
  std::size_t shed_deadline = 0;
  std::size_t shed_concurrency = 0;

  std::size_t shed() const {
    return shed_queue_full + shed_deadline + shed_concurrency;
  }
};

/// Bounded-queue admission controller over `workers` service workers.
class AdmissionController {
 public:
  /// `registry` is borrowed and may be null (summary-only operation).
  explicit AdmissionController(AdmissionOptions options = {},
                               std::size_t workers = 1,
                               obs::MetricsRegistry* registry = nullptr);

  /// Decides one request with `remaining_deadline_sec` of budget left
  /// (default: no deadline).  On acceptance the request counts as queued
  /// until on_start().
  AdmissionDecision try_admit(
      double remaining_deadline_sec =
          std::numeric_limits<double>::infinity());

  /// A worker picked an admitted request up (queued -> in service).
  void on_start();

  /// An in-service request finished; `service_sec` updates the EWMA scan
  /// estimate.
  void on_complete(double service_sec);

  /// Current EWMA of the per-request service time.
  double expected_service_sec() const;

  /// Expected queueing delay for a newly admitted request:
  /// queued x EWMA / workers.
  double expected_wait_sec() const;

  std::size_t queued() const;
  std::size_t in_service() const;
  AdmissionSummary summary() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  double expected_wait_locked() const;
  void shed_locked(AdmissionDecision& decision, ShedReason reason);

  AdmissionOptions options_;
  std::size_t workers_;
  mutable std::mutex mutex_;
  std::size_t queued_ = 0;
  std::size_t in_service_ = 0;
  double ewma_service_sec_;
  AdmissionSummary summary_;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::Gauge* queue_metric_ = nullptr;
  obs::Gauge* ewma_metric_ = nullptr;
  obs::Counter* admitted_metric_ = nullptr;
};

}  // namespace emap::robust
