// Stage supervisor: wall-clock heartbeat monitoring and restart of the
// streaming pipeline's stage threads.
//
// The sim-time StageWatchdog (watchdog.hpp) judges a stage by its *virtual*
// duration — a pure function of the device model, so chaos runs replay
// bit-for-bit.  The supervisor is its wall-clock sibling for the threaded
// scheduler, where a stage can actually wedge: each stage thread beats a
// per-stage heartbeat after every work item, and a monitor thread polls
// them.  A stage that stops beating while not idle past the stall timeout
// is declared stalled: the supervisor records the stall
// (emap_stage_stalls_total{stage=...}), logs a kStageStall flight event,
// triggers a flight dump, and requests a cooperative abort.  The stage
// body unwinds at its next cancellation point and is restarted from its
// last heartbeat cursor — the bounded queues upstream and downstream
// retain their items, so a restart resumes the graph where it stopped
// (at most the in-flight item is lost).  A stage body that *throws*
// (including robust::InjectedCrash from an armed crash point) restarts the
// same way.  After max_restarts the supervisor gives up: the stage is
// marked failed and the failure handler runs — the streaming engine uses
// it to force the DegradationController CRITICAL and shut the run down.
//
// Recovery is cooperative by construction: a stage that never reaches a
// cancellation point (a true runaway loop) is detected and reported but
// cannot be reclaimed without killing the process — the dump and the
// CRITICAL escalation are the supervisor's last word there.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "emap/obs/metrics.hpp"

namespace emap::obs {
class FlightRecorder;
}

namespace emap::robust {

/// Supervisor knobs (wall-clock seconds; this is the one robustness
/// component that is *not* virtual-time driven).
struct SupervisorOptions {
  /// Monitor poll cadence.
  double poll_interval_sec = 0.005;
  /// A busy stage silent for longer than this is stalled.
  double stall_timeout_sec = 0.25;
  /// Restarts (stall or crash) per stage before giving up.
  std::size_t max_restarts = 4;

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// Per-stage outcome counters (also exported inside RobustSummary).
struct StageStats {
  std::string name;
  std::uint64_t processed = 0;  ///< heartbeats = work items completed
  std::uint64_t stalls = 0;     ///< stall verdicts by the monitor
  std::uint64_t crashes = 0;    ///< exceptions caught by the wrapper
  std::uint64_t restarts = 0;   ///< times the body was re-invoked
  std::uint64_t last_cursor = 0;
  bool failed = false;  ///< gave up after max_restarts
};

/// The stage thread's view of its own supervision: beat after every item,
/// mark idle while blocked on an empty/full queue, and honour
/// abort_requested() at every cancellation point.
class StageHealth {
 public:
  void heartbeat(std::uint64_t cursor) {
    cursor_.store(cursor, std::memory_order_relaxed);
    beats_.fetch_add(1, std::memory_order_release);
  }
  /// Idle stages (blocked waiting for work) are exempt from stall verdicts.
  void set_idle(bool idle) { idle_.store(idle, std::memory_order_release); }
  bool abort_requested() const {
    return abort_.load(std::memory_order_acquire);
  }
  /// Cursor of the last heartbeat before the current (re)start — where a
  /// restarted body should resume.
  std::uint64_t resume_cursor() const {
    return resume_cursor_.load(std::memory_order_acquire);
  }

 private:
  friend class StageSupervisor;
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> resume_cursor_{0};
  std::atomic<bool> idle_{true};
  std::atomic<bool> abort_{false};
};

/// Owns the stage threads and the monitor; extends the watchdog family to
/// the threaded scheduler.
class StageSupervisor {
 public:
  using StageBody = std::function<void(StageHealth&)>;

  /// `registry` and `flight` are borrowed and may be null.
  explicit StageSupervisor(SupervisorOptions options = {},
                           obs::MetricsRegistry* registry = nullptr,
                           obs::FlightRecorder* flight = nullptr);
  ~StageSupervisor();

  StageSupervisor(const StageSupervisor&) = delete;
  StageSupervisor& operator=(const StageSupervisor&) = delete;

  /// Runs when a stage exceeds max_restarts; called from the stage's own
  /// thread, once per failed stage.  Install before spawn().
  void set_failure_handler(std::function<void(const std::string&)> handler);

  /// Launches `body` on its own supervised thread.  The body must return
  /// when its input queue drains or abort_requested() turns true.
  void spawn(const std::string& name, StageBody body);

  /// Cooperative shutdown: every stage sees abort_requested() without the
  /// supervisor counting it as a stall or attempting restarts.
  void request_abort();

  /// Joins every stage thread and stops the monitor.  Idempotent.
  void join_all();

  std::vector<StageStats> stats() const;
  std::uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }
  std::uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  /// Any stage exhausted its restart budget.
  bool any_failed() const { return failed_.load(std::memory_order_acquire); }

  /// Monotone count of supervisor interventions: every stall verdict,
  /// caught stage crash, and body restart bumps it exactly once.  A
  /// coordinator that must not race a restart (the streaming checkpoint
  /// quiesce) samples it before and after a critical section — an unchanged
  /// count proves the supervisor stayed out of the graph meanwhile.
  std::uint64_t interventions() const {
    return interventions_.load(std::memory_order_acquire);
  }

  const SupervisorOptions& options() const { return options_; }

 private:
  struct Stage {
    std::string name;
    StageBody body;
    StageHealth health;
    std::thread thread;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<std::uint64_t> crashes{0};
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<bool> failed{false};
    // Monitor bookkeeping (monitor thread only).
    std::uint64_t seen_beats = 0;
    std::chrono::steady_clock::time_point last_change{};
    obs::Counter* stall_metric = nullptr;
    obs::Counter* restart_metric = nullptr;
  };

  void run_stage(Stage& stage);
  void monitor_loop();

  SupervisorOptions options_;
  obs::MetricsRegistry* registry_;
  obs::FlightRecorder* flight_;
  std::function<void(const std::string&)> failure_handler_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::thread monitor_;
  std::atomic<bool> monitor_stop_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> joined_{false};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> interventions_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace emap::robust
