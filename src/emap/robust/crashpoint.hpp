// Deterministic crash-point injection (failpoint registry).
//
// The checkpoint subsystem (checkpoint.hpp) claims the pipeline can die at
// any instruction and come back; this registry is how the tests make it
// die at a *chosen* instruction.  Hot paths mark named crash points with
// EMAP_CRASH_POINT(registry, "name"); a test (or emapctl --crash-at) arms
// the registry with a schedule — crash at the Nth hit of point P — and the
// marked code either throws InjectedCrash (in-process tests catch it and
// then resume a fresh pipeline) or calls std::_Exit (process-level CI
// kills, no destructors, the honest crash).  A seeded random mode draws a
// per-hit Bernoulli from an emap::Rng in the style of net::FaultInjector,
// so chaos schedules replay bit-for-bit.
//
// The registry is passed by pointer (null = every hook compiles to a
// single branch), not a global: concurrent tests each own their registry.
//
// Crash-point catalog (crash_point_catalog()):
//   pipeline_window_start    top of the per-window loop
//   pipeline_tracker_step    immediately before the Algorithm 2 step
//   pipeline_pre_cloud_call  after the decision to call, before any message
//   pipeline_post_cloud_call after the call returned (pending recorded)
//   pipeline_window_end      after the window's checkpoint was written
//   checkpoint_pre_write     before the temp snapshot file is opened
//   checkpoint_pre_rename    temp written+closed, before the atomic rename
//   checkpoint_post_write    snapshot durable under its final name
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::obs {
class FlightRecorder;
}

namespace emap::robust {

/// Thrown by a crash point armed in kThrow mode.  Deliberately NOT a
/// subclass of emap::Error: generic error handling must not swallow an
/// injected crash, exactly as it could not swallow a SIGKILL.
class InjectedCrash : public std::exception {
 public:
  explicit InjectedCrash(std::string point)
      : point_(std::move(point)),
        what_("injected crash at point '" + point_ + "'") {}

  const char* what() const noexcept override { return what_.c_str(); }
  const std::string& point() const { return point_; }

 private:
  std::string point_;
  std::string what_;
};

/// What firing a crash point does.
enum class CrashAction {
  kThrow,  ///< throw InjectedCrash (in-process tests)
  kExit,   ///< std::_Exit(kCrashExitCode) — no destructors, a real crash
};

/// Exit code of a kExit crash, distinguishable from every normal failure.
inline constexpr int kCrashExitCode = 42;

/// One armed schedule entry: die at the `hit`-th (1-based) execution of
/// the named point.
struct CrashSchedule {
  std::string point;
  std::uint64_t hit = 1;
};

/// The names every instrumented EMAP crash point uses, in pipeline order.
/// Tests and the CI crash-recovery matrix iterate this list so a newly
/// added point is automatically covered.
const std::vector<std::string>& crash_point_catalog();

/// Registry of named crash points.  Thread-safe; hit() on an un-armed
/// registry is a mutex-free single atomic load.
class CrashPointRegistry {
 public:
  CrashPointRegistry() = default;

  /// Arms one deterministic schedule (replacing any previous arming).
  void arm(CrashSchedule schedule, CrashAction action = CrashAction::kThrow);

  /// Arms a seeded random schedule: every hit of every point draws one
  /// Bernoulli(probability) from a forked stream, FaultInjector-style, so
  /// the crash site is a pure function of (seed, hit sequence).
  void arm_random(double probability, std::uint64_t seed,
                  CrashAction action = CrashAction::kThrow);

  /// Disarms; hit() reverts to pure counting.
  void disarm();

  bool armed() const;

  /// Marks one execution of `point`.  Fires the armed action when the
  /// schedule says so; otherwise just counts.
  void hit(const char* point);

  /// Executions of `point` seen so far (armed or not).
  std::uint64_t hits(const std::string& point) const;

  /// Every point name this registry has seen at least once.
  std::vector<std::string> seen() const;

  /// Borrowed flight recorder (may be null).  When set, a firing crash
  /// point logs itself and triggers a dump *before* exiting or throwing,
  /// so the dump's last event is always the crash point that killed the
  /// run.
  void set_flight_recorder(obs::FlightRecorder* recorder);

 private:
  [[noreturn]] void fire(const std::string& point);

  obs::FlightRecorder* flight_ = nullptr;
  mutable std::mutex mutex_;
  bool armed_ = false;
  std::optional<CrashSchedule> schedule_;
  std::optional<Rng> random_;
  double random_probability_ = 0.0;
  CrashAction action_ = CrashAction::kThrow;
  std::map<std::string, std::uint64_t> counts_;
};

/// RAII arming guard for tests: arms on construction, disarms on scope
/// exit even when the armed crash point threw.
class ScopedCrashSchedule {
 public:
  ScopedCrashSchedule(CrashPointRegistry& registry, CrashSchedule schedule,
                      CrashAction action = CrashAction::kThrow)
      : registry_(registry) {
    registry_.arm(std::move(schedule), action);
  }
  ~ScopedCrashSchedule() { registry_.disarm(); }

  ScopedCrashSchedule(const ScopedCrashSchedule&) = delete;
  ScopedCrashSchedule& operator=(const ScopedCrashSchedule&) = delete;

 private:
  CrashPointRegistry& registry_;
};

}  // namespace emap::robust

/// Marks a named crash point.  `registry` is a CrashPointRegistry* and may
/// be null (the common case: one predictable branch, no lock).
#define EMAP_CRASH_POINT(registry, name)     \
  do {                                       \
    if ((registry) != nullptr) {             \
      (registry)->hit(name);                 \
    }                                        \
  } while (false)
