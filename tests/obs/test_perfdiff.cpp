#include "emap/obs/perfdiff.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::obs {
namespace {

BenchRecord make_record(const std::string& bench,
                        std::map<std::string, double> metrics,
                        std::map<std::string, std::string> tags = {}) {
  BenchRecord record;
  record.bench = bench;
  record.metrics = std::move(metrics);
  record.tags = std::move(tags);
  return record;
}

TEST(ParseBenchRecord, SplitsMetricsAndTags) {
  const auto record = parse_bench_record(
      "{\"bench\":\"fig4\",\"git_sha\":\"abc123\",\"upload_us\":1250.5,"
      "\"ok\":true,\"skipped\":null}");
  EXPECT_EQ(record.bench, "fig4");
  EXPECT_EQ(record.tags.at("git_sha"), "abc123");
  EXPECT_DOUBLE_EQ(record.metrics.at("upload_us"), 1250.5);
  EXPECT_DOUBLE_EQ(record.metrics.at("ok"), 1.0);
  EXPECT_EQ(record.metrics.count("skipped"), 0u);
}

TEST(ParseBenchRecord, DecodesStringEscapes) {
  const auto record =
      parse_bench_record("{\"bench\":\"a\\\"b\",\"tag\":\"x\\ny\\u0041\"}");
  EXPECT_EQ(record.bench, "a\"b");
  EXPECT_EQ(record.tags.at("tag"), "x\nyA");
}

TEST(ParseBenchRecord, ThrowsCorruptDataOnMalformedLines) {
  EXPECT_THROW(parse_bench_record("not json"), CorruptData);
  EXPECT_THROW(parse_bench_record("{\"a\":}"), CorruptData);
  EXPECT_THROW(parse_bench_record("{\"a\":\"unterminated}"), CorruptData);
  EXPECT_THROW(parse_bench_record("{\"a\":1"), CorruptData);
}

TEST(LoadBenchRecordsLenient, SkipsBadLinesAndKeepsEveryGoodRecord) {
  testing::TempDir dir("perfdiff_lenient");
  const auto path = dir.path() / "BENCH_mixed.jsonl";
  {
    std::ofstream stream(path);
    // A corrupt record BETWEEN two regressed benches: the strict loader
    // would die here and hide fig7's regression entirely.
    stream << "{\"bench\":\"fig4\",\"latency_us\":100}\n";
    stream << "{\"bench\":\"broken\",\"latency_us\":}\n";
    stream << "not json at all\n";
    stream << "{\"bench\":\"fig7\",\"latency_us\":200}\n";
  }
  std::vector<std::string> errors;
  const auto records = load_bench_records_lenient(path, errors);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].bench, "fig4");
  EXPECT_EQ(records[1].bench, "fig7");
  ASSERT_EQ(errors.size(), 2u);
  // Errors carry file:line provenance for the CI log.
  EXPECT_NE(errors[0].find("BENCH_mixed.jsonl:2"), std::string::npos);
  EXPECT_NE(errors[1].find("BENCH_mixed.jsonl:3"), std::string::npos);
  EXPECT_THROW(load_bench_records_lenient(dir.path() / "absent.jsonl",
                                          errors),
               IoError);
}

TEST(LoadBenchRecordsLenient, AllRegressionsSurviveACorruptNeighbor) {
  // End-to-end over perf_diff: both regressed benches must show up even
  // though a corrupt record sits between them in the current run's file.
  testing::TempDir dir("perfdiff_lenient_diff");
  const auto base_path = dir.path() / "BENCH_base.jsonl";
  const auto cur_path = dir.path() / "BENCH_cur.jsonl";
  {
    std::ofstream stream(base_path);
    stream << "{\"bench\":\"a\",\"latency_us\":100}\n";
    stream << "{\"bench\":\"b\",\"latency_us\":100}\n";
  }
  {
    std::ofstream stream(cur_path);
    stream << "{\"bench\":\"a\",\"latency_us\":200}\n";
    stream << "{\"bench\":\"oops\",\"latency_us\":}\n";  // corrupt
    stream << "{\"bench\":\"b\",\"latency_us\":300}\n";
  }
  std::vector<std::string> errors;
  const auto baseline = load_bench_records_lenient(base_path, errors);
  const auto current = load_bench_records_lenient(cur_path, errors);
  EXPECT_EQ(errors.size(), 1u);
  const auto result = perf_diff(baseline, current);
  EXPECT_EQ(result.regressions, 2u);
  EXPECT_FALSE(result.ok());
}

TEST(LoadBenchRecords, SkipsBlankLinesAndThrowsOnMissingFile) {
  testing::TempDir dir("perfdiff_load");
  const auto path = dir.path() / "BENCH_x.jsonl";
  {
    std::ofstream stream(path);
    stream << "{\"bench\":\"x\",\"v\":1}\n\n  \n{\"bench\":\"x\",\"v\":2}\n";
  }
  const auto records = load_bench_records(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[1].metrics.at("v"), 2.0);
  EXPECT_THROW(load_bench_records(dir.path() / "absent.jsonl"), IoError);
}

TEST(MetricDirection, InfersFromName) {
  EXPECT_TRUE(metric_higher_is_better("mean_search_speedup"));
  EXPECT_TRUE(metric_higher_is_better("emap_mean_accuracy"));
  EXPECT_TRUE(metric_higher_is_better("algo1_avg_corr_anomalous"));
  EXPECT_FALSE(metric_higher_is_better("upload_256_lte_us"));
  EXPECT_FALSE(metric_higher_is_better("area_ms_at_100_signals"));
  EXPECT_FALSE(metric_higher_is_better("deadline_misses"));
}

TEST(PerfDiff, FlagsLatencyIncreasePastThreshold) {
  const auto result =
      perf_diff({make_record("fig4", {{"upload_us", 100.0}})},
                {make_record("fig4", {{"upload_us", 125.0}})});
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.deltas[0].regressed);
  EXPECT_NEAR(result.deltas[0].change_frac, 0.25, 1e-12);
  EXPECT_EQ(result.regressions, 1u);
  EXPECT_FALSE(result.ok());
}

TEST(PerfDiff, HigherIsBetterMetricsRegressDownward) {
  const auto result =
      perf_diff({make_record("fig7b", {{"mean_search_speedup", 6.8}})},
                {make_record("fig7b", {{"mean_search_speedup", 4.0}})});
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.deltas[0].regressed);
  // The same upward move on a speedup passes.
  const auto improved =
      perf_diff({make_record("fig7b", {{"mean_search_speedup", 4.0}})},
                {make_record("fig7b", {{"mean_search_speedup", 6.8}})});
  EXPECT_TRUE(improved.ok());
}

TEST(PerfDiff, SmallDriftWithinThresholdPasses) {
  const auto result =
      perf_diff({make_record("fig4", {{"upload_us", 100.0}})},
                {make_record("fig4", {{"upload_us", 105.0}})});
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_FALSE(result.deltas[0].regressed);
  EXPECT_TRUE(result.ok());
}

TEST(PerfDiff, ThresholdIsConfigurable) {
  PerfDiffOptions options;
  options.threshold = 0.01;
  const auto result =
      perf_diff({make_record("fig4", {{"upload_us", 100.0}})},
                {make_record("fig4", {{"upload_us", 105.0}})}, options);
  EXPECT_FALSE(result.ok());
}

TEST(PerfDiff, RefusesMismatchedConfigFingerprints) {
  const auto result = perf_diff(
      {make_record("fig4", {{"upload_us", 100.0}}, {{"config", "aaaa"}})},
      {make_record("fig4", {{"upload_us", 900.0}}, {{"config", "bbbb"}})});
  EXPECT_TRUE(result.deltas.empty());
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_NE(result.notes[0].find("fingerprint mismatch"), std::string::npos);
}

TEST(PerfDiff, IgnoreConfigOptionComparesAnyway) {
  PerfDiffOptions options;
  options.check_fingerprint = false;
  const auto result = perf_diff(
      {make_record("fig4", {{"upload_us", 100.0}}, {{"config", "aaaa"}})},
      {make_record("fig4", {{"upload_us", 900.0}}, {{"config", "bbbb"}})},
      options);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.deltas[0].regressed);
}

TEST(PerfDiff, LastRecordPerBenchWins) {
  const auto result = perf_diff(
      {make_record("fig4", {{"upload_us", 100.0}})},
      {make_record("fig4", {{"upload_us", 900.0}}),   // stale earlier run
       make_record("fig4", {{"upload_us", 101.0}})});  // newest wins
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_FALSE(result.deltas[0].regressed);
}

TEST(PerfDiff, NotesOneSidedBenchesAndMissingMetrics) {
  const auto result = perf_diff(
      {make_record("gone", {{"x", 1.0}}),
       make_record("both", {{"kept", 1.0}, {"dropped", 2.0}})},
      {make_record("both", {{"kept", 1.0}}), make_record("fresh", {})});
  EXPECT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.ok());
  std::string all_notes;
  for (const auto& note : result.notes) {
    all_notes += note + "\n";
  }
  EXPECT_NE(all_notes.find("'gone' present only in baseline"),
            std::string::npos);
  EXPECT_NE(all_notes.find("'dropped' missing from current"),
            std::string::npos);
  EXPECT_NE(all_notes.find("'fresh' has no baseline"), std::string::npos);
}

TEST(PerfDiff, ZeroBaselineYieldsInfiniteChange) {
  const auto result = perf_diff({make_record("b", {{"misses", 0.0}})},
                                {make_record("b", {{"misses", 3.0}})});
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(std::isinf(result.deltas[0].change_frac));
  EXPECT_TRUE(result.deltas[0].regressed);
  const auto same = perf_diff({make_record("b", {{"misses", 0.0}})},
                              {make_record("b", {{"misses", 0.0}})});
  EXPECT_DOUBLE_EQ(same.deltas[0].change_frac, 0.0);
  EXPECT_FALSE(same.deltas[0].regressed);
}

TEST(FormatPerfDiff, RendersTableNotesAndVerdict) {
  const auto result =
      perf_diff({make_record("fig4", {{"upload_us", 100.0}})},
                {make_record("fig4", {{"upload_us", 200.0}})});
  const std::string text = format_perf_diff(result);
  EXPECT_NE(text.find("bench"), std::string::npos);
  EXPECT_NE(text.find("upload_us"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("-> FAIL"), std::string::npos);
  const auto clean = perf_diff({make_record("fig4", {{"upload_us", 1.0}})},
                               {make_record("fig4", {{"upload_us", 1.0}})});
  EXPECT_NE(format_perf_diff(clean).find("-> PASS"), std::string::npos);
}

TEST(ParsePerfRequirement, AcceptsBenchMetricMin) {
  const auto requirement =
      parse_perf_requirement("fig7a:scan_speedup_avx2:2.0");
  EXPECT_EQ(requirement.bench, "fig7a");
  EXPECT_EQ(requirement.metric, "scan_speedup_avx2");
  EXPECT_DOUBLE_EQ(requirement.min_value, 2.0);
  EXPECT_THROW(parse_perf_requirement("fig7a:metric"), InvalidArgument);
  EXPECT_THROW(parse_perf_requirement("fig7a::2.0"), InvalidArgument);
  EXPECT_THROW(parse_perf_requirement(":m:2.0"), InvalidArgument);
  EXPECT_THROW(parse_perf_requirement("fig7a:m:"), InvalidArgument);
  EXPECT_THROW(parse_perf_requirement("fig7a:m:abc"), InvalidArgument);
}

TEST(PerfRequirements, FloorIsEvaluatedAgainstTheCurrentSide) {
  PerfDiffOptions options;
  options.requirements.push_back({"fig7a", "scan_speedup_avx2", 2.0});
  // Baseline deliberately lacks the metric (wall-clock metrics are
  // stripped from committed baselines); only the current side matters.
  const auto base = make_record("fig7a", {{"avg_corr_alpha0004", 0.9}});

  auto good = make_record(
      "fig7a", {{"avg_corr_alpha0004", 0.9}, {"scan_speedup_avx2", 2.7}});
  const auto pass = perf_diff({base}, {good}, options);
  ASSERT_EQ(pass.requirements.size(), 1u);
  EXPECT_TRUE(pass.requirements[0].satisfied);
  EXPECT_TRUE(pass.ok());
  EXPECT_NE(format_perf_diff(pass, options).find("require"),
            std::string::npos);

  auto slow = make_record(
      "fig7a", {{"avg_corr_alpha0004", 0.9}, {"scan_speedup_avx2", 1.3}});
  const auto fail = perf_diff({base}, {slow}, options);
  EXPECT_EQ(fail.requirement_failures, 1u);
  EXPECT_FALSE(fail.ok());
  EXPECT_NE(format_perf_diff(fail, options).find("UNMET"),
            std::string::npos);
  EXPECT_NE(format_perf_diff(fail, options).find("-> FAIL"),
            std::string::npos);
}

TEST(PerfRequirements, MissingBenchOrMetricSkipsWithANote) {
  PerfDiffOptions options;
  options.requirements.push_back({"fig7a", "scan_speedup_avx2", 2.0});
  options.requirements.push_back({"nope", "anything", 1.0});
  // Current side has the bench but not the metric (AVX2-less host).
  const auto current = make_record("fig7a", {{"avg_corr_alpha0004", 0.9}});
  const auto result =
      perf_diff({make_record("fig7a", {{"avg_corr_alpha0004", 0.9}})},
                {current}, options);
  ASSERT_EQ(result.requirements.size(), 2u);
  EXPECT_TRUE(result.requirements[0].missing);
  EXPECT_TRUE(result.requirements[1].missing);
  EXPECT_EQ(result.requirement_failures, 0u);
  EXPECT_TRUE(result.ok()) << "missing metric must skip, not fail";
  bool noted = false;
  for (const std::string& note : result.notes) {
    noted = noted || note.find("scan_speedup_avx2") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

}  // namespace
}  // namespace emap::obs
