#include "emap/obs/trace_context.hpp"

#include <gtest/gtest.h>

#include <set>

namespace emap::obs {
namespace {

TEST(TraceContext, DefaultIsUntraced) {
  TraceContext context;
  EXPECT_FALSE(context.valid());
  EXPECT_EQ(context.trace_id, 0u);
  EXPECT_EQ(context.parent_span, 0u);
}

TEST(MintTraceId, IsDeterministicPerSeedAndWindow) {
  EXPECT_EQ(mint_trace_id(kDefaultTraceSeed, 0),
            mint_trace_id(kDefaultTraceSeed, 0));
  EXPECT_EQ(mint_trace_id(42, 17), mint_trace_id(42, 17));
}

TEST(MintTraceId, NeverReturnsTheUntracedSentinel) {
  // 0 means "no trace"; scan a band of seeds and windows including the
  // degenerate all-zero input.
  const std::uint64_t seeds[] = {0, 1, kDefaultTraceSeed, ~0ull};
  for (std::uint64_t seed : seeds) {
    for (std::uint64_t window = 0; window < 256; ++window) {
      EXPECT_NE(mint_trace_id(seed, window), 0u)
          << "seed " << seed << " window " << window;
    }
  }
}

TEST(MintTraceId, DistinctWindowsGetDistinctIds) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t window = 0; window < 4096; ++window) {
    ids.insert(mint_trace_id(kDefaultTraceSeed, window));
  }
  EXPECT_EQ(ids.size(), 4096u);
}

TEST(MintTraceId, DistinctSeedsGetDistinctIds) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 1024; ++seed) {
    ids.insert(mint_trace_id(seed, 7));
  }
  EXPECT_EQ(ids.size(), 1024u);
}

TEST(TraceIdHex, RendersFixedWidthLowercase) {
  EXPECT_EQ(trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(trace_id_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(trace_id_hex(~0ull), "ffffffffffffffff");
}

TEST(TraceIdHex, RoundTripsThroughParse) {
  for (std::uint64_t window = 0; window < 64; ++window) {
    const std::uint64_t id = mint_trace_id(kDefaultTraceSeed, window);
    EXPECT_EQ(parse_trace_id_hex(trace_id_hex(id)), id);
  }
}

TEST(ParseTraceIdHex, AcceptsShortAndUppercaseForms) {
  EXPECT_EQ(parse_trace_id_hex("123"), 0x123u);
  EXPECT_EQ(parse_trace_id_hex("DEADBEEF"), 0xdeadbeefu);
}

TEST(ParseTraceIdHex, FailsClosedOnMalformedInput) {
  EXPECT_EQ(parse_trace_id_hex(""), 0u);
  EXPECT_EQ(parse_trace_id_hex("00000000deadbeef00"), 0u);  // too long
  EXPECT_EQ(parse_trace_id_hex("zzzzzzzzzzzzzzzz"), 0u);    // not hex
  EXPECT_EQ(parse_trace_id_hex("12 34"), 0u);               // embedded space
}

}  // namespace
}  // namespace emap::obs
