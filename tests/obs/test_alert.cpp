#include "emap/obs/alert.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "emap/obs/flight.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/timeseries.hpp"

namespace emap::obs {
namespace {

TimeSeriesOptions enabled_options() {
  TimeSeriesOptions options;
  options.enabled = true;
  return options;
}

AlertRule threshold_rule(std::string series, double value,
                         double for_sec = 0.0, AlertOp op = AlertOp::kGt) {
  AlertRule rule;
  rule.name = "r";
  rule.kind = AlertRuleKind::kThreshold;
  rule.series = std::move(series);
  rule.op = op;
  rule.value = value;
  rule.for_sec = for_sec;
  return rule;
}

// Drives a single-gauge store: set value, scrape, evaluate.
struct GaugeHarness {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("emap_g");
  TimeSeriesStore store{enabled_options()};
  AlertEngine engine;

  explicit GaugeHarness(std::vector<AlertRule> rules,
                        AlertEngine::Hooks hooks = {})
      : engine(std::move(rules), hooks) {}

  std::size_t step(double t_sec, double value, std::uint64_t trace_id = 0) {
    gauge.set(value);
    store.scrape(registry, t_sec);
    return engine.evaluate(store, t_sec, trace_id);
  }
};

TEST(AlertRule, Validation) {
  AlertRule rule = threshold_rule("emap_g", 1.0);
  EXPECT_NO_THROW(rule.validate());
  rule.name.clear();
  EXPECT_THROW(rule.validate(), std::exception);
  rule = threshold_rule("", 1.0);
  EXPECT_THROW(rule.validate(), std::exception);
  rule = threshold_rule("emap_g", 1.0);
  rule.kind = AlertRuleKind::kEwma;
  rule.alpha = 0.0;  // out of (0, 1]
  EXPECT_THROW(rule.validate(), std::exception);
}

TEST(AlertEngine, ThresholdFiresAndResolvesImmediatelyWithoutFor) {
  GaugeHarness h({threshold_rule("emap_g", 5.0)});
  EXPECT_EQ(h.step(1.0, 1.0), 0u);
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  EXPECT_EQ(h.step(2.0, 9.0), 1u);  // breach -> firing (for=0)
  EXPECT_EQ(h.engine.status(0).state, AlertState::kFiring);
  EXPECT_EQ(h.engine.firing_count(), 1u);
  EXPECT_EQ(h.step(3.0, 9.5), 0u);  // steady firing: no new transition
  EXPECT_EQ(h.step(4.0, 1.0), 1u);  // clean -> resolved
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  EXPECT_EQ(h.engine.firing_count(), 0u);

  ASSERT_EQ(h.engine.transitions().size(), 2u);
  EXPECT_TRUE(h.engine.transitions()[0].firing);
  EXPECT_EQ(h.engine.transitions()[0].t_sec, 2.0);
  EXPECT_EQ(h.engine.transitions()[0].value, 9.0);
  EXPECT_EQ(h.engine.transitions()[0].threshold, 5.0);
  EXPECT_FALSE(h.engine.transitions()[1].firing);
  EXPECT_TRUE(h.engine.ever_fired("r"));
  EXPECT_FALSE(h.engine.ever_fired("other"));
}

TEST(AlertEngine, ForDurationDebouncesShortBlips) {
  GaugeHarness h({threshold_rule("emap_g", 5.0, /*for_sec=*/3.0)});
  h.step(1.0, 9.0);  // breach starts: pending
  EXPECT_EQ(h.engine.status(0).state, AlertState::kPending);
  h.step(2.0, 9.0);
  h.step(3.0, 1.0);  // blip over before for=3 elapsed: back to inactive
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  EXPECT_TRUE(h.engine.transitions().empty());

  h.step(4.0, 9.0);  // sustained breach
  h.step(5.0, 9.0);
  h.step(6.0, 9.0);
  EXPECT_EQ(h.engine.status(0).state, AlertState::kPending);
  h.step(7.0, 9.0);  // held 3 s (since t=4): fires
  EXPECT_EQ(h.engine.status(0).state, AlertState::kFiring);
  ASSERT_EQ(h.engine.transitions().size(), 1u);
  EXPECT_EQ(h.engine.transitions()[0].t_sec, 7.0);
}

TEST(AlertEngine, ComparisonOperators) {
  GaugeHarness h({threshold_rule("emap_g", 5.0, 0.0, AlertOp::kLt)});
  h.step(1.0, 9.0);
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  h.step(2.0, 4.0);
  EXPECT_EQ(h.engine.status(0).state, AlertState::kFiring);
}

TEST(AlertEngine, MissingSeriesNeverBreaches) {
  GaugeHarness h({threshold_rule("emap_nope", 5.0)});
  h.step(1.0, 100.0);
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  EXPECT_FALSE(h.engine.status(0).ever_evaluated);
  EXPECT_EQ(h.engine.evaluations(), 1u);
}

TEST(AlertEngine, RateRuleWatchesCounterSlope) {
  AlertRule rule;
  rule.name = "rate";
  rule.kind = AlertRuleKind::kRate;
  rule.series = "emap_c";
  rule.op = AlertOp::kGt;
  rule.value = 5.0;      // fire above 5 increments/sec
  rule.window_sec = 10.0;

  MetricsRegistry registry;
  Counter& counter = registry.counter("emap_c");
  TimeSeriesStore store(enabled_options());
  AlertEngine engine({rule});
  for (int t = 1; t <= 20; ++t) {
    counter.increment(2);  // 2/s: under the limit
    store.scrape(registry, static_cast<double>(t));
    engine.evaluate(store, static_cast<double>(t));
  }
  EXPECT_EQ(engine.status(0).state, AlertState::kInactive);
  for (int t = 21; t <= 40; ++t) {
    counter.increment(10);  // 10/s: over
    store.scrape(registry, static_cast<double>(t));
    engine.evaluate(store, static_cast<double>(t));
  }
  EXPECT_EQ(engine.status(0).state, AlertState::kFiring);
}

TEST(AlertEngine, EwmaFiresOnStepAndResolvesAsMeanAdapts) {
  AlertRule rule;
  rule.name = "ewma";
  rule.kind = AlertRuleKind::kEwma;
  rule.series = "emap_g";
  rule.op = AlertOp::kGt;  // directional: only upward deviations
  rule.alpha = 0.1;
  rule.sigma = 4.0;
  rule.warmup = 20;
  rule.min_delta = 1e-6;
  rule.for_sec = 3.0;

  GaugeHarness h({rule});
  double t = 0.0;
  // Stationary noise-free-ish baseline around 1.0.
  for (int i = 0; i < 60; ++i) {
    t += 1.0;
    h.step(t, 1.0 + 0.01 * std::sin(0.5 * i));
  }
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  EXPECT_GE(h.engine.status(0).ewma_samples, 60u);

  // Step to 2.0 — a huge deviation versus the tiny running stddev.
  bool fired = false;
  for (int i = 0; i < 60; ++i) {
    t += 1.0;
    h.step(t, 2.0);
    if (h.engine.status(0).state == AlertState::kFiring) {
      fired = true;
    }
  }
  EXPECT_TRUE(fired);
  // Mean keeps adapting toward 2.0 while firing, so the alert eventually
  // resolves on its own: the step became the new normal.
  EXPECT_EQ(h.engine.status(0).state, AlertState::kInactive);
  ASSERT_GE(h.engine.transitions().size(), 2u);
  EXPECT_TRUE(h.engine.transitions()[0].firing);
  EXPECT_FALSE(h.engine.transitions().back().firing);
}

TEST(AlertEngine, EwmaIgnoresDownwardMovesForGtRules) {
  AlertRule rule;
  rule.name = "ewma";
  rule.kind = AlertRuleKind::kEwma;
  rule.series = "emap_g";
  rule.op = AlertOp::kGt;
  rule.alpha = 0.1;
  rule.sigma = 4.0;
  rule.warmup = 10;
  rule.min_delta = 1e-6;

  GaugeHarness h({rule});
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += 1.0;
    h.step(t, 1.0 + 0.01 * std::sin(0.7 * i));
  }
  for (int i = 0; i < 20; ++i) {
    t += 1.0;
    h.step(t, 0.1);  // big drop: an improvement, not a page
  }
  EXPECT_TRUE(h.engine.transitions().empty());
}

TEST(AlertEngine, BurnRuleWatchesSloGaugeSeries) {
  EXPECT_EQ(burn_rate_series_key("edge_iteration"),
            "emap_slo_burn_rate{slo=\"edge_iteration\"}");

  AlertRule rule;
  rule.name = "burn";
  rule.kind = AlertRuleKind::kBurnRate;
  rule.series = burn_rate_series_key("edge_iteration");
  rule.value = 1.0;

  MetricsRegistry registry;
  Gauge& burn = registry.gauge("emap_slo_burn_rate",
                               {{"slo", "edge_iteration"}});
  TimeSeriesStore store(enabled_options());
  AlertEngine engine({rule});
  burn.set(0.4);
  store.scrape(registry, 1.0);
  engine.evaluate(store, 1.0);
  EXPECT_EQ(engine.status(0).state, AlertState::kInactive);
  burn.set(2.5);
  store.scrape(registry, 2.0);
  engine.evaluate(store, 2.0);
  EXPECT_EQ(engine.status(0).state, AlertState::kFiring);
}

TEST(AlertEngine, HooksStampMetricsSpansAndFlightDump) {
  MetricsRegistry alert_metrics;
  Tracer tracer;
  FlightRecorder flight(64);
  const auto dump_path = std::filesystem::temp_directory_path() /
                         "emap_alert_test_dump.jsonl";
  std::filesystem::remove(dump_path);
  flight.set_dump_path(dump_path);

  AlertEngine::Hooks hooks;
  hooks.registry = &alert_metrics;
  hooks.tracer = &tracer;
  hooks.flight = &flight;
  GaugeHarness h({threshold_rule("emap_g", 5.0)}, hooks);

  h.step(1.0, 9.0, /*trace_id=*/77);  // fires
  h.step(2.0, 1.0, /*trace_id=*/78);  // resolves

  // Metrics: one fired, one resolved, zero currently firing.
  EXPECT_EQ(
      alert_metrics.counter("emap_alerts_fired_total", {{"rule", "r"}})
          .value(),
      1u);
  EXPECT_EQ(
      alert_metrics.counter("emap_alerts_resolved_total", {{"rule", "r"}})
          .value(),
      1u);
  EXPECT_EQ(alert_metrics.gauge("emap_alerts_firing").value(), 0.0);

  // Spans: firing + resolved, trace ids attached.
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "alert:r:fired");
  EXPECT_EQ(spans[0].category, "alert");
  EXPECT_EQ(spans[0].trace_id, 77u);
  EXPECT_EQ(spans[1].name, "alert:r:resolved");

  // Flight: kAlert events recorded, firing triggered a dump.
  std::size_t alert_events = 0;
  for (const FlightEvent& event : flight.snapshot()) {
    if (event.type == FlightEventType::kAlert) {
      ++alert_events;
      EXPECT_EQ(event.b, 5.0);  // threshold rides in b
    }
  }
  EXPECT_EQ(alert_events, 2u);
  EXPECT_EQ(flight.dumps_written(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dump_path));
  std::filesystem::remove(dump_path);

  // Transitions carry the trace ids for offline correlation.
  ASSERT_EQ(h.engine.transitions().size(), 2u);
  EXPECT_EQ(h.engine.transitions()[0].trace_id, 77u);
  EXPECT_EQ(h.engine.transitions()[1].trace_id, 78u);
}

TEST(AlertEngine, TransitionsExportAsJsonl) {
  GaugeHarness h({threshold_rule("emap_g", 5.0)});
  h.step(1.0, 9.0);
  h.step(2.0, 1.0);
  const std::string jsonl = h.engine.to_jsonl();
  EXPECT_NE(jsonl.find("\"rule\":\"r\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"state\":\"resolved\""), std::string::npos);

  const auto path = std::filesystem::temp_directory_path() /
                    "emap_alert_test" / "alerts.jsonl";
  std::filesystem::remove_all(path.parent_path());
  h.engine.write_jsonl(path);
  std::ifstream stream(path);
  ASSERT_TRUE(stream.good());
  std::filesystem::remove_all(path.parent_path());
}

TEST(ParseAlertRules, ParsesEveryKindAndSkipsComments) {
  const std::string text =
      "# comment line\n"
      "\n"
      "rule lat_thr threshold series=emap_g op=ge value=2.5 for=5\n"
      "rule c_rate rate series=emap_c window=30 op=gt value=0.5\n"
      "rule lat_step ewma series=emap_h:mean alpha=0.2 sigma=3 warmup=10 "
      "min_delta=0.001 for=3\n"
      "rule edge_burn burn slo=edge_iteration value=1.5 for=4\n";
  std::string error;
  const auto rules = parse_alert_rules(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(rules.size(), 4u);

  EXPECT_EQ(rules[0].name, "lat_thr");
  EXPECT_EQ(rules[0].kind, AlertRuleKind::kThreshold);
  EXPECT_EQ(rules[0].op, AlertOp::kGe);
  EXPECT_EQ(rules[0].value, 2.5);
  EXPECT_EQ(rules[0].for_sec, 5.0);

  EXPECT_EQ(rules[1].kind, AlertRuleKind::kRate);
  EXPECT_EQ(rules[1].window_sec, 30.0);

  EXPECT_EQ(rules[2].kind, AlertRuleKind::kEwma);
  EXPECT_EQ(rules[2].series, "emap_h:mean");
  EXPECT_EQ(rules[2].alpha, 0.2);
  EXPECT_EQ(rules[2].sigma, 3.0);
  EXPECT_EQ(rules[2].warmup, 10u);
  EXPECT_EQ(rules[2].min_delta, 0.001);

  EXPECT_EQ(rules[3].kind, AlertRuleKind::kBurnRate);
  EXPECT_EQ(rules[3].series, burn_rate_series_key("edge_iteration"));
  EXPECT_EQ(rules[3].value, 1.5);
}

TEST(ParseAlertRules, ReportsLineNumberOnMalformedInput) {
  std::string error;
  parse_alert_rules("rule ok threshold series=emap_g value=1\n"
                    "rule broken bogus_kind series=emap_g\n",
                    &error);
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("2"), std::string::npos);  // names the line

  error.clear();
  parse_alert_rules("not_a_rule_statement\n", &error);
  EXPECT_FALSE(error.empty());

  error.clear();
  parse_alert_rules("rule x threshold series=emap_g value=abc\n", &error);
  EXPECT_FALSE(error.empty());
}

TEST(LoadAlertRules, MissingFileIsAnError) {
  std::string error;
  const auto rules = load_alert_rules("/nonexistent/alerts.rules", &error);
  EXPECT_TRUE(rules.empty());
  EXPECT_FALSE(error.empty());
}

TEST(LoadAlertRules, RoundTripsThroughAFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    "emap_alert_rules_test.rules";
  {
    std::ofstream stream(path);
    stream << "rule t threshold series=emap_g value=1.0\n";
  }
  std::string error;
  const auto rules = load_alert_rules(path, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "t");
  std::filesystem::remove(path);
}

TEST(DefaultAlertRules, CoverLatencyStepAndBothSlos) {
  const auto rules = default_alert_rules();
  ASSERT_EQ(rules.size(), 3u);
  for (const AlertRule& rule : rules) {
    EXPECT_NO_THROW(rule.validate());
  }
  EXPECT_EQ(rules[0].kind, AlertRuleKind::kEwma);
  EXPECT_EQ(rules[0].series, "emap_track_step_seconds:mean");
  EXPECT_EQ(rules[1].kind, AlertRuleKind::kBurnRate);
  EXPECT_EQ(rules[1].series, burn_rate_series_key("edge_iteration"));
  EXPECT_EQ(rules[2].series, burn_rate_series_key("initial_response"));
}

TEST(AlertNames, StableStrings) {
  EXPECT_STREQ(alert_rule_kind_name(AlertRuleKind::kEwma), "ewma");
  EXPECT_STREQ(alert_state_name(AlertState::kFiring), "firing");
  EXPECT_STREQ(alert_op_name(AlertOp::kGe), "ge");
}

}  // namespace
}  // namespace emap::obs
