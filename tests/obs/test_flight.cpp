#include "emap/obs/flight.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "emap/obs/tracecat.hpp"
#include "support/test_util.hpp"

namespace emap::obs {
namespace {

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(FlightRecorder, SnapshotPreservesLogOrder) {
  FlightRecorder recorder(16);
  recorder.log(FlightEventType::kSpan, "window_0", 1.0, 0xabc);
  recorder.log(FlightEventType::kSloMiss, "edge_iteration", 2.0, 0xabc, 1.2,
               1.0);
  recorder.log(FlightEventType::kBreakerOpen, "breaker", 3.0);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].label_view(), "window_0");
  EXPECT_EQ(events[0].trace_id, 0xabcu);
  EXPECT_EQ(events[1].type, FlightEventType::kSloMiss);
  EXPECT_DOUBLE_EQ(events[1].a, 1.2);
  EXPECT_DOUBLE_EQ(events[1].b, 1.0);
  EXPECT_EQ(events[2].seq, 2u);
}

TEST(FlightRecorder, RingKeepsOnlyTheMostRecentEvents) {
  FlightRecorder recorder(8);
  for (int i = 0; i < 100; ++i) {
    recorder.log(FlightEventType::kSpan, "e", static_cast<double>(i));
  }
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The survivors are the last 8, still in order.
  EXPECT_EQ(events.front().seq, 92u);
  EXPECT_EQ(events.back().seq, 99u);
  EXPECT_EQ(recorder.total_logged(), 100u);
}

TEST(FlightRecorder, TruncatesOverlongLabels) {
  FlightRecorder recorder(4);
  const std::string longlabel(200, 'x');
  recorder.log(FlightEventType::kSpan, longlabel.c_str(), 0.0);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label_view(),
            std::string(FlightEvent::kLabelCapacity - 1, 'x'));
}

TEST(FlightRecorder, NullLabelIsSafe) {
  FlightRecorder recorder(4);
  recorder.log(FlightEventType::kSpan, nullptr, 0.0);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label_view(), "");
}

TEST(FlightRecorder, DumpWithoutPathReturnsFalse) {
  FlightRecorder recorder(4);
  recorder.log(FlightEventType::kSpan, "e", 0.0);
  EXPECT_FALSE(recorder.trigger_dump("test"));
  EXPECT_EQ(recorder.dumps_written(), 0u);
}

TEST(FlightRecorder, DumpWritesHeaderAndOneLinePerEvent) {
  testing::TempDir dir("flight_dump");
  const auto path = dir.path() / "nested" / "flight.jsonl";
  FlightRecorder recorder(16);
  recorder.set_dump_path(path);
  recorder.log(FlightEventType::kSloBurnPage, "edge_iteration", 5.0, 0x1234,
               2.5);
  recorder.log(FlightEventType::kCrashPoint, "pre_checkpoint_write", 6.0);
  ASSERT_TRUE(recorder.trigger_dump("crash_point"));
  EXPECT_EQ(recorder.dumps_written(), 1u);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"flight_dump\":\"crash_point\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"events\":2"), std::string::npos);
  // Event lines round-trip through the tracecat loader.
  const auto loaded = load_flight_jsonl(path);
  EXPECT_EQ(loaded.dump_reason, "crash_point");
  ASSERT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(loaded.events[0].type, "slo_burn_page");
  EXPECT_EQ(loaded.events[0].trace_id, 0x1234u);
  EXPECT_DOUBLE_EQ(loaded.events[0].a, 2.5);
  // The crash point is the dump's last event.
  EXPECT_EQ(loaded.events.back().type, "crash_point");
  EXPECT_EQ(loaded.events.back().label, "pre_checkpoint_write");
}

TEST(FlightRecorder, RedumpOverwritesWithNewerSnapshot) {
  testing::TempDir dir("flight_redump");
  const auto path = dir.path() / "flight.jsonl";
  FlightRecorder recorder(16);
  recorder.set_dump_path(path);
  recorder.log(FlightEventType::kSpan, "first", 0.0);
  ASSERT_TRUE(recorder.trigger_dump("one"));
  recorder.log(FlightEventType::kSpan, "second", 1.0);
  ASSERT_TRUE(recorder.trigger_dump("two"));
  const auto loaded = load_flight_jsonl(path);
  EXPECT_EQ(loaded.dump_reason, "two");
  ASSERT_EQ(loaded.events.size(), 2u);
  EXPECT_EQ(recorder.dumps_written(), 2u);
}

TEST(FlightRecorder, ConcurrentWritersNeverProduceTornEvents) {
  FlightRecorder recorder(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      const std::string label = "writer_" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        recorder.log(FlightEventType::kSpan, label.c_str(),
                     static_cast<double>(i),
                     static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  // Snapshot concurrently with the writers: torn slots must be dropped,
  // never surfaced as garbage.
  for (int round = 0; round < 50; ++round) {
    for (const FlightEvent& event : recorder.snapshot()) {
      const std::string label = event.label_view();
      ASSERT_EQ(label.rfind("writer_", 0), 0u) << "torn label: " << label;
      const auto writer = static_cast<std::uint64_t>(label.back() - '0');
      ASSERT_EQ(event.trace_id, writer + 1) << "label/trace mismatch";
    }
  }
  for (auto& thread : writers) {
    thread.join();
  }
  EXPECT_EQ(recorder.total_logged(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.snapshot().size(), 64u);
}

TEST(FlightEventJson, RendersStableFieldSet) {
  FlightEvent event;
  event.seq = 7;
  event.trace_id = 0xdeadbeef;
  event.t_sec = 12.5;
  event.a = 1.0;
  event.b = 2.0;
  event.type = FlightEventType::kRetry;
  std::snprintf(event.label, sizeof(event.label), "%s", "timeout");
  const std::string json = flight_event_json(event);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"00000000deadbeef\""),
            std::string::npos);
}

}  // namespace
}  // namespace emap::obs
