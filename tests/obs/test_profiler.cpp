#include "emap/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "emap/obs/export.hpp"
#include "emap/obs/metrics.hpp"
#include "support/test_util.hpp"

namespace emap::obs {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::ostringstream out;
  out << stream.rdbuf();
  return out.str();
}

const StageProfile* find_stage(const std::vector<StageProfile>& stages,
                               const std::string& path) {
  for (const auto& stage : stages) {
    if (stage.path == path) {
      return &stage;
    }
  }
  return nullptr;
}

TEST(Profiler, AggregatesNestedScopesByPath) {
  Profiler profiler;
  for (int i = 0; i < 3; ++i) {
    ProfileScope outer("window", profiler);
    {
      ProfileScope inner("search", profiler);
      inner.add_work(10);
    }
    {
      ProfileScope inner("search", profiler);
    }
  }
  const auto stages = profiler.report();
  const auto* window = find_stage(stages, "window");
  const auto* search = find_stage(stages, "window/search");
  ASSERT_NE(window, nullptr);
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(window->calls, 3u);
  EXPECT_EQ(search->calls, 6u);
  EXPECT_EQ(search->work, 30u);
  // Inclusive parent time covers the children; self excludes them.
  EXPECT_GE(window->total_sec, search->total_sec);
  EXPECT_LE(window->self_sec, window->total_sec);
  EXPECT_GE(search->self_sec, 0.0);
}

TEST(Profiler, SiblingScopesRootSeparatePaths) {
  Profiler profiler;
  { ProfileScope a("fir", profiler); }
  { ProfileScope b("codec", profiler); }
  const auto stages = profiler.report();
  EXPECT_NE(find_stage(stages, "fir"), nullptr);
  EXPECT_NE(find_stage(stages, "codec"), nullptr);
  EXPECT_EQ(find_stage(stages, "fir/codec"), nullptr);
}

TEST(Profiler, ReportIsSortedByPath) {
  Profiler profiler;
  { ProfileScope z("zeta", profiler); }
  { ProfileScope a("alpha", profiler); }
  const auto stages = profiler.report();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].path, "alpha");
  EXPECT_EQ(stages[1].path, "zeta");
}

TEST(Profiler, GlobalScopesStayInertWhileDisabled) {
  Profiler::set_enabled(false);
  Profiler::instance().reset();
  { EMAP_PROFILE_SCOPE("should_not_record"); }
  for (const auto& stage : Profiler::instance().report()) {
    EXPECT_EQ(stage.calls, 0u) << stage.path;
  }
}

TEST(Profiler, GlobalScopesRecordWhileEnabled) {
  Profiler::instance().reset();
  Profiler::set_enabled(true);
  {
    ProfileScope scope("enabled_stage");
    scope.add_work(5);
  }
  Profiler::set_enabled(false);
  const auto stages = Profiler::instance().report();
  const auto* stage = find_stage(stages, "enabled_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 1u);
  EXPECT_EQ(stage->work, 5u);
  Profiler::instance().reset();
}

TEST(Profiler, CollapsedStacksUseSemicolonsAndFloorAtOneMicrosecond) {
  Profiler profiler;
  {
    ProfileScope outer("a", profiler);
    ProfileScope inner("b", profiler);
  }
  const std::string stacks = profiler.to_collapsed_stacks();
  EXPECT_NE(stacks.find("a;b "), std::string::npos);
  // Both frames survive even when self time rounds to zero microseconds.
  std::istringstream lines(stacks);
  std::string line;
  int frames = 0;
  while (std::getline(lines, line)) {
    ++frames;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GE(std::stoll(line.substr(space + 1)), 1);
  }
  EXPECT_EQ(frames, 2);
}

TEST(Profiler, JsonProfileCarriesBuildStampAndStages) {
  Profiler profiler;
  { ProfileScope scope("stage", profiler); }
  const std::string json = profiler.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
}

TEST(Profiler, ResetClearsCountsButKeepsRecording) {
  Profiler profiler;
  { ProfileScope scope("stage", profiler); }
  profiler.reset();
  for (const auto& stage : profiler.report()) {
    EXPECT_EQ(stage.calls, 0u);
  }
  { ProfileScope scope("stage", profiler); }
  const auto* stage = find_stage(profiler.report(), "stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 1u);
}

TEST(Profiler, WorkerThreadsRootTheirOwnTrees) {
  Profiler profiler;
  { ProfileScope scope("main_stage", profiler); }
  std::thread worker([&profiler] {
    ProfileScope scope("worker_stage", profiler);
  });
  worker.join();
  const auto stages = profiler.report();
  EXPECT_NE(find_stage(stages, "main_stage"), nullptr);
  EXPECT_NE(find_stage(stages, "worker_stage"), nullptr);
}

TEST(Profiler, MergesSamePathAcrossThreads) {
  Profiler profiler;
  auto record = [&profiler] {
    ProfileScope scope("shared_stage", profiler);
    scope.add_work(1);
  };
  record();
  std::thread worker(record);
  worker.join();
  const auto* stage = find_stage(profiler.report(), "shared_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 2u);
  EXPECT_EQ(stage->work, 2u);
}

TEST(Profiler, AttributesAllocationsToTheActiveScope) {
  Profiler profiler;
  {
    ProfileScope scope("allocating_stage", profiler);
    // Force real heap traffic through the interposed operator new; the
    // volatile pointer keeps the optimizer from eliding the allocation.
    std::vector<double>* victim = new std::vector<double>(1024, 1.0);
    volatile auto* keep = victim;
    (void)keep;
    delete victim;
  }
  const auto* stage = find_stage(profiler.report(), "allocating_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_GE(stage->alloc_count, 1u);
  EXPECT_GE(stage->alloc_bytes, 1024u * sizeof(double));
}

TEST(Profiler, NestedScopeAllocationsDoNotDoubleCountInTheParent) {
  Profiler profiler;
  std::uint64_t inner_bytes = 0;
  {
    ProfileScope outer("outer", profiler);
    {
      ProfileScope inner("inner", profiler);
      // Write through a volatile view so the compiler cannot elide the
      // new/delete pair (N3664 allows removing unobserved allocations).
      char* block = new char[4096];
      volatile char* touch = block;
      touch[0] = 1;
      delete[] block;
    }
    const auto* inner_stage = find_stage(profiler.report(), "outer/inner");
    ASSERT_NE(inner_stage, nullptr);
    inner_bytes = inner_stage->alloc_bytes;
  }
  EXPECT_GE(inner_bytes, 4096u);
  // The parent's own counter only holds what it allocated itself (the
  // report() call above may allocate under "outer", so bound it rather
  // than requiring zero): the inner 4096-byte block must not re-appear.
  const auto* outer_stage = find_stage(profiler.report(), "outer");
  ASSERT_NE(outer_stage, nullptr);
  const auto* inner_stage = find_stage(profiler.report(), "outer/inner");
  ASSERT_NE(inner_stage, nullptr);
  EXPECT_GE(inner_stage->alloc_bytes, 4096u);
}

TEST(Profiler, AllocationOutsideAnyScopeIsNotAttributed) {
  Profiler profiler;
  { ProfileScope scope("quiet", profiler); }
  const auto before = find_stage(profiler.report(), "quiet")->alloc_count;
  auto* block = new char[512];
  volatile auto* keep = block;
  (void)keep;
  delete[] block;
  EXPECT_EQ(find_stage(profiler.report(), "quiet")->alloc_count, before);
}

TEST(Profiler, ResetClearsAllocationCounters) {
  Profiler profiler;
  {
    ProfileScope scope("stage", profiler);
    volatile auto* keep = new int(42);
    delete keep;
  }
  profiler.reset();
  const auto* stage = find_stage(profiler.report(), "stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->alloc_count, 0u);
  EXPECT_EQ(stage->alloc_bytes, 0u);
}

TEST(Profiler, JsonProfileCarriesAllocationFields) {
  Profiler profiler;
  {
    ProfileScope scope("stage", profiler);
    volatile auto* keep = new int(7);
    delete keep;
  }
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"alloc_count\":"), std::string::npos);
  EXPECT_NE(json.find("\"alloc_bytes\":"), std::string::npos);
}

TEST(Profiler, ExportsAllocationGauges) {
  Profiler profiler;
  {
    ProfileScope scope("search", profiler);
    volatile auto* keep = new char[256];
    delete[] keep;
  }
  MetricsRegistry registry;
  export_profiler_alloc_metrics(registry, profiler);
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("emap_profiler_alloc_count{stage=\"search\"}"),
            std::string::npos);
  EXPECT_NE(text.find("emap_profiler_alloc_bytes{stage=\"search\"}"),
            std::string::npos);
}

TEST(Profiler, WritesJsonAndCollapsedStacksToDisk) {
  testing::TempDir dir("profiler");
  Profiler profiler;
  { ProfileScope scope("stage", profiler); }
  const auto json_path = dir.path() / "deep" / "profile.json";
  const auto flame_path = dir.path() / "deep" / "flame.txt";
  write_profile_json(json_path, profiler);
  write_collapsed_stacks(flame_path, profiler);
  EXPECT_NE(slurp(json_path).find("\"stages\":["), std::string::npos);
  EXPECT_NE(slurp(flame_path).find("stage "), std::string::npos);
}

}  // namespace
}  // namespace emap::obs
