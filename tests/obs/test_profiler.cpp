#include "emap/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "support/test_util.hpp"

namespace emap::obs {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::ostringstream out;
  out << stream.rdbuf();
  return out.str();
}

const StageProfile* find_stage(const std::vector<StageProfile>& stages,
                               const std::string& path) {
  for (const auto& stage : stages) {
    if (stage.path == path) {
      return &stage;
    }
  }
  return nullptr;
}

TEST(Profiler, AggregatesNestedScopesByPath) {
  Profiler profiler;
  for (int i = 0; i < 3; ++i) {
    ProfileScope outer("window", profiler);
    {
      ProfileScope inner("search", profiler);
      inner.add_work(10);
    }
    {
      ProfileScope inner("search", profiler);
    }
  }
  const auto stages = profiler.report();
  const auto* window = find_stage(stages, "window");
  const auto* search = find_stage(stages, "window/search");
  ASSERT_NE(window, nullptr);
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(window->calls, 3u);
  EXPECT_EQ(search->calls, 6u);
  EXPECT_EQ(search->work, 30u);
  // Inclusive parent time covers the children; self excludes them.
  EXPECT_GE(window->total_sec, search->total_sec);
  EXPECT_LE(window->self_sec, window->total_sec);
  EXPECT_GE(search->self_sec, 0.0);
}

TEST(Profiler, SiblingScopesRootSeparatePaths) {
  Profiler profiler;
  { ProfileScope a("fir", profiler); }
  { ProfileScope b("codec", profiler); }
  const auto stages = profiler.report();
  EXPECT_NE(find_stage(stages, "fir"), nullptr);
  EXPECT_NE(find_stage(stages, "codec"), nullptr);
  EXPECT_EQ(find_stage(stages, "fir/codec"), nullptr);
}

TEST(Profiler, ReportIsSortedByPath) {
  Profiler profiler;
  { ProfileScope z("zeta", profiler); }
  { ProfileScope a("alpha", profiler); }
  const auto stages = profiler.report();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].path, "alpha");
  EXPECT_EQ(stages[1].path, "zeta");
}

TEST(Profiler, GlobalScopesStayInertWhileDisabled) {
  Profiler::set_enabled(false);
  Profiler::instance().reset();
  { EMAP_PROFILE_SCOPE("should_not_record"); }
  for (const auto& stage : Profiler::instance().report()) {
    EXPECT_EQ(stage.calls, 0u) << stage.path;
  }
}

TEST(Profiler, GlobalScopesRecordWhileEnabled) {
  Profiler::instance().reset();
  Profiler::set_enabled(true);
  {
    ProfileScope scope("enabled_stage");
    scope.add_work(5);
  }
  Profiler::set_enabled(false);
  const auto stages = Profiler::instance().report();
  const auto* stage = find_stage(stages, "enabled_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 1u);
  EXPECT_EQ(stage->work, 5u);
  Profiler::instance().reset();
}

TEST(Profiler, CollapsedStacksUseSemicolonsAndFloorAtOneMicrosecond) {
  Profiler profiler;
  {
    ProfileScope outer("a", profiler);
    ProfileScope inner("b", profiler);
  }
  const std::string stacks = profiler.to_collapsed_stacks();
  EXPECT_NE(stacks.find("a;b "), std::string::npos);
  // Both frames survive even when self time rounds to zero microseconds.
  std::istringstream lines(stacks);
  std::string line;
  int frames = 0;
  while (std::getline(lines, line)) {
    ++frames;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GE(std::stoll(line.substr(space + 1)), 1);
  }
  EXPECT_EQ(frames, 2);
}

TEST(Profiler, JsonProfileCarriesBuildStampAndStages) {
  Profiler profiler;
  { ProfileScope scope("stage", profiler); }
  const std::string json = profiler.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
}

TEST(Profiler, ResetClearsCountsButKeepsRecording) {
  Profiler profiler;
  { ProfileScope scope("stage", profiler); }
  profiler.reset();
  for (const auto& stage : profiler.report()) {
    EXPECT_EQ(stage.calls, 0u);
  }
  { ProfileScope scope("stage", profiler); }
  const auto* stage = find_stage(profiler.report(), "stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 1u);
}

TEST(Profiler, WorkerThreadsRootTheirOwnTrees) {
  Profiler profiler;
  { ProfileScope scope("main_stage", profiler); }
  std::thread worker([&profiler] {
    ProfileScope scope("worker_stage", profiler);
  });
  worker.join();
  const auto stages = profiler.report();
  EXPECT_NE(find_stage(stages, "main_stage"), nullptr);
  EXPECT_NE(find_stage(stages, "worker_stage"), nullptr);
}

TEST(Profiler, MergesSamePathAcrossThreads) {
  Profiler profiler;
  auto record = [&profiler] {
    ProfileScope scope("shared_stage", profiler);
    scope.add_work(1);
  };
  record();
  std::thread worker(record);
  worker.join();
  const auto* stage = find_stage(profiler.report(), "shared_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 2u);
  EXPECT_EQ(stage->work, 2u);
}

TEST(Profiler, WritesJsonAndCollapsedStacksToDisk) {
  testing::TempDir dir("profiler");
  Profiler profiler;
  { ProfileScope scope("stage", profiler); }
  const auto json_path = dir.path() / "deep" / "profile.json";
  const auto flame_path = dir.path() / "deep" / "flame.txt";
  write_profile_json(json_path, profiler);
  write_collapsed_stacks(flame_path, profiler);
  EXPECT_NE(slurp(json_path).find("\"stages\":["), std::string::npos);
  EXPECT_NE(slurp(flame_path).find("stage "), std::string::npos);
}

}  // namespace
}  // namespace emap::obs
