#include "emap/obs/tracecat.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/trace_context.hpp"
#include "support/test_util.hpp"

namespace emap::obs {
namespace {

TEST(ParseFlatJson, ParsesStringsNumbersAndBareTokens) {
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(
      R"({"name":"window_3","dur":0.25,"ok":true,"none":null})", fields));
  EXPECT_EQ(fields.at("name"), "window_3");
  EXPECT_EQ(fields.at("dur"), "0.25");
  EXPECT_EQ(fields.at("ok"), "true");
  EXPECT_EQ(fields.at("none"), "null");
}

TEST(ParseFlatJson, UnescapesStringValues) {
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(R"({"a":"x\"y\\z\n","b":"A"})", fields));
  EXPECT_EQ(fields.at("a"), "x\"y\\z\n");
  EXPECT_EQ(fields.at("b"), "A");
}

TEST(ParseFlatJson, RejectsMalformedAndNestedInput) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(parse_flat_json("", fields));
  EXPECT_FALSE(parse_flat_json("not json", fields));
  EXPECT_FALSE(parse_flat_json(R"({"a":1)", fields));          // truncated
  EXPECT_FALSE(parse_flat_json(R"({"a":{"b":1}})", fields));   // nested
  EXPECT_FALSE(parse_flat_json(R"({"a":[1,2]})", fields));     // array
  EXPECT_FALSE(parse_flat_json(R"({"a":1} trailing)", fields));
  EXPECT_FALSE(parse_flat_json(R"({"a":"unterminated)", fields));
  EXPECT_TRUE(parse_flat_json("{}", fields));
  EXPECT_TRUE(fields.empty());
}

TEST(LoadSpansJsonl, ThrowsOnMissingFileSkipsBadLines) {
  testing::TempDir dir("tracecat_spans");
  EXPECT_THROW(load_spans_jsonl(dir.path() / "absent.jsonl"), IoError);

  const auto path = dir.path() / "spans.jsonl";
  {
    std::ofstream out(path);
    Tracer tracer;
    const auto root =
        tracer.record_sim("window_0", "window", 0.0, 1.0, 0, 0x77);
    tracer.record_sim("delta_EC", "upload", 0.0, 0.25, root, 0x77);
    for (const auto& span : tracer.spans()) {
      out << span_json(span) << "\n";
    }
    out << "garbage line\n";
    out << "{\"no_span_id\":1}\n";
  }
  const auto result = load_spans_jsonl(path);
  ASSERT_EQ(result.spans.size(), 2u);
  EXPECT_EQ(result.skipped_lines, 2u);
  EXPECT_EQ(result.spans[0].name, "window_0");
  EXPECT_EQ(result.spans[0].trace_id, 0x77u);
  EXPECT_EQ(result.spans[1].category, "upload");
  EXPECT_EQ(result.spans[1].parent, result.spans[0].span_id);
  EXPECT_DOUBLE_EQ(result.spans[1].sim_dur_sec, 0.25);
}

ParsedSpan make_span(std::uint64_t id, std::uint64_t parent,
                     std::uint64_t trace, const std::string& name,
                     const std::string& category, double start, double dur) {
  ParsedSpan span;
  span.span_id = id;
  span.parent = parent;
  span.trace_id = trace;
  span.name = name;
  span.category = category;
  span.sim_start_sec = start;
  span.sim_dur_sec = dur;
  return span;
}

std::vector<ParsedSpan> one_window_trace(std::uint64_t trace) {
  return {
      make_span(1, 0, trace, "window_4", "window", 4.0, 1.0),
      make_span(2, 1, trace, "delta_EC", "upload", 4.0, 0.30),
      make_span(3, 2, trace, "queue_wait", "cloud", 4.30, 0.05),
      make_span(4, 3, trace, "cloud_scan", "cloud", 4.35, 1.20),
      make_span(5, 1, trace, "delta_CS", "cloud-search", 4.30, 1.25),
      make_span(6, 1, trace, "delta_CE", "download", 5.55, 0.20),
      make_span(7, 1, trace, "track", "edge-track", 5.75, 0.40),
      make_span(8, 1, trace, "predict", "prediction", 6.15, 0.01),
      make_span(9, 1, trace, "timeout", "retry", 4.0, 0.50),
  };
}

TEST(BuildCriticalPaths, DecomposesTheEqFourLegs) {
  const auto paths = build_critical_paths(one_window_trace(0xaa));
  ASSERT_EQ(paths.size(), 1u);
  const auto& path = paths[0];
  EXPECT_EQ(path.trace_id, 0xaau);
  EXPECT_EQ(path.window_index, 4);
  EXPECT_DOUBLE_EQ(path.window_start_sec, 4.0);
  EXPECT_DOUBLE_EQ(path.uplink_sec, 0.30);
  EXPECT_DOUBLE_EQ(path.queue_sec, 0.05);
  // Both the CloudService cloud_scan span and the edge-side delta_CS
  // estimate count as scan time.
  EXPECT_NEAR(path.scan_sec, 2.45, 1e-12);
  EXPECT_DOUBLE_EQ(path.downlink_sec, 0.20);
  EXPECT_NEAR(path.edge_sec, 0.41, 1e-12);
  EXPECT_DOUBLE_EQ(path.retry_sec, 0.50);
  EXPECT_DOUBLE_EQ(path.initial_response_sec(),
                   path.uplink_sec + path.queue_sec + path.scan_sec +
                       path.downlink_sec);
  EXPECT_TRUE(path.has_edge);
  EXPECT_TRUE(path.has_cloud);
  EXPECT_TRUE(path.complete());
  EXPECT_EQ(path.spans, 9u);
}

TEST(BuildCriticalPaths, IgnoresUntracedSpansAndOrdersByWindow) {
  std::vector<ParsedSpan> spans;
  spans.push_back(make_span(1, 0, 0, "untraced", "upload", 0.0, 9.0));
  spans.push_back(make_span(2, 0, 0xb, "window_7", "window", 7.0, 1.0));
  spans.push_back(make_span(3, 0, 0xc, "window_2", "window", 2.0, 1.0));
  spans.push_back(make_span(4, 0, 0xd, "orphan", "upload", 0.0, 0.1));
  const auto paths = build_critical_paths(spans);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].window_index, 2);
  EXPECT_EQ(paths[1].window_index, 7);
  // The trace with no window root sorts last with an unknown index.
  EXPECT_EQ(paths[2].window_index, -1);
  EXPECT_FALSE(paths[2].complete());
}

TEST(BuildCriticalPaths, CountsFlightEventsPerTrace) {
  ParsedFlightEvent mine;
  mine.seq = 0;
  mine.type = "retry";
  mine.trace_id = 0xaa;
  ParsedFlightEvent other;
  other.seq = 1;
  other.type = "shed";
  other.trace_id = 0x123456;
  ParsedFlightEvent untraced;
  untraced.seq = 2;
  untraced.type = "span";
  untraced.trace_id = 0;
  const auto paths = build_critical_paths(one_window_trace(0xaa),
                                          {mine, other, untraced});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].flight_events, 1u);
}

TEST(CriticalPathTable, RendersRowsTotalsAndCompleteness) {
  const auto paths = build_critical_paths(one_window_trace(0xaa));
  const std::string table = critical_path_table(paths);
  EXPECT_NE(table.find("window"), std::string::npos);
  EXPECT_NE(table.find("00000000000000aa"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("1 traces (1 complete edge+cloud)"),
            std::string::npos);
}

TEST(CriticalPathJsonl, RoundTripsThroughTheFlatParser) {
  const auto paths = build_critical_paths(one_window_trace(0xaa));
  const std::string jsonl = critical_path_jsonl(paths);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(
      parse_flat_json(jsonl.substr(0, jsonl.find('\n')), fields));
  EXPECT_EQ(fields.at("trace_id"), "00000000000000aa");
  EXPECT_EQ(fields.at("window"), "4");
  EXPECT_EQ(fields.at("complete"), "true");
  EXPECT_DOUBLE_EQ(std::stod(fields.at("uplink_sec")), 0.30);
}

}  // namespace
}  // namespace emap::obs
