#include "emap/obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "emap/obs/metrics.hpp"

namespace emap::obs {
namespace {

TimeSeriesOptions small_options(std::size_t tier_capacity = 8,
                                std::size_t factor = 4) {
  TimeSeriesOptions options;
  options.enabled = true;
  options.tier_capacity = tier_capacity;
  options.downsample_factor = factor;
  return options;
}

TEST(TimeSeriesOptions, ValidatesPolicy) {
  TimeSeriesOptions options;
  EXPECT_NO_THROW(options.validate());
  options.scrape_interval_sec = 0.0;
  EXPECT_THROW(options.validate(), std::exception);
  options = TimeSeriesOptions{};
  options.tier_capacity = 4;
  options.downsample_factor = 10;  // batch larger than the tier
  EXPECT_THROW(options.validate(), std::exception);
}

TEST(Series, AppendAndQuery) {
  Series series("g", SeriesKind::kGauge, 16, 4);
  for (int i = 0; i < 10; ++i) {
    series.append(static_cast<double>(i), static_cast<double>(i * i));
  }
  EXPECT_EQ(series.total_buckets(), 10u);
  EXPECT_EQ(series.last_value().value(), 81.0);
  EXPECT_EQ(series.last_time_sec().value(), 9.0);
  EXPECT_EQ(series.max_over(100.0), 81.0);
  const auto window = series.buckets(3.0, 5.0);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window.front().first, 9.0);
}

TEST(Series, CompactionPreservesMassAndExtremes) {
  Series series("g", SeriesKind::kGauge, 8, 4);
  double expected_sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double value = std::sin(0.1 * i) * 10.0;
    series.append(static_cast<double>(i), value);
    expected_sum += value;
  }
  // 100 raw appends with capacity 8/factor 4: raw keeps <= 8, tier 1
  // absorbs merged batches; nothing dropped yet (tier 2 far from full).
  EXPECT_EQ(series.dropped_buckets(), 0u);
  double total_sum = 0.0;
  std::uint64_t total_count = 0;
  double last_end = -1.0;
  for (const SeriesBucket& bucket : series.buckets()) {
    total_sum += bucket.sum;
    total_count += bucket.count;
    EXPECT_GE(bucket.t_start_sec, last_end);  // chronological across tiers
    last_end = bucket.t_end_sec;
    EXPECT_LE(bucket.min, bucket.max);
  }
  EXPECT_EQ(total_count, 100u);
  EXPECT_NEAR(total_sum, expected_sum, 1e-9);
}

TEST(Series, MemoryBoundedForArbitrarilyLongRuns) {
  const std::size_t capacity = 8, factor = 4;
  Series series("g", SeriesKind::kGauge, capacity, factor);
  for (int i = 0; i < 100000; ++i) {
    series.append(static_cast<double>(i), 1.0);
  }
  EXPECT_LE(series.total_buckets(), 3 * capacity);
  EXPECT_GT(series.dropped_buckets(), 0u);  // coarsest tier rolled over
}

TEST(Series, CounterRateSurvivesCompaction) {
  // A counter increasing by exactly 2/s; rate_over must stay 2 even when
  // the window spans compacted buckets.
  Series series("c", SeriesKind::kCounter, 8, 4);
  for (int i = 0; i < 200; ++i) {
    series.append(static_cast<double>(i), 2.0 * i);
  }
  EXPECT_NEAR(series.rate_over(50.0), 2.0, 1e-9);
  EXPECT_NEAR(series.rate_over(5.0), 2.0, 1e-9);
}

TEST(TimeSeriesStore, ScrapesEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.counter("emap_c", {}, "c").increment(5);
  registry.gauge("emap_g", {{"shard", "0"}}, "g").set(2.5);
  Histogram& histogram =
      registry.histogram("emap_h", {}, Histogram::linear_bounds(0, 10, 10));
  histogram.observe(1.0);
  histogram.observe(3.0);

  TimeSeriesStore store(small_options());
  store.scrape(registry, 1.0);

  ASSERT_NE(store.find("emap_c"), nullptr);
  EXPECT_EQ(store.find("emap_c")->last_value().value(), 5.0);
  ASSERT_NE(store.find("emap_g{shard=\"0\"}"), nullptr);
  EXPECT_EQ(store.find("emap_g{shard=\"0\"}")->last_value().value(), 2.5);
  ASSERT_NE(store.find("emap_h:count"), nullptr);
  EXPECT_EQ(store.find("emap_h:count")->last_value().value(), 2.0);
  ASSERT_NE(store.find("emap_h:sum"), nullptr);
  EXPECT_EQ(store.find("emap_h:sum")->last_value().value(), 4.0);
  ASSERT_NE(store.find("emap_h:mean"), nullptr);
  EXPECT_EQ(store.find("emap_h:mean")->last_value().value(), 2.0);
  ASSERT_NE(store.find("emap_h:p95"), nullptr);
}

TEST(TimeSeriesStore, HistogramMeanIsPerIntervalWithCarryForward) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("emap_h", {}, Histogram::linear_bounds(0, 100, 10));
  TimeSeriesStore store(small_options());

  histogram.observe(10.0);
  store.scrape(registry, 1.0);  // interval mean 10
  histogram.observe(20.0);
  histogram.observe(40.0);
  store.scrape(registry, 2.0);  // interval mean (20+40)/2 = 30
  store.scrape(registry, 3.0);  // empty interval: carries 30 forward

  const auto buckets = store.find("emap_h:mean")->buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].last, 10.0);
  EXPECT_EQ(buckets[1].last, 30.0);
  EXPECT_EQ(buckets[2].last, 30.0);
}

TEST(TimeSeriesStore, BucketCapacityBoundsTotalBuckets) {
  MetricsRegistry registry;
  registry.counter("emap_c").increment();
  registry.gauge("emap_g").set(1.0);
  TimeSeriesStore store(small_options(4, 2));
  for (int i = 0; i < 5000; ++i) {
    store.scrape(registry, static_cast<double>(i));
  }
  EXPECT_LE(store.total_buckets(), store.bucket_capacity());
  EXPECT_GT(store.approx_bytes(), 0u);
  EXPECT_EQ(store.scrapes(), 5000u);
}

TEST(TimeSeriesStore, KeysInFirstScrapeOrderAndJsonlRoundShape) {
  MetricsRegistry registry;
  registry.counter("emap_b").increment();
  registry.counter("emap_a").increment();
  TimeSeriesStore store(small_options());
  store.scrape(registry, 1.0);
  // Registration order, not alphabetical.
  const auto keys = store.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "emap_b");
  EXPECT_EQ(keys[1], "emap_a");

  const std::string jsonl = store.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"series\":"), std::string::npos);
    EXPECT_NE(line.find("\"tier\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(TimeSeriesStore, SkipFamiliesAreNeverScraped) {
  MetricsRegistry registry;
  registry.counter("emap_keep").increment();
  registry.histogram("emap_wall_seconds", {},
                     Histogram::default_latency_bounds())
      .observe(0.1);
  TimeSeriesOptions options = small_options();
  options.skip_families = {"emap_wall_seconds"};
  TimeSeriesStore store(options);
  store.scrape(registry, 1.0);
  EXPECT_NE(store.find("emap_keep"), nullptr);
  EXPECT_EQ(store.find("emap_wall_seconds:count"), nullptr);
  EXPECT_EQ(store.find("emap_wall_seconds:sum"), nullptr);
  EXPECT_EQ(store.keys().size(), 1u);
}

TEST(TimeSeriesStore, IdenticalScrapeSequencesExportIdenticalJsonl) {
  auto run_once = [] {
    MetricsRegistry registry;
    Counter& c = registry.counter("emap_c");
    Gauge& g = registry.gauge("emap_g");
    Histogram& h =
        registry.histogram("emap_h", {}, Histogram::linear_bounds(0, 1, 8));
    TimeSeriesStore store(small_options());
    for (int i = 0; i < 500; ++i) {
      c.increment(static_cast<std::uint64_t>(i % 3));
      g.set(std::cos(0.2 * i));
      h.observe(0.5 + 0.4 * std::sin(0.3 * i));
      store.scrape(registry, static_cast<double>(i));
    }
    return store.to_jsonl();
  };
  EXPECT_EQ(run_once(), run_once());  // bit-identical
}

TEST(TimeSeriesScraper, RateLimitsAndCatchesUpWithOneScrape) {
  MetricsRegistry registry;
  registry.counter("emap_c").increment();
  TimeSeriesStore store(small_options());
  TimeSeriesScraper scraper(&registry, &store);

  EXPECT_FALSE(scraper.maybe_scrape(0.5));  // before first due instant
  EXPECT_TRUE(scraper.maybe_scrape(1.0));
  EXPECT_FALSE(scraper.maybe_scrape(1.5));
  EXPECT_TRUE(scraper.maybe_scrape(2.0));
  // A 100 s stall catches up with ONE scrape, then resumes the grid.
  EXPECT_TRUE(scraper.maybe_scrape(102.3));
  EXPECT_EQ(store.scrapes(), 3u);
  EXPECT_FALSE(scraper.maybe_scrape(102.9));
  EXPECT_TRUE(scraper.maybe_scrape(103.0));
}

TEST(TimeSeriesStore, WriteJsonlCreatesParents) {
  MetricsRegistry registry;
  registry.counter("emap_c").increment();
  TimeSeriesStore store(small_options());
  store.scrape(registry, 1.0);
  const auto dir = std::filesystem::temp_directory_path() /
                   "emap_timeseries_test" / "nested";
  const auto path = dir / "series.jsonl";
  std::filesystem::remove_all(dir.parent_path());
  store.write_jsonl(path);
  std::ifstream stream(path);
  ASSERT_TRUE(stream.good());
  std::string line;
  EXPECT_TRUE(static_cast<bool>(std::getline(stream, line)));
  std::filesystem::remove_all(dir.parent_path());
}

TEST(SeriesKeyFor, FormatsLabels) {
  EXPECT_EQ(series_key_for("emap_x", {}), "emap_x");
  EXPECT_EQ(series_key_for("emap_x", {{"a", "1"}, {"b", "2"}}),
            "emap_x{a=\"1\",b=\"2\"}");
}

}  // namespace
}  // namespace emap::obs
