#include "emap/obs/dashboard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "emap/obs/alert.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/timeseries.hpp"

namespace emap::obs {
namespace {

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::vector<SeriesBucket> step_series(std::size_t n, std::size_t step_at,
                                      double low, double high,
                                      double noise = 0.0) {
  std::vector<SeriesBucket> buckets(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = i < step_at ? low : high;
    const double value =
        base + noise * std::sin(0.9 * static_cast<double>(i));
    buckets[i].t_start_sec = static_cast<double>(i);
    buckets[i].t_end_sec = static_cast<double>(i);
    buckets[i].min = buckets[i].max = value;
    buckets[i].first = buckets[i].last = value;
    buckets[i].sum = value;
    buckets[i].count = 1;
  }
  return buckets;
}

TEST(LoadSeriesJsonl, RoundTripsAStoreExport) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("emap_c");
  registry.gauge("emap_g", {{"shard", "1"}}).set(3.5);
  TimeSeriesOptions options;
  options.enabled = true;
  TimeSeriesStore store(options);
  for (int t = 1; t <= 5; ++t) {
    counter.increment(2);
    store.scrape(registry, static_cast<double>(t));
  }
  const auto path = temp_file("emap_dashboard_roundtrip.jsonl");
  store.write_jsonl(path);

  const SeriesLoadResult loaded = load_series_jsonl(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  ASSERT_EQ(loaded.series.size(), 2u);
  EXPECT_EQ(loaded.series[0].key, "emap_c");
  EXPECT_EQ(loaded.series[0].kind, "counter");
  ASSERT_EQ(loaded.series[0].buckets.size(), 5u);
  EXPECT_EQ(loaded.series[0].buckets.back().last, 10.0);
  EXPECT_EQ(loaded.series[0].buckets.back().t_end_sec, 5.0);
  EXPECT_EQ(loaded.series[1].key, "emap_g{shard=\"1\"}");
  EXPECT_EQ(loaded.series[1].kind, "gauge");
}

TEST(LoadSeriesJsonl, SkipsMalformedLinesLeniently) {
  const auto path = temp_file("emap_dashboard_malformed.jsonl");
  {
    std::ofstream stream(path);
    stream << R"({"series":"emap_g","kind":"gauge","tier":0,"t0":1,"t1":1,)"
           << R"("min":2,"max":2,"sum":2,"count":1,"first":2,"last":2})"
           << "\n";
    stream << "this is not json\n";
    stream << R"({"series":"emap_g","kind":"gauge","tier":0,"t0":2)"  // cut off
           << "\n";
    stream << "\n";  // blank: ignored, not counted as skipped
  }
  const SeriesLoadResult loaded = load_series_jsonl(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.series.size(), 1u);
  EXPECT_EQ(loaded.series[0].buckets.size(), 1u);
  EXPECT_EQ(loaded.skipped_lines, 2u);
}

TEST(LoadSeriesJsonl, ThrowsOnMissingFile) {
  EXPECT_THROW(load_series_jsonl("/nonexistent/series.jsonl"),
               std::exception);
}

TEST(LoadAlertsJsonl, RoundTripsEngineExport) {
  TimeSeriesOptions options;
  options.enabled = true;
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("emap_g");
  TimeSeriesStore store(options);
  AlertRule rule;
  rule.name = "r";
  rule.series = "emap_g";
  rule.value = 5.0;
  AlertEngine engine({rule});
  gauge.set(9.0);
  store.scrape(registry, 1.0);
  engine.evaluate(store, 1.0);
  gauge.set(1.0);
  store.scrape(registry, 2.0);
  engine.evaluate(store, 2.0);

  const auto path = temp_file("emap_dashboard_alerts.jsonl");
  engine.write_jsonl(path);
  const AlertLoadResult loaded = load_alerts_jsonl(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  ASSERT_EQ(loaded.transitions.size(), 2u);
  EXPECT_EQ(loaded.transitions[0].rule, "r");
  EXPECT_TRUE(loaded.transitions[0].firing);
  EXPECT_EQ(loaded.transitions[0].t_sec, 1.0);
  EXPECT_EQ(loaded.transitions[0].value, 9.0);
  EXPECT_FALSE(loaded.transitions[1].firing);
}

TEST(CusumChangepoint, LocatesACleanStep) {
  const auto buckets = step_series(100, 60, 1.0, 2.0, /*noise=*/0.05);
  const Changepoint cp = cusum_changepoint(buckets);
  ASSERT_TRUE(cp.found);
  // Excursion starts at (or within a couple of buckets after) the step.
  EXPECT_GE(cp.bucket_index, 58u);
  EXPECT_LE(cp.bucket_index, 63u);
  EXPECT_NEAR(cp.shift, 1.0, 0.2);
  EXPECT_EQ(cp.t_sec, buckets[cp.bucket_index].t_start_sec);
}

TEST(CusumChangepoint, FindsDownwardShifts) {
  const auto buckets = step_series(80, 40, 5.0, 3.0, 0.05);
  const Changepoint cp = cusum_changepoint(buckets);
  ASSERT_TRUE(cp.found);
  EXPECT_GE(cp.bucket_index, 38u);
  EXPECT_LE(cp.bucket_index, 43u);
  EXPECT_LT(cp.shift, 0.0);
}

TEST(CusumChangepoint, QuietOnStationaryOrDegenerateInput) {
  EXPECT_FALSE(cusum_changepoint({}).found);
  EXPECT_FALSE(cusum_changepoint(step_series(3, 2, 1.0, 9.0)).found);
  // Constant series: stddev 0, nothing to standardize against.
  EXPECT_FALSE(cusum_changepoint(step_series(50, 50, 1.0, 1.0)).found);
  // Stationary noise should not cross h=5.
  EXPECT_FALSE(
      cusum_changepoint(step_series(200, 200, 1.0, 1.0, 0.3)).found);
}

TEST(Sparkline, MapsRangeOntoBlocksAtRequestedWidth) {
  const std::string flat = sparkline({1.0, 1.0, 1.0, 1.0}, 4);
  EXPECT_FALSE(flat.empty());
  const std::string ramp =
      sparkline({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, 8);
  // 8 glyphs, each a 3-byte UTF-8 block character.
  EXPECT_EQ(ramp.size(), 8u * 3u);
  EXPECT_EQ(ramp.substr(0, 3), "▁");
  EXPECT_EQ(ramp.substr(ramp.size() - 3), "█");
  // More values than columns: resampled, still `width` glyphs.
  std::vector<double> many(100);
  for (std::size_t i = 0; i < many.size(); ++i) {
    many[i] = static_cast<double>(i);
  }
  EXPECT_EQ(sparkline(many, 10).size(), 10u * 3u);
  EXPECT_TRUE(sparkline({}, 10).empty());
}

TEST(RenderAsciiReport, ShowsSeriesAlertsAndChangepoints) {
  SeriesLoadResult series;
  series.series.push_back(
      {"emap_track_step_seconds:mean", "sample",
       step_series(100, 60, 0.1, 0.4, 0.005)});
  series.series.push_back({"emap_windows_total", "counter",
                           step_series(100, 100, 50.0, 50.0)});
  AlertLoadResult alerts;
  alerts.transitions.push_back(
      {"track_latency_step", "emap_track_step_seconds:mean", 62.0, true,
       0.4, 0.12});

  const std::string report = render_ascii_report(series, alerts);
  EXPECT_NE(report.find("emap_track_step_seconds:mean"), std::string::npos);
  EXPECT_NE(report.find("emap_windows_total"), std::string::npos);
  EXPECT_NE(report.find("changepoint"), std::string::npos);
  EXPECT_NE(report.find("track_latency_step"), std::string::npos);
  EXPECT_NE(report.find("FIRING"), std::string::npos);

  // Filter narrows the table to matching keys.
  ReportOptions options;
  options.series_filter = "track_step";
  const std::string filtered = render_ascii_report(series, alerts, options);
  EXPECT_NE(filtered.find("emap_track_step_seconds:mean"),
            std::string::npos);
  EXPECT_EQ(filtered.find("emap_windows_total"), std::string::npos);
}

TEST(RenderAsciiReport, HandlesEmptyInputs) {
  const std::string report =
      render_ascii_report(SeriesLoadResult{}, AlertLoadResult{});
  EXPECT_FALSE(report.empty());
}

TEST(RenderHtmlReport, SelfContainedWithMarkersAndEscaping) {
  SeriesLoadResult series;
  series.series.push_back({"emap_g{shard=\"<0>\"}", "gauge",
                           step_series(50, 30, 1.0, 2.0, 0.02)});
  AlertLoadResult alerts;
  alerts.transitions.push_back(
      {"rule_a", "emap_g{shard=\"<0>\"}", 31.0, true, 2.0, 1.1});

  const std::string html = render_html_report(series, alerts);
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
  EXPECT_NE(html.find("rule_a"), std::string::npos);
  // The raw label must be escaped, never embedded verbatim.
  EXPECT_EQ(html.find("shard=\"<0>\""), std::string::npos);
  EXPECT_NE(html.find("&lt;0&gt;"), std::string::npos);
  // No external assets: self-contained page.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

}  // namespace
}  // namespace emap::obs
