#include "emap/obs/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::obs {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::ostringstream out;
  out << stream.rdbuf();
  return out.str();
}

TEST(Tracer, ScopesNestParentIds) {
  Tracer tracer;
  {
    auto outer = tracer.scope("outer", "test");
    auto inner = tracer.scope("inner", "test");
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner scope closes (and records) first, chained to the outer span.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_GE(spans[0].wall_dur_us, 0.0);
  // Wall-only spans carry no virtual-clock stamp.
  EXPECT_LT(spans[0].sim_start_sec, 0.0);
}

TEST(Tracer, RecordSimStampsVirtualTime) {
  Tracer tracer;
  const auto parent = tracer.record_sim("call", "cloud-call", 1.0, 4.0);
  tracer.record_sim("delta_CS", "cloud-search", 1.5, 3.0, parent);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].sim_start_sec, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_dur_sec, 3.0);
  EXPECT_EQ(spans[1].parent, parent);
  EXPECT_DOUBLE_EQ(tracer.sim_total_seconds("cloud-search"), 1.5);
  EXPECT_DOUBLE_EQ(tracer.sim_total_seconds("absent"), 0.0);
}

TEST(ScopedTimer, RecordsIntoHistogram) {
  Histogram sink;
  { ScopedTimer timer(sink); }
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_GE(sink.sum(), 0.0);
}

TEST(TimelineView, ProjectsSimSpansOntoActivityRows) {
  Tracer tracer;
  tracer.record_sim("upload", "upload", 0.0, 0.25);
  tracer.record_sim("delta_CS", "cloud-search", 0.25, 2.25);
  tracer.record_sim("wall-only", "cloud-search", -1.0, 0.0);  // no sim stamp
  tracer.record_sim("aux", "not-a-row", 0.0, 1.0);
  const auto trace = timeline_view(tracer);
  EXPECT_DOUBLE_EQ(trace.total_seconds(sim::ActivityKind::kUpload), 0.25);
  EXPECT_DOUBLE_EQ(trace.total_seconds(sim::ActivityKind::kCloudSearch), 2.0);
  const auto* search = trace.first(sim::ActivityKind::kCloudSearch);
  ASSERT_NE(search, nullptr);
  // Span name becomes the label; a name equal to the category collapses.
  EXPECT_EQ(search->label, "delta_CS");
  EXPECT_EQ(trace.first(sim::ActivityKind::kUpload)->label, "");
}

TEST(ChromeTrace, EmitsNamedTracksAndCompleteEvents) {
  Tracer tracer;
  tracer.record_sim("delta_EC", "upload", 0.5, 0.75);
  const std::string json = to_chrome_trace(tracer);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Track metadata for the Fig. 9 rows plus the span itself.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"upload\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"delta_EC\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // SimTime seconds become microseconds.
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"sim\""), std::string::npos);
}

TEST(ChromeTrace, WritesFileToDisk) {
  testing::TempDir dir("chrome_trace");
  Tracer tracer;
  tracer.record_sim("x", "upload", 0.0, 1.0);
  const auto path = dir.path() / "nested" / "trace.json";
  write_chrome_trace(path, tracer);
  const std::string json = slurp(path);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Prometheus, FormatsCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.counter("emap_events_total", {{"kind", "seizure"}}, "Event count")
      .increment(7);
  registry.gauge("emap_depth", {}, "Queue depth").set(1.5);
  Histogram& histogram = registry.histogram(
      "emap_latency_seconds", {}, Histogram::linear_bounds(0.0, 4.0, 4));
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(999.0);  // overflow: only visible via +Inf

  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("# HELP emap_events_total Event count"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE emap_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("emap_events_total{kind=\"seizure\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE emap_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("emap_depth 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE emap_latency_seconds histogram"),
            std::string::npos);
  // Buckets are cumulative; empty bounds are skipped but +Inf always counts
  // everything.
  EXPECT_NE(text.find("emap_latency_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_latency_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_EQ(text.find("le=\"3\""), std::string::npos);
  EXPECT_NE(text.find("emap_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("emap_latency_seconds_sum 1001"), std::string::npos);
  EXPECT_NE(text.find("emap_latency_seconds_count 3"), std::string::npos);
}

TEST(Prometheus, EmitsTypeHeaderOncePerFamily) {
  MetricsRegistry registry;
  registry.counter("emap_msgs_total", {{"direction", "up"}}).increment();
  registry.counter("emap_msgs_total", {{"direction", "down"}}).increment();
  const std::string text = to_prometheus(registry);
  std::size_t headers = 0;
  for (std::size_t pos = text.find("# TYPE emap_msgs_total");
       pos != std::string::npos;
       pos = text.find("# TYPE emap_msgs_total", pos + 1)) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
}

// promtool-style lint of the exposition text: every line must be a valid
// comment or sample, every family must carry exactly one # HELP and one
// # TYPE emitted before its first sample, and families must not
// interleave.  Histogram families additionally must emit cumulative
// `_bucket{le=...}` series per label-set — ascending le, non-decreasing
// counts, a `+Inf` bucket equal to `_count` — plus `_sum` and `_count`.
// Returns the problems found (empty = lint-clean).
std::vector<std::string> lint_exposition(const std::string& text) {
  std::vector<std::string> problems;
  std::map<std::string, int> help_seen;
  std::map<std::string, int> type_seen;
  std::map<std::string, std::string> type_kind;
  std::set<std::string> sampled;   // families that already emitted samples
  std::set<std::string> finished;  // families whose block was left behind
  std::string current_family;

  // Per histogram series (family + labels minus `le`): the bucket ladder
  // in emission order plus the companion _sum/_count samples.
  struct HistogramSeries {
    std::vector<std::pair<double, double>> buckets;  // le -> cumulative
    bool has_inf = false;
    double inf_count = 0.0;
    bool has_sum = false;
    bool has_count = false;
    double count_value = 0.0;
  };
  std::map<std::string, HistogramSeries> histograms;

  // Splits `{a="1",le="0.5"}` into key/value pairs (no escapes needed for
  // the lint: the exporter escapes label values, and `le` values never
  // contain quotes).
  auto parse_labels = [](const std::string& block,
                         std::vector<std::pair<std::string, std::string>>&
                             labels) {
    std::size_t pos = 1;  // past '{'
    while (pos < block.size() && block[pos] != '}') {
      const std::size_t eq = block.find("=\"", pos);
      if (eq == std::string::npos) {
        return false;
      }
      const std::size_t close = block.find('"', eq + 2);
      if (close == std::string::npos) {
        return false;
      }
      labels.emplace_back(block.substr(pos, eq - pos),
                          block.substr(eq + 2, close - eq - 2));
      pos = close + 1;
      if (pos < block.size() && block[pos] == ',') {
        ++pos;
      }
    }
    return pos < block.size() && block[pos] == '}';
  };

  auto base_family = [](std::string name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        return name.substr(0, name.size() - s.size());
      }
    }
    return name;
  };
  auto valid_name = [](const std::string& name) {
    if (name.empty() || (std::isdigit(static_cast<unsigned char>(name[0])))) {
      return false;
    }
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')) {
        return false;
      }
    }
    return true;
  };

  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto fail = [&](const std::string& what) {
      problems.push_back("line " + std::to_string(line_no) + ": " + what +
                         ": " + line);
    };
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_help = line[2] == 'H';
      std::istringstream comment(line.substr(7));
      std::string name;
      std::string rest;
      comment >> name;
      std::getline(comment, rest);
      if (!valid_name(name)) {
        fail("bad metric name in comment");
        continue;
      }
      if (!is_help) {
        std::istringstream kind_stream(rest);
        std::string kind;
        kind_stream >> kind;
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          fail("unknown TYPE kind");
        }
        type_kind[name] = kind;
      }
      auto& seen = is_help ? help_seen : type_seen;
      if (++seen[name] > 1) {
        fail("duplicate HELP/TYPE for family");
      }
      if (sampled.count(name) != 0) {
        fail("HELP/TYPE after the family's samples");
      }
      if (name != current_family) {
        if (finished.count(name) != 0) {
          fail("family block interleaved");
        }
        if (!current_family.empty()) {
          finished.insert(current_family);
        }
        current_family = name;
      }
      continue;
    }
    if (line[0] == '#') {
      fail("unknown comment form");
      continue;
    }
    // Sample line: name[{labels}] value
    const std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      fail("sample without value");
      continue;
    }
    const std::string name = line.substr(0, name_end);
    if (!valid_name(name)) {
      fail("bad sample metric name");
      continue;
    }
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        fail("unterminated label set");
        continue;
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      fail("missing space before value");
      continue;
    }
    const std::string value = line.substr(value_start + 1);
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        fail("unparsable sample value");
        continue;
      }
    }
    const std::string family = base_family(name);
    if (type_seen.count(family) == 0) {
      fail("sample before its family's # TYPE");
    }
    // Histogram shape: collect the bucket ladder per label-set for the
    // end-of-text cumulative/`+Inf`/companion checks.
    if (type_kind.count(family) != 0 && type_kind[family] == "histogram") {
      std::vector<std::pair<std::string, std::string>> labels;
      std::string le;
      if (line[name_end] == '{') {
        if (!parse_labels(line.substr(name_end, value_start - name_end),
                          labels)) {
          fail("unparsable label set on histogram sample");
          continue;
        }
      }
      std::string series_key = family;
      for (const auto& [label, label_value] : labels) {
        if (label == "le") {
          le = label_value;
        } else {
          series_key += "," + label + "=" + label_value;
        }
      }
      HistogramSeries& series = histograms[series_key];
      const double sample = std::strtod(value.c_str(), nullptr);
      if (name.size() >= 7 &&
          name.compare(name.size() - 7, 7, "_bucket") == 0) {
        if (le.empty()) {
          fail("histogram _bucket without an le label");
        } else if (le == "+Inf") {
          series.has_inf = true;
          series.inf_count = sample;
        } else {
          series.buckets.emplace_back(std::strtod(le.c_str(), nullptr),
                                      sample);
        }
      } else if (name.size() >= 4 &&
                 name.compare(name.size() - 4, 4, "_sum") == 0) {
        series.has_sum = true;
      } else if (name.size() >= 6 &&
                 name.compare(name.size() - 6, 6, "_count") == 0) {
        series.has_count = true;
        series.count_value = sample;
      }
    }
    if (family != current_family) {
      if (finished.count(family) != 0) {
        fail("family samples interleaved");
      }
      if (!current_family.empty()) {
        finished.insert(current_family);
      }
      current_family = family;
    }
    sampled.insert(family);
  }
  // Finalize the histogram-shape checks over every collected series.
  for (const auto& [series_key, series] : histograms) {
    const auto fail = [&problems, key = series_key](const std::string& what) {
      problems.push_back("histogram " + key + ": " + what);
    };
    for (std::size_t i = 1; i < series.buckets.size(); ++i) {
      if (series.buckets[i].first <= series.buckets[i - 1].first) {
        fail("le bounds not ascending");
      }
      if (series.buckets[i].second < series.buckets[i - 1].second) {
        fail("bucket counts not cumulative");
      }
    }
    if (!series.has_inf) {
      fail("missing +Inf bucket");
    } else {
      if (!series.buckets.empty() &&
          series.inf_count < series.buckets.back().second) {
        fail("+Inf bucket below the last finite bucket");
      }
      if (series.has_count && series.inf_count != series.count_value) {
        fail("+Inf bucket != _count");
      }
    }
    if (!series.has_sum) {
      fail("missing _sum");
    }
    if (!series.has_count) {
      fail("missing _count");
    }
  }
  return problems;
}

TEST(PrometheusLint, FullRegistryExpositionIsLintClean) {
  MetricsRegistry registry;
  // A spread that exercises every exposition shape: multi-series counter
  // families, bare gauges, histograms with +Inf, non-finite values, and
  // names/labels that need sanitizing.
  registry.counter("emap_msgs_total", {{"direction", "up"}}, "Messages")
      .increment(3);
  registry.counter("emap_msgs_total", {{"direction", "down"}}, "Messages")
      .increment(4);
  registry.counter("emap.bad-name", {{"label-key", "v"}}).increment();
  registry.gauge("emap_profiler_alloc_bytes", {{"stage", "search/scan"}},
                 "Bytes")
      .set(4096);
  registry.gauge("emap_nan").set(std::numeric_limits<double>::quiet_NaN());
  Histogram& histogram = registry.histogram(
      "emap_latency_seconds", {{"slo", "edge"}},
      Histogram::linear_bounds(0.0, 4.0, 4), "Latency");
  histogram.observe(0.5);
  histogram.observe(99.0);

  const std::string text = to_prometheus(registry);
  const auto problems = lint_exposition(text);
  EXPECT_TRUE(problems.empty()) << [&] {
    std::string joined;
    for (const auto& problem : problems) {
      joined += problem + "\n";
    }
    return joined;
  }();
}

TEST(PrometheusLint, CatchesBrokenExpositions) {
  EXPECT_FALSE(
      lint_exposition("emap_orphan 1\n").empty());  // sample before TYPE
  EXPECT_FALSE(lint_exposition("# TYPE emap_x counter\n"
                               "# TYPE emap_x counter\n")
                   .empty());  // duplicate TYPE
  EXPECT_FALSE(lint_exposition("# TYPE emap_x counter\n"
                               "emap_x notanumber\n")
                   .empty());  // bad value
  EXPECT_FALSE(lint_exposition("# TYPE emap_a counter\n"
                               "emap_a 1\n"
                               "# TYPE emap_b counter\n"
                               "emap_b 1\n"
                               "emap_a 2\n")
                   .empty());  // interleaved families
}

TEST(PrometheusLint, CatchesBrokenHistogramShapes) {
  // A well-formed histogram block passes.
  EXPECT_TRUE(lint_exposition("# TYPE emap_h histogram\n"
                              "emap_h_bucket{le=\"0.5\"} 1\n"
                              "emap_h_bucket{le=\"1\"} 3\n"
                              "emap_h_bucket{le=\"+Inf\"} 4\n"
                              "emap_h_sum 2.5\n"
                              "emap_h_count 4\n")
                  .empty());
  // Non-cumulative bucket counts.
  EXPECT_FALSE(lint_exposition("# TYPE emap_h histogram\n"
                               "emap_h_bucket{le=\"0.5\"} 3\n"
                               "emap_h_bucket{le=\"1\"} 1\n"
                               "emap_h_bucket{le=\"+Inf\"} 3\n"
                               "emap_h_sum 1\n"
                               "emap_h_count 3\n")
                   .empty());
  // le bounds out of order.
  EXPECT_FALSE(lint_exposition("# TYPE emap_h histogram\n"
                               "emap_h_bucket{le=\"1\"} 1\n"
                               "emap_h_bucket{le=\"0.5\"} 2\n"
                               "emap_h_bucket{le=\"+Inf\"} 2\n"
                               "emap_h_sum 1\n"
                               "emap_h_count 2\n")
                   .empty());
  // Missing +Inf bucket.
  EXPECT_FALSE(lint_exposition("# TYPE emap_h histogram\n"
                               "emap_h_bucket{le=\"0.5\"} 1\n"
                               "emap_h_sum 0.2\n"
                               "emap_h_count 1\n")
                   .empty());
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(lint_exposition("# TYPE emap_h histogram\n"
                               "emap_h_bucket{le=\"+Inf\"} 3\n"
                               "emap_h_sum 1\n"
                               "emap_h_count 4\n")
                   .empty());
  // Missing _sum / _count companions.
  EXPECT_FALSE(lint_exposition("# TYPE emap_h histogram\n"
                               "emap_h_bucket{le=\"+Inf\"} 1\n")
                   .empty());
  // Label-sets are independent series: one per slo, both checked.
  EXPECT_TRUE(lint_exposition("# TYPE emap_h histogram\n"
                              "emap_h_bucket{le=\"1\",slo=\"a\"} 1\n"
                              "emap_h_bucket{le=\"+Inf\",slo=\"a\"} 1\n"
                              "emap_h_sum{slo=\"a\"} 0.4\n"
                              "emap_h_count{slo=\"a\"} 1\n"
                              "emap_h_bucket{le=\"1\",slo=\"b\"} 2\n"
                              "emap_h_bucket{le=\"+Inf\",slo=\"b\"} 2\n"
                              "emap_h_sum{slo=\"b\"} 0.9\n"
                              "emap_h_count{slo=\"b\"} 2\n")
                  .empty());
}

TEST(PrometheusSanitize, PassesLegalNamesThrough) {
  EXPECT_EQ(prometheus_sanitize_name("emap_slo_burn_rate"),
            "emap_slo_burn_rate");
  EXPECT_EQ(prometheus_sanitize_name("ns:metric_total"), "ns:metric_total");
  EXPECT_EQ(prometheus_sanitize_name("_private"), "_private");
}

TEST(PrometheusSanitize, ReplacesReservedCharacters) {
  EXPECT_EQ(prometheus_sanitize_name("emap.latency-seconds"),
            "emap_latency_seconds");
  EXPECT_EQ(prometheus_sanitize_name("per cent %"), "per_cent__");
  EXPECT_EQ(prometheus_sanitize_name("a{b}c\"d"), "a_b_c_d");
}

TEST(PrometheusSanitize, LabelNamesRejectColons) {
  EXPECT_EQ(prometheus_sanitize_name("ns:label", /*is_label=*/true),
            "ns_label");
  EXPECT_EQ(prometheus_sanitize_name("ns:metric", /*is_label=*/false),
            "ns:metric");
}

TEST(PrometheusSanitize, LeadingDigitGainsUnderscore) {
  EXPECT_EQ(prometheus_sanitize_name("95th_percentile"), "_95th_percentile");
  EXPECT_EQ(prometheus_sanitize_name(""), "_");
}

TEST(Prometheus, SanitizesMetricAndLabelNamesInExposition) {
  MetricsRegistry registry;
  registry.counter("emap.bad-name", {{"label-key", "value"}}).increment(2);
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("emap_bad_name{label_key=\"value\"} 2"),
            std::string::npos);
  EXPECT_EQ(text.find("emap.bad-name"), std::string::npos);
}

TEST(Prometheus, DropsEmptyLabelKeys) {
  MetricsRegistry registry;
  registry.counter("emap_total", {{"", "orphan"}, {"kept", "yes"}})
      .increment();
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("emap_total{kept=\"yes\"} 1"), std::string::npos);
  EXPECT_EQ(text.find("orphan"), std::string::npos);
}

TEST(Prometheus, AllEmptyLabelsCollapseToBareSeries) {
  MetricsRegistry registry;
  registry.counter("emap_total", {{"", "x"}}).increment();
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("emap_total 1"), std::string::npos);
  EXPECT_EQ(text.find('{'), std::string::npos);
}

TEST(Prometheus, NonFiniteGaugeValuesUseExpositionSpelling) {
  MetricsRegistry registry;
  registry.gauge("emap_nan").set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("emap_inf").set(std::numeric_limits<double>::infinity());
  registry.gauge("emap_ninf").set(-std::numeric_limits<double>::infinity());
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("emap_nan NaN"), std::string::npos);
  EXPECT_NE(text.find("emap_inf +Inf"), std::string::npos);
  EXPECT_NE(text.find("emap_ninf -Inf"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("emap_total", {{"path", "a\"b\\c\nd"}}).increment();
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(Prometheus, WritesFileToDisk) {
  testing::TempDir dir("prometheus");
  MetricsRegistry registry;
  registry.counter("emap_total").increment();
  const auto path = dir.path() / "metrics.prom";
  write_prometheus(path, registry);
  EXPECT_NE(slurp(path).find("emap_total 1"), std::string::npos);
}

TEST(MetricsTable, ListsEveryRegisteredSeries) {
  MetricsRegistry registry;
  registry.counter("emap_calls_total").increment(3);
  registry.histogram("emap_wait_seconds").observe(0.25);
  const std::string table = metrics_table(registry);
  EXPECT_NE(table.find("emap_calls_total"), std::string::npos);
  EXPECT_NE(table.find("emap_wait_seconds"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
}

TEST(JsonWriter, BuildsFlatObjectsOfEveryFieldType) {
  JsonWriter json;
  json.field("run", std::string("monitor"))
      .field("windows", std::uint64_t{12})
      .field("delta", 0.5)
      .field("alarm", true);
  EXPECT_EQ(json.str(),
            "{\"run\":\"monitor\",\"windows\":12,\"delta\":0.5,"
            "\"alarm\":true}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.field("x", std::numeric_limits<double>::infinity());
  EXPECT_EQ(json.str(), "{\"x\":null}");
}

TEST(JsonEscape, HandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscape, EscapesEveryC0ControlCharacter) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = json_escape(std::string(1, char(c)));
    ASSERT_GE(escaped.size(), 2u) << "control char " << c;
    EXPECT_EQ(escaped[0], '\\') << "control char " << c;
  }
}

TEST(JsonEscape, PassesHighBytesThroughUnchanged) {
  // UTF-8 multi-byte sequences must survive verbatim.
  const std::string utf8 = "\xc3\xa9\xe2\x82\xac";  // "é€"
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  JsonWriter json;
  json.field("ke\"y", std::string("va\\lue\n"));
  EXPECT_EQ(json.str(), "{\"ke\\\"y\":\"va\\\\lue\\n\"}");
}

TEST(AppendJsonl, AppendsOneLinePerCall) {
  testing::TempDir dir("jsonl");
  const auto path = dir.path() / "deep" / "run.jsonl";
  append_jsonl_line(path, "{\"a\":1}");
  append_jsonl_line(path, "{\"b\":2}");
  EXPECT_EQ(slurp(path), "{\"a\":1}\n{\"b\":2}\n");
}

}  // namespace
}  // namespace emap::obs
