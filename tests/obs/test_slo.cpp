#include "emap/obs/slo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "emap/obs/export.hpp"
#include "support/test_util.hpp"

namespace emap::obs {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::ostringstream out;
  out << stream.rdbuf();
  return out.str();
}

SloSpec test_spec() {
  SloSpec spec;
  spec.name = "test";
  spec.budget_sec = 1.0;
  spec.near_miss_fraction = 0.8;
  spec.target = 0.9;
  spec.burn_window = 10;
  return spec;
}

TEST(SloMonitor, ClassifiesOkNearMissAndDeadlineMiss) {
  SloMonitor monitor(test_spec());
  monitor.observe(0.5);   // ok
  monitor.observe(0.9);   // near miss (above 0.8 * budget, within budget)
  monitor.observe(1.5);   // deadline miss
  EXPECT_EQ(monitor.observations(), 3u);
  EXPECT_EQ(monitor.near_misses(), 1u);
  EXPECT_EQ(monitor.deadline_misses(), 1u);
}

TEST(SloMonitor, ExactlyAtBudgetIsNotAMiss) {
  SloMonitor monitor(test_spec());
  monitor.observe(1.0);
  EXPECT_EQ(monitor.deadline_misses(), 0u);
  EXPECT_EQ(monitor.near_misses(), 1u);  // 1.0 > 0.8, within budget
}

TEST(SloMonitor, BurnRateIsRollingMissRateOverErrorBudget) {
  SloMonitor monitor(test_spec());  // error budget 0.1, window 10
  for (int i = 0; i < 8; ++i) {
    monitor.observe(0.1);
  }
  monitor.observe(2.0);
  monitor.observe(2.0);
  // 2 misses in a 10-deep window: rolling miss rate 0.2 / budget 0.1 = 2.
  EXPECT_DOUBLE_EQ(monitor.burn_rate(), 2.0);
  EXPECT_FALSE(monitor.healthy());
}

TEST(SloMonitor, BurnWindowForgetsOldMisses) {
  SloMonitor monitor(test_spec());
  monitor.observe(2.0);  // miss
  for (int i = 0; i < 10; ++i) {
    monitor.observe(0.1);  // pushes the miss out of the window
  }
  EXPECT_DOUBLE_EQ(monitor.burn_rate(), 0.0);
  EXPECT_TRUE(monitor.healthy());
  // The lifetime counter is unaffected by the window.
  EXPECT_EQ(monitor.deadline_misses(), 1u);
}

TEST(SloMonitor, PerfectTargetBurnsInfinitelyOnAnyMiss) {
  SloSpec spec = test_spec();
  spec.target = 1.0;
  SloMonitor monitor(spec);
  monitor.observe(0.5);
  EXPECT_DOUBLE_EQ(monitor.burn_rate(), 0.0);
  monitor.observe(5.0);
  EXPECT_TRUE(std::isinf(monitor.burn_rate()));
  EXPECT_FALSE(monitor.healthy());
}

TEST(SloMonitor, NoObservationsIsHealthy) {
  SloMonitor monitor(test_spec());
  EXPECT_DOUBLE_EQ(monitor.burn_rate(), 0.0);
  EXPECT_TRUE(monitor.healthy());
}

TEST(SloMonitor, SurfacesEmapSloMetricFamilies) {
  MetricsRegistry registry;
  SloMonitor monitor(test_spec(), &registry);
  monitor.observe(0.5);
  monitor.observe(0.9);
  monitor.observe(1.5);
  const std::string text = to_prometheus(registry);
  EXPECT_NE(text.find("emap_slo_observations_total{slo=\"test\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("emap_slo_deadline_miss_total{slo=\"test\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_slo_near_miss_total{slo=\"test\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_slo_budget_seconds{slo=\"test\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_slo_burn_rate{slo=\"test\"}"), std::string::npos);
  EXPECT_NE(text.find("emap_slo_latency_seconds_count{slo=\"test\"} 3"),
            std::string::npos);
}

TEST(SloMonitor, SummarySnapshotsEveryField) {
  SloMonitor monitor(test_spec());
  monitor.observe(0.5);
  monitor.observe(1.5);
  const SloSummary summary = monitor.summary();
  EXPECT_EQ(summary.name, "test");
  EXPECT_DOUBLE_EQ(summary.budget_sec, 1.0);
  EXPECT_DOUBLE_EQ(summary.target, 0.9);
  EXPECT_EQ(summary.observations, 2u);
  EXPECT_EQ(summary.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(summary.miss_rate, 0.5);
  EXPECT_DOUBLE_EQ(summary.max_latency_sec, 1.5);
  EXPECT_GT(summary.p99_latency_sec, 0.0);
  EXPECT_GE(summary.p99_latency_sec, summary.p50_latency_sec);
}

TEST(SloSpecs, PaperBudgets) {
  EXPECT_EQ(edge_iteration_slo().name, "edge_iteration");
  EXPECT_DOUBLE_EQ(edge_iteration_slo().budget_sec, 1.0);
  EXPECT_EQ(initial_response_slo().name, "initial_response");
  EXPECT_DOUBLE_EQ(initial_response_slo().budget_sec, 3.0);
}

TEST(SloReport, JsonCarriesBuildStampAndOneObjectPerSlo) {
  SloMonitor a(edge_iteration_slo());
  SloMonitor b(initial_response_slo());
  a.observe(0.5);
  b.observe(2.0);
  const std::string json = slo_report_json({a.summary(), b.summary()});
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(json.find("\"slo\":\"edge_iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\":\"initial_response\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_misses\":0"), std::string::npos);
}

TEST(SloReport, CsvHasHeaderAndOneRowPerSlo) {
  SloMonitor monitor(test_spec());
  monitor.observe(1.5);
  const std::string csv = slo_report_csv({monitor.summary()});
  EXPECT_EQ(csv.rfind("slo,budget_sec,target,observations,deadline_misses",
                      0),
            0u);
  EXPECT_NE(csv.find("\ntest,1,0.9,1,1,"), std::string::npos);
}

TEST(SloReport, WriteSelectsFormatByExtension) {
  testing::TempDir dir("slo_report");
  SloMonitor monitor(test_spec());
  monitor.observe(0.5);
  const auto csv_path = dir.path() / "report.csv";
  const auto json_path = dir.path() / "report.json";
  write_slo_report(csv_path, {monitor.summary()});
  write_slo_report(json_path, {monitor.summary()});
  EXPECT_EQ(slurp(csv_path).rfind("slo,", 0), 0u);
  EXPECT_EQ(slurp(json_path).front(), '{');
}

}  // namespace
}  // namespace emap::obs
