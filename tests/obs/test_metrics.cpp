#include "emap/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsLoseNothing) {
  // The hot paths (ThreadPool search, CloudService workers) record from
  // many threads; every increment must land.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
}

TEST(Gauge, ConcurrentAddsLoseNothing) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge.add(1.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Integer-valued doubles accumulate exactly under the CAS loop.
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
}

TEST(Histogram, EmptyStateIsWellDefined) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_TRUE(std::isinf(histogram.min()));
  EXPECT_TRUE(std::isinf(histogram.max()));
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram histogram(Histogram::linear_bounds(0.0, 10.0, 10));
  for (double value : {1.5, 3.5, 9.0}) {
    histogram.observe(value);
  }
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 14.0);
  EXPECT_NEAR(histogram.mean(), 14.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 9.0);
}

TEST(Histogram, BucketsCoverRangeAndOverflow) {
  Histogram histogram(Histogram::linear_bounds(0.0, 3.0, 3));
  histogram.observe(0.5);   // [0, 1)
  histogram.observe(1.0);   // [1, 2): values on a bound go to the next bucket
  histogram.observe(2.5);   // [2, 3)
  histogram.observe(99.0);  // overflow
  EXPECT_EQ(histogram.bucket_count(0), 1u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // bounds().size() == overflow
  EXPECT_THROW(histogram.bucket_count(4), InvalidArgument);
}

TEST(Histogram, RejectsInvalidBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), InvalidArgument);
}

TEST(Histogram, QuantileValidatesRange) {
  Histogram histogram;
  EXPECT_THROW(histogram.quantile(-0.1), InvalidArgument);
  EXPECT_THROW(histogram.quantile(1.1), InvalidArgument);
}

TEST(Histogram, QuantileExactOnConstantStream) {
  // The clamp to the observed [min, max] makes degenerate streams exact.
  Histogram histogram;
  for (int i = 0; i < 1000; ++i) {
    histogram.observe(0.125);
  }
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.quantile(q), 0.125);
  }
}

TEST(Histogram, QuantileApproximatesUniformDistribution) {
  // Uniform on [0.1, 1.0): the default log-spaced layout is ~9% wide per
  // bucket, so estimates should sit within a few percent of the truth.
  Histogram histogram;
  Rng rng(101);
  for (int i = 0; i < 40'000; ++i) {
    histogram.observe(rng.uniform(0.1, 1.0));
  }
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    const double truth = 0.1 + q * 0.9;
    EXPECT_NEAR(histogram.quantile(q), truth, 0.06 * truth) << "q=" << q;
  }
}

TEST(Histogram, QuantileApproximatesExponentialDistribution) {
  // Skewed latency-like distribution (mean 50 ms).
  Histogram histogram;
  Rng rng(202);
  const double mean = 0.05;
  for (int i = 0; i < 40'000; ++i) {
    histogram.observe(-mean * std::log(1.0 - rng.uniform()));
  }
  for (double q : {0.5, 0.9, 0.99}) {
    const double truth = -mean * std::log(1.0 - q);
    EXPECT_NEAR(histogram.quantile(q), truth, 0.08 * truth) << "q=" << q;
  }
}

TEST(Histogram, QuantileEndpointsClampToObservedRange) {
  Histogram histogram;
  histogram.observe(0.002);
  histogram.observe(0.004);
  histogram.observe(0.008);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.002);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 0.008);
}

TEST(Histogram, ConcurrentObservationsLoseNothing) {
  Histogram histogram(Histogram::linear_bounds(0.0, 8.0, 8));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  // Sum of integers is exact under the CAS accumulation loop.
  EXPECT_DOUBLE_EQ(histogram.sum(), (1 + 2 + 3 + 4) * 20'000.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 4.0);
}

TEST(Histogram, DefaultLatencyBoundsAreSane) {
  const auto bounds = Histogram::default_latency_bounds();
  ASSERT_GT(bounds.size(), 100u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_GT(bounds.back(), 1000.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(Histogram, LinearBoundsSpanTheRequestedRange) {
  const auto bounds = Histogram::linear_bounds(0.0, 1.0, 20);
  ASSERT_EQ(bounds.size(), 20u);
  EXPECT_NEAR(bounds.front(), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(bounds.back(), 1.0);
  EXPECT_THROW(Histogram::linear_bounds(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram::linear_bounds(0.0, 1.0, 0), InvalidArgument);
}

TEST(MetricsRegistry, SameSeriesReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("emap_events_total", {{"kind", "x"}});
  Counter& b = registry.counter("emap_events_total", {{"kind", "x"}});
  EXPECT_EQ(&a, &b);
  a.increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Gauge& a = registry.gauge("g", {{"a", "1"}, {"b", "2"}});
  Gauge& b = registry.gauge("g", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  Counter& up = registry.counter("emap_net_messages_total",
                                 {{"direction", "up"}});
  Counter& down = registry.counter("emap_net_messages_total",
                                   {{"direction", "down"}});
  EXPECT_NE(&up, &down);
  up.increment(3);
  EXPECT_EQ(down.value(), 0u);
  // Two series, one family.
  EXPECT_EQ(registry.entries().size(), 2u);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), InvalidArgument);
  EXPECT_THROW(registry.histogram("metric"), InvalidArgument);
  EXPECT_THROW(registry.counter(""), InvalidArgument);
}

TEST(MetricsRegistry, CardinalityGuardCapsSeriesPerFamily) {
  // EMAP_METRICS_MAX_SERIES is read once per registry at first
  // registration, so setting it here only affects this fresh registry.
  ASSERT_EQ(setenv("EMAP_METRICS_MAX_SERIES", "4", /*overwrite=*/1), 0);
  MetricsRegistry registry;
  std::vector<Counter*> counters;
  for (int i = 0; i < 10; ++i) {
    counters.push_back(&registry.counter(
        "emap_runaway_total", {{"id", std::to_string(i)}}));
  }
  unsetenv("EMAP_METRICS_MAX_SERIES");

  EXPECT_EQ(registry.max_series_per_family(), 4u);
  EXPECT_EQ(registry.dropped_series(), 6u);
  // The first 4 label sets registered; the rest share one unregistered
  // sink that is reference-stable and still counts increments.
  EXPECT_NE(counters[0], counters[4]);
  EXPECT_EQ(counters[4], counters[5]);
  EXPECT_EQ(counters[4], counters[9]);
  counters[4]->increment();
  EXPECT_EQ(counters[9]->value(), 1u);
  // Dropped registrations are visible as a metric, labelled by family.
  EXPECT_EQ(registry
                .counter("emap_metrics_dropped_series_total",
                         {{"metric", "emap_runaway_total"}})
                .value(),
            6u);
  // The sink never appears in the exported entries: 4 runaway series plus
  // the dropped-series counter itself.
  std::size_t runaway_entries = 0;
  for (const MetricEntry* entry : registry.entries()) {
    runaway_entries += entry->name == "emap_runaway_total" ? 1 : 0;
  }
  EXPECT_EQ(runaway_entries, 4u);
}

TEST(MetricsRegistry, CardinalityGuardCoversEveryInstrumentKind) {
  // Cap 2 leaves room in the dropped-series meta family for the two
  // overflowing families below (the guard applies to that family too).
  ASSERT_EQ(setenv("EMAP_METRICS_MAX_SERIES", "2", 1), 0);
  MetricsRegistry registry;
  registry.counter("c", {{"i", "0"}});
  registry.counter("c", {{"i", "1"}});
  registry.gauge("g", {{"i", "0"}});
  registry.gauge("g", {{"i", "1"}});
  registry.histogram("h", {{"i", "0"}});
  registry.histogram("h", {{"i", "1"}});
  Gauge& sunk_gauge = registry.gauge("g", {{"i", "2"}});
  Histogram& sunk_histogram = registry.histogram("h", {{"i", "2"}});
  unsetenv("EMAP_METRICS_MAX_SERIES");

  EXPECT_EQ(registry.dropped_series(), 2u);
  sunk_gauge.set(3.0);  // recording into a sink is safe
  sunk_histogram.observe(0.5);
  EXPECT_EQ(sunk_histogram.count(), 1u);
  // Re-requesting an already-registered series is NOT a drop.
  registry.gauge("g", {{"i", "0"}});
  EXPECT_EQ(registry.dropped_series(), 2u);
  EXPECT_EQ(registry
                .counter("emap_metrics_dropped_series_total",
                         {{"metric", "g"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("emap_metrics_dropped_series_total",
                         {{"metric", "h"}})
                .value(),
            1u);
}

TEST(MetricsRegistry, DefaultCapIsGenerous) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.max_series_per_family(),
            MetricsRegistry::kDefaultMaxSeriesPerFamily);
  EXPECT_EQ(registry.dropped_series(), 0u);
}

TEST(MetricsRegistry, EntriesKeepRegistrationOrder) {
  MetricsRegistry registry;
  registry.counter("first");
  registry.gauge("second");
  registry.histogram("third");
  const auto entries = registry.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->name, "first");
  EXPECT_EQ(entries[0]->kind, MetricKind::kCounter);
  EXPECT_EQ(entries[1]->name, "second");
  EXPECT_EQ(entries[1]->kind, MetricKind::kGauge);
  EXPECT_EQ(entries[2]->name, "third");
  EXPECT_EQ(entries[2]->kind, MetricKind::kHistogram);
}

}  // namespace
}  // namespace emap::obs
