// Property-style sweeps over randomized inputs (parameterized by seed).
#include <gtest/gtest.h>

#include "emap/dsp/area.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/dsp/stats.hpp"
#include "emap/dsp/xcorr.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

class RandomSignalProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<double> make(std::uint64_t salt, std::size_t n) const {
    return testing::noise(GetParam() * 1000003ULL + salt, n);
  }
};

TEST_P(RandomSignalProperty, NccIsBoundedAndSymmetric) {
  const auto a = make(1, 256);
  const auto b = make(2, 256);
  const double ab = normalized_correlation(a, b);
  const double ba = normalized_correlation(b, a);
  EXPECT_GE(ab, -1.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_NEAR(ab, ba, 1e-12);
}

TEST_P(RandomSignalProperty, NccInvariantUnderAffineTransform) {
  const auto a = make(3, 256);
  const auto b = make(4, 256);
  auto transformed = b;
  const double scale = 0.1 + static_cast<double>(GetParam() % 7);
  for (double& v : transformed) {
    v = scale * v + 42.0;
  }
  EXPECT_NEAR(normalized_correlation(a, b),
              normalized_correlation(a, transformed), 1e-9);
}

TEST_P(RandomSignalProperty, AreaIsNonNegativeAndIdentityOfIndiscernibles) {
  const auto a = make(5, 256);
  const auto b = make(6, 256);
  EXPECT_GE(area_between(a, b), 0.0);
  EXPECT_DOUBLE_EQ(area_between(a, a), 0.0);
}

TEST_P(RandomSignalProperty, AreaHomogeneity) {
  // area(k*a, k*b) == |k| * area(a, b)
  const auto a = make(7, 128);
  const auto b = make(8, 128);
  auto ka = a;
  auto kb = b;
  for (double& v : ka) v *= -3.0;
  for (double& v : kb) v *= -3.0;
  EXPECT_NEAR(area_between(ka, kb), 3.0 * area_between(a, b), 1e-9);
}

TEST_P(RandomSignalProperty, CappedAreaNeverExceedsTrueAreaWhenUnder) {
  const auto a = make(9, 256);
  const auto b = make(10, 256);
  const double exact = area_between(a, b);
  // With a threshold above the exact value, capped must equal exact.
  EXPECT_DOUBLE_EQ(area_between_capped(a, b, exact * 1.01), exact);
}

TEST_P(RandomSignalProperty, FilterOutputEnergyBoundedByPassbandGain) {
  FirFilter filter(FirDesign{});
  const auto input = make(11, 2048);
  const auto output = filter.apply(input);
  // A bandpass keeping ~23% of the white-noise band cannot amplify RMS.
  EXPECT_LT(rms(output), rms(input));
}

TEST_P(RandomSignalProperty, SlidingNccConsistentWithPointwise) {
  const auto probe = make(12, 64);
  const auto haystack = make(13, 256);
  const auto series = sliding_ncc(probe, haystack);
  const std::span<const double> hay(haystack);
  for (std::size_t k = 0; k < series.size(); k += 37) {
    EXPECT_NEAR(series[k],
                normalized_correlation(probe, hay.subspan(k, probe.size())),
                1e-12);
  }
}

TEST_P(RandomSignalProperty, VarianceShiftInvariant) {
  auto a = make(14, 512);
  const double var = variance(a);
  for (double& v : a) {
    v += 1234.5;
  }
  EXPECT_NEAR(variance(a), var, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSignalProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace emap::dsp
