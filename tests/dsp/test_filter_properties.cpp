// Parameterized properties of the filtering stack (FIR + biquad).
#include <gtest/gtest.h>

#include "emap/dsp/biquad.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/dsp/stats.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

class FirTapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirTapSweep, BandpassShapeHoldsAcrossLengths) {
  FirDesign design;
  design.taps = GetParam();
  FirFilter filter(design);
  // Midband reference gain is normalized to 1 by the designer.
  EXPECT_NEAR(filter.magnitude_response(25.5, 256.0), 1.0, 1e-9);
  // Longer filters give steeper skirts, but even the shortest in the sweep
  // must attenuate far-out-of-band content.
  EXPECT_LT(filter.magnitude_response(2.0, 256.0), 0.2);
  EXPECT_LT(filter.magnitude_response(100.0, 256.0), 0.2);
}

TEST_P(FirTapSweep, GroupDelayIsHalfLength) {
  FirDesign design;
  design.taps = GetParam();
  FirFilter filter(design);
  EXPECT_DOUBLE_EQ(filter.group_delay(),
                   (static_cast<double>(GetParam()) - 1.0) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FirTapSweep,
                         ::testing::Values(64u, 100u, 101u, 150u, 255u));

class NotchFrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(NotchFrequencySweep, NotchIsDeepAndNarrow) {
  const double freq = GetParam();
  auto filter = Biquad::notch(freq, 256.0, 30.0);
  EXPECT_LT(filter.magnitude_response(freq, 256.0), 0.01);
  EXPECT_GT(filter.magnitude_response(freq * 0.8, 256.0), 0.9);
  EXPECT_GT(filter.magnitude_response(freq * 1.2, 256.0), 0.9);
}

TEST_P(NotchFrequencySweep, EnergyRemovalMatchesResponse) {
  const double freq = GetParam();
  auto filter = Biquad::notch(freq, 256.0, 30.0);
  const auto tone = testing::sine(freq, 256.0, 8192);
  const auto output = filter.process_block(tone);
  const std::span<const double> steady(output.data() + 4096, 4096);
  EXPECT_LT(rms(steady), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Frequencies, NotchFrequencySweep,
                         ::testing::Values(25.0, 50.0, 60.0, 100.0));

class CascadedStabilityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CascadedStabilityProperty, FrontendOutputStaysBounded) {
  // IIR stability smoke test: bounded random input through the acquisition
  // front end must never blow up.
  auto frontend = make_acquisition_frontend(256.0, 50.0);
  Rng rng(GetParam());
  double peak = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double y = frontend.process_sample(rng.uniform(-100.0, 100.0));
    peak = std::max(peak, std::abs(y));
  }
  EXPECT_LT(peak, 1000.0);
}

TEST_P(CascadedStabilityProperty, FirThenBiquadCommutesApproximately) {
  // LTI systems commute; the implementations must agree to rounding.
  const auto input = testing::noise(GetParam(), 2048, 5.0);
  FirFilter fir_a(FirDesign{});
  auto notch_a = Biquad::notch(50.0, 256.0);
  const auto path_a = notch_a.process_block(fir_a.apply(input));

  FirFilter fir_b(FirDesign{});
  auto notch_b = Biquad::notch(50.0, 256.0);
  const auto path_b = fir_b.apply(notch_b.process_block(input));

  for (std::size_t i = 0; i < input.size(); i += 31) {
    EXPECT_NEAR(path_a[i], path_b[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadedStabilityProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace emap::dsp
