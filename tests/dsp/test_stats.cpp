#include "emap/dsp/stats.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
  EXPECT_DOUBLE_EQ(line_length({}), 0.0);
  EXPECT_EQ(zero_crossings({}), 0u);
  EXPECT_DOUBLE_EQ(peak_abs({}), 0.0);
}

TEST(Stats, MeanAndVarianceKnownValues) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_DOUBLE_EQ(variance(x), 1.25);
  EXPECT_DOUBLE_EQ(stddev(x), std::sqrt(1.25));
}

TEST(Stats, RmsOfSineIsAmpOverSqrt2) {
  const auto x = testing::sine(16.0, 256.0, 4096, 2.0);
  EXPECT_NEAR(rms(x), 2.0 / std::sqrt(2.0), 0.01);
}

TEST(Stats, LineLengthOfConstantIsZero) {
  const std::vector<double> x(100, 5.0);
  EXPECT_DOUBLE_EQ(line_length(x), 0.0);
}

TEST(Stats, LineLengthScalesWithFrequency) {
  const auto slow = testing::sine(5.0, 256.0, 1024);
  const auto fast = testing::sine(40.0, 256.0, 1024);
  EXPECT_GT(line_length(fast), 4.0 * line_length(slow));
}

TEST(Stats, ZeroCrossingsOfSine) {
  // 16 Hz over 1 s -> 32 crossings.
  const auto x = testing::sine(16.0, 256.0, 256);
  const auto crossings = zero_crossings(x);
  EXPECT_NEAR(static_cast<double>(crossings), 32.0, 2.0);
}

TEST(Stats, ZeroCrossingsIgnoresDcOffset) {
  auto x = testing::sine(16.0, 256.0, 256);
  for (double& v : x) {
    v += 10.0;  // mean-removed crossing count must not change
  }
  EXPECT_NEAR(static_cast<double>(zero_crossings(x)), 32.0, 2.0);
}

TEST(Stats, HjorthMobilityOfSineMatchesTheory) {
  // mobility of a sinusoid ~ 2 sin(pi f / fs) ~ omega/fs for small f.
  const double fs = 256.0;
  const double freq = 16.0;
  const auto x = testing::sine(freq, fs, 8192);
  const double expected = 2.0 * std::sin(std::numbers::pi * freq / fs);
  EXPECT_NEAR(hjorth_mobility(x), expected, 0.01);
}

TEST(Stats, HjorthMobilityOfConstantIsZero) {
  const std::vector<double> x(64, 3.0);
  EXPECT_DOUBLE_EQ(hjorth_mobility(x), 0.0);
  EXPECT_DOUBLE_EQ(hjorth_complexity(x), 0.0);
}

TEST(Stats, HjorthComplexityOfPureSineIsNearOne) {
  const auto x = testing::sine(16.0, 256.0, 8192);
  EXPECT_NEAR(hjorth_complexity(x), 1.0, 0.05);
}

TEST(Stats, HjorthComplexityOfNoiseExceedsSine) {
  const auto tone = testing::sine(16.0, 256.0, 4096);
  const auto white = testing::noise(1, 4096);
  EXPECT_GT(hjorth_complexity(white), hjorth_complexity(tone));
}

TEST(Stats, PeakAbsFindsNegativePeak) {
  const std::vector<double> x = {1.0, -7.0, 3.0};
  EXPECT_DOUBLE_EQ(peak_abs(x), 7.0);
}

TEST(Stats, SkewnessOfSymmetricIsZero) {
  const auto x = testing::noise(2, 100000);
  EXPECT_NEAR(skewness(x), 0.0, 0.05);
}

TEST(Stats, SkewnessDetectsAsymmetry) {
  std::vector<double> x;
  for (int i = 0; i < 1000; ++i) {
    x.push_back(i % 10 == 0 ? 20.0 : -0.5);  // long right tail
  }
  EXPECT_GT(skewness(x), 1.0);
}

TEST(Stats, KurtosisOfGaussianNearZero) {
  const auto x = testing::noise(3, 200000);
  EXPECT_NEAR(kurtosis_excess(x), 0.0, 0.1);
}

TEST(Stats, KurtosisOfSpikyIsPositive) {
  std::vector<double> x(1000, 0.01);
  x[500] = 100.0;
  EXPECT_GT(kurtosis_excess(x), 10.0);
}

TEST(Stats, DegenerateConstantHigherMomentsAreZero) {
  const std::vector<double> x(32, 2.0);
  EXPECT_DOUBLE_EQ(skewness(x), 0.0);
  EXPECT_DOUBLE_EQ(kurtosis_excess(x), 0.0);
}

}  // namespace
}  // namespace emap::dsp
