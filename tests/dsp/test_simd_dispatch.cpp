// Dispatch-selection tests for dsp/simd.hpp, including the CI gate that
// fails when the AVX2 arm was compiled but never actually executed on an
// AVX2-capable host (which would mean the whole SIMD suite silently
// tested scalar twice).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "emap/common/error.hpp"
#include "emap/dsp/kernels.hpp"
#include "emap/dsp/simd.hpp"
#include "emap/dsp/xcorr.hpp"
#include "support/kernel_diff.hpp"

namespace emap::testing {
namespace {

using dsp::simd::Level;

// True when $EMAP_SIMD pins this process to the scalar arm (the forced-
// scalar CI leg); the AVX2-execution gate is vacuous in that mode.
bool env_forces_scalar() {
  const char* env = std::getenv("EMAP_SIMD");
  if (env == nullptr) {
    return false;
  }
  const std::string value(env);
  return value == "off" || value == "scalar";
}

TEST(SimdDispatch, ParseLevel) {
  EXPECT_EQ(dsp::simd::parse_level("off"), Level::kScalar);
  EXPECT_EQ(dsp::simd::parse_level("scalar"), Level::kScalar);
  EXPECT_EQ(dsp::simd::parse_level("avx2"), Level::kAvx2);
  EXPECT_THROW(dsp::simd::parse_level("avx512"), InvalidArgument);
  EXPECT_THROW(dsp::simd::parse_level(""), InvalidArgument);
  EXPECT_THROW(dsp::simd::parse_level("AVX2"), InvalidArgument);
}

TEST(SimdDispatch, LevelNames) {
  EXPECT_STREQ(dsp::simd::level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(dsp::simd::level_name(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, ForceLevelOverridesEverything) {
  dsp::simd::force_level(Level::kScalar);
  EXPECT_EQ(dsp::simd::active_level(), Level::kScalar);
  dsp::simd::force_level(std::nullopt);

  if (dsp::simd::compiled_with_avx2() && dsp::simd::cpu_supports_avx2()) {
    dsp::simd::force_level(Level::kAvx2);
    EXPECT_EQ(dsp::simd::active_level(), Level::kAvx2);
    dsp::simd::force_level(std::nullopt);
  }
}

TEST(SimdDispatch, ForcedAvx2FallsBackToScalarWhenUnavailable) {
  if (dsp::simd::compiled_with_avx2() && dsp::simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "AVX2 available; fallback path not reachable here";
  }
  dsp::simd::force_level(Level::kAvx2);
  EXPECT_EQ(dsp::simd::active_level(), Level::kScalar);
  dsp::simd::force_level(std::nullopt);
}

TEST(SimdDispatch, TableRejectsMissingArm) {
  EXPECT_EQ(dsp::kernels::table(Level::kScalar).level, Level::kScalar);
  if (dsp::simd::compiled_with_avx2()) {
    EXPECT_EQ(dsp::kernels::table(Level::kAvx2).level, Level::kAvx2);
  } else {
    EXPECT_THROW(dsp::kernels::table(Level::kAvx2), InvalidArgument);
  }
}

TEST(SimdDispatch, InvocationCountersTrackTheActiveArm) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b = {5.0, 4.0, 3.0, 2.0, 1.0};
  dsp::simd::reset_kernel_invocations();
  {
    kdiff::ScopedSimdLevel forced(Level::kScalar);
    (void)dsp::dot_correlation(a, b);
  }
  EXPECT_EQ(dsp::simd::kernel_invocations(Level::kScalar), 1u);
  EXPECT_EQ(dsp::simd::kernel_invocations(Level::kAvx2), 0u);
  dsp::simd::reset_kernel_invocations();
  EXPECT_EQ(dsp::simd::kernel_invocations(Level::kScalar), 0u);
}

// CI gate (ISSUE satellite): on an AVX2-capable host with the arm
// compiled in and no scalar pin, default dispatch MUST take the AVX2 arm.
// Failing here means the rest of the suite exercised scalar twice and
// the AVX2 kernels shipped untested.
TEST(SimdDispatch, Avx2ArmExecutesUnderDefaultDispatch) {
  if (!dsp::simd::compiled_with_avx2()) {
    GTEST_SKIP() << "AVX2 arm not compiled into this binary";
  }
  if (!dsp::simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "host CPU lacks AVX2";
  }
  if (env_forces_scalar()) {
    GTEST_SKIP() << "EMAP_SIMD pins this process to scalar";
  }
  const std::vector<double> a = noise(0xD15, 256);
  const std::vector<double> b = noise(0xD16, 256);
  dsp::simd::reset_kernel_invocations();
  (void)dsp::dot_correlation(a, b);
  EXPECT_EQ(dsp::simd::active_level(), Level::kAvx2);
  EXPECT_GT(dsp::simd::kernel_invocations(Level::kAvx2), 0u)
      << "default dispatch never took the AVX2 arm on an AVX2-capable host";
  dsp::simd::reset_kernel_invocations();
}

}  // namespace
}  // namespace emap::testing
