#include "emap/dsp/fft.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

// Naive O(n^2) DFT reference.
std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(j) / static_cast<double>(n);
      acc += x[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12, {1.0, 0.0});
  EXPECT_THROW(fft_inplace(data), InvalidArgument);
  data.clear();
  EXPECT_THROW(fft_inplace(data), InvalidArgument);
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(3);
  std::vector<std::complex<double>> data(64);
  for (auto& v : data) {
    v = {rng.normal(), rng.normal()};
  }
  auto expected = naive_dft(data);
  fft_inplace(data);
  for (std::size_t k = 0; k < data.size(); ++k) {
    EXPECT_NEAR(data[k].real(), expected[k].real(), 1e-9);
    EXPECT_NEAR(data[k].imag(), expected[k].imag(), 1e-9);
  }
}

TEST(Fft, InverseRoundTrip) {
  Rng rng(5);
  std::vector<std::complex<double>> data(256);
  for (auto& v : data) {
    v = {rng.normal(), rng.normal()};
  }
  const auto original = data;
  fft_inplace(data);
  ifft_inplace(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(7);
  std::vector<std::complex<double>> data(128);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.normal(), 0.0};
    time_energy += std::norm(v);
  }
  fft_inplace(data);
  double freq_energy = 0.0;
  for (const auto& v : data) {
    freq_energy += std::norm(v);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-6);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(256), 256u);
  EXPECT_EQ(next_pow2(257), 512u);
  EXPECT_THROW(next_pow2(0), InvalidArgument);
}

TEST(Fft, PowerSpectrumPeaksAtToneFrequency) {
  const double fs = 256.0;
  const double freq = 32.0;
  const auto signal = testing::sine(freq, fs, 512, 1.0);
  const auto power = power_spectrum(signal);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[argmax]) {
      argmax = k;
    }
  }
  const double bin_hz = fs / 512.0;
  EXPECT_NEAR(static_cast<double>(argmax) * bin_hz, freq, bin_hz);
}

TEST(Fft, BandPowerIsolatesTone) {
  const double fs = 256.0;
  const auto signal = testing::sine(20.0, fs, 1024, 1.0);
  const double in_band = band_power(signal, fs, 15.0, 25.0);
  const double out_band = band_power(signal, fs, 40.0, 100.0);
  EXPECT_GT(in_band, 100.0 * out_band);
}

TEST(Fft, BandPowerEmptySignalIsZero) {
  EXPECT_DOUBLE_EQ(band_power({}, 256.0, 1.0, 10.0), 0.0);
}

TEST(Fft, BandPowerRejectsInvertedBand) {
  const auto signal = testing::sine(20.0, 256.0, 128);
  EXPECT_THROW(band_power(signal, 256.0, 30.0, 10.0), InvalidArgument);
}

}  // namespace
}  // namespace emap::dsp
