#include "emap/dsp/spectral.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(Spectral, EdgeOfPureToneIsToneFrequency) {
  const auto tone = testing::sine(20.0, 256.0, 2048);
  EXPECT_NEAR(spectral_edge_frequency(tone, 256.0, 0.95), 20.0, 0.5);
  EXPECT_NEAR(median_frequency(tone, 256.0), 20.0, 0.5);
}

TEST(Spectral, EmptyAndZeroSignalsGiveZero) {
  EXPECT_DOUBLE_EQ(spectral_edge_frequency({}, 256.0), 0.0);
  const std::vector<double> zeros(256, 0.0);
  EXPECT_DOUBLE_EQ(spectral_edge_frequency(zeros, 256.0), 0.0);
}

TEST(Spectral, RejectsBadArguments) {
  const auto tone = testing::sine(10.0, 256.0, 256);
  EXPECT_THROW(spectral_edge_frequency(tone, 0.0), InvalidArgument);
  EXPECT_THROW(spectral_edge_frequency(tone, 256.0, 0.0), InvalidArgument);
  EXPECT_THROW(spectral_edge_frequency(tone, 256.0, 1.5), InvalidArgument);
}

TEST(Spectral, EdgeIncreasesWithFraction) {
  const auto signal = testing::noise(1, 8192);
  const double sef50 = spectral_edge_frequency(signal, 256.0, 0.5);
  const double sef95 = spectral_edge_frequency(signal, 256.0, 0.95);
  EXPECT_LT(sef50, sef95);
}

TEST(Spectral, WhiteNoiseMedianNearQuarterOfRate) {
  // Flat spectrum over [0, fs/2] -> median ~ fs/4.
  const auto signal = testing::noise(2, 65536);
  EXPECT_NEAR(median_frequency(signal, 256.0), 64.0, 4.0);
}

TEST(Spectral, TwoToneMedianSitsBetween) {
  auto signal = testing::sine(10.0, 256.0, 4096, 1.0);
  const auto high = testing::sine(50.0, 256.0, 4096, 1.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] += high[i];
  }
  const double median = median_frequency(signal, 256.0);
  EXPECT_GT(median, 9.0);
  EXPECT_LT(median, 51.0);
}

TEST(Spectral, BandRatioDetectsSlowing) {
  // "Diffuse slowing": more low-frequency relative power.
  auto slowed = testing::sine(3.0, 256.0, 4096, 3.0);
  const auto fast_part = testing::sine(20.0, 256.0, 4096, 1.0);
  for (std::size_t i = 0; i < slowed.size(); ++i) {
    slowed[i] += fast_part[i];
  }
  auto awake = testing::sine(3.0, 256.0, 4096, 0.5);
  for (std::size_t i = 0; i < awake.size(); ++i) {
    awake[i] += 3.0 * fast_part[i] / 1.0;
  }
  const double slowed_ratio =
      band_ratio(slowed, 256.0, 1.0, 8.0, 13.0, 30.0);
  const double awake_ratio = band_ratio(awake, 256.0, 1.0, 8.0, 13.0, 30.0);
  EXPECT_GT(slowed_ratio, 5.0 * awake_ratio);
}

TEST(Spectral, BandRatioZeroWhenSignalSilent) {
  const std::vector<double> zeros(1024, 0.0);
  EXPECT_DOUBLE_EQ(band_ratio(zeros, 256.0, 1.0, 8.0, 60.0, 100.0), 0.0);
}

TEST(Spectral, BandRatioExplodesWhenDenominatorIsOnlyLeakage) {
  // A pure out-of-band tone leaves only spectral leakage in the
  // denominator band; the ratio is finite but enormous — callers must
  // pick denominator bands that carry real power.
  const auto tone = testing::sine(5.0, 256.0, 2048);
  EXPECT_GT(band_ratio(tone, 256.0, 1.0, 8.0, 60.0, 100.0), 1e6);
}

}  // namespace
}  // namespace emap::dsp
