#include "emap/dsp/resample.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/stats.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(Resample, IdentityWhenRatesEqual) {
  const auto input = testing::noise(1, 100);
  const auto output = resample(input, 256.0, 256.0);
  ASSERT_EQ(output.size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_DOUBLE_EQ(output[i], input[i]);
  }
}

TEST(Resample, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(resample({}, 100.0, 256.0).empty());
}

TEST(Resample, RejectsNonPositiveRates) {
  const auto input = testing::noise(2, 16);
  EXPECT_THROW(resample(input, 0.0, 256.0), InvalidArgument);
  EXPECT_THROW(resample(input, 256.0, -1.0), InvalidArgument);
}

class ResampleRateTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ResampleRateTest, PreservesDuration) {
  const auto [from, to] = GetParam();
  const double duration = 3.0;
  const auto input = testing::noise(
      3, static_cast<std::size_t>(duration * from));
  const auto output = resample(input, from, to);
  const double out_duration = static_cast<double>(output.size()) / to;
  EXPECT_NEAR(out_duration, duration, 1.5 / to);
}

TEST_P(ResampleRateTest, PreservesToneFrequency) {
  const auto [from, to] = GetParam();
  const double tone = 15.0;  // safely inside both Nyquist ranges
  const auto input =
      testing::sine(tone, from, static_cast<std::size_t>(4.0 * from));
  const auto output = resample(input, from, to);
  // Dominant output frequency must still be ~15 Hz at the new rate.
  const auto power = power_spectrum(output);
  std::size_t argmax = 1;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[argmax]) {
      argmax = k;
    }
  }
  const double padded = static_cast<double>(next_pow2(output.size()));
  const double freq = static_cast<double>(argmax) * to / padded;
  EXPECT_NEAR(freq, tone, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    CorpusRates, ResampleRateTest,
    ::testing::Values(std::make_pair(100.0, 256.0),
                      std::make_pair(173.61, 256.0),
                      std::make_pair(250.0, 256.0),
                      std::make_pair(512.0, 256.0),
                      std::make_pair(256.0, 100.0),
                      std::make_pair(256.0, 512.0)));

TEST(Resample, UpsamplePreservesAmplitude) {
  const auto input = testing::sine(15.0, 128.0, 512, 2.0);
  const auto output = resample(input, 128.0, 256.0);
  EXPECT_NEAR(rms(output), rms(input), 0.1);
}

TEST(Resample, DownsampleRemovesAboveNyquistContent) {
  // 90 Hz tone cannot survive resampling to 100 Hz (Nyquist 50).
  const auto input = testing::sine(90.0, 256.0, 2048, 1.0);
  const auto output = resample(input, 256.0, 100.0);
  EXPECT_LT(rms(output), 0.15);
}

TEST(UpsampleLinear, FactorOneIsIdentity) {
  const auto input = testing::noise(4, 32);
  const auto output = upsample_linear(input, 1);
  EXPECT_EQ(output, input);
}

TEST(UpsampleLinear, InterpolatesMidpoints) {
  const std::vector<double> input = {0.0, 2.0, 4.0};
  const auto output = upsample_linear(input, 2);
  ASSERT_EQ(output.size(), 5u);
  EXPECT_DOUBLE_EQ(output[0], 0.0);
  EXPECT_DOUBLE_EQ(output[1], 1.0);
  EXPECT_DOUBLE_EQ(output[2], 2.0);
  EXPECT_DOUBLE_EQ(output[3], 3.0);
  EXPECT_DOUBLE_EQ(output[4], 4.0);
}

TEST(Decimate, FactorOneIsIdentity) {
  const auto input = testing::noise(5, 64);
  EXPECT_EQ(decimate(input, 1), input);
}

TEST(Decimate, ReducesLengthByFactor) {
  const auto input = testing::noise(6, 1000);
  const auto output = decimate(input, 4);
  EXPECT_EQ(output.size(), 250u);
}

TEST(Decimate, RejectsZeroFactor) {
  const auto input = testing::noise(7, 16);
  EXPECT_THROW(decimate(input, 0), InvalidArgument);
}

}  // namespace
}  // namespace emap::dsp
