#include "emap/dsp/xcorr.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(DotCorrelation, MatchesEq2) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot_correlation(a, b), 4.0 + 10.0 + 18.0);
}

TEST(DotCorrelation, RejectsMismatchedOrEmpty) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(dot_correlation(a, b), InvalidArgument);
  EXPECT_THROW(dot_correlation({}, {}), InvalidArgument);
}

TEST(NormalizedCorrelation, SelfCorrelationIsOne) {
  const auto signal = testing::noise(1, 256);
  EXPECT_NEAR(normalized_correlation(signal, signal), 1.0, 1e-12);
}

TEST(NormalizedCorrelation, NegatedSignalIsMinusOne) {
  const auto signal = testing::noise(2, 256);
  auto negated = signal;
  for (double& v : negated) {
    v = -v;
  }
  EXPECT_NEAR(normalized_correlation(signal, negated), -1.0, 1e-12);
}

TEST(NormalizedCorrelation, ScaleInvariant) {
  const auto a = testing::noise(3, 128);
  auto scaled = a;
  for (double& v : scaled) {
    v = 7.5 * v;
  }
  EXPECT_NEAR(normalized_correlation(a, scaled), 1.0, 1e-12);
}

TEST(NormalizedCorrelation, OffsetInvariant) {
  const auto a = testing::noise(4, 128);
  auto shifted = a;
  for (double& v : shifted) {
    v += 100.0;
  }
  EXPECT_NEAR(normalized_correlation(a, shifted), 1.0, 1e-9);
}

TEST(NormalizedCorrelation, IndependentSignalsNearZero) {
  const auto a = testing::noise(5, 4096);
  const auto b = testing::noise(6, 4096);
  EXPECT_LT(std::abs(normalized_correlation(a, b)), 0.1);
}

TEST(NormalizedCorrelation, DegenerateVsSignalIsZero) {
  const std::vector<double> flat(64, 3.0);
  const auto signal = testing::noise(7, 64);
  EXPECT_DOUBLE_EQ(normalized_correlation(flat, signal), 0.0);
}

TEST(NormalizedCorrelation, TwoDegeneratesAreOne) {
  const std::vector<double> flat_a(64, 3.0);
  const std::vector<double> flat_b(64, -1.0);
  EXPECT_DOUBLE_EQ(normalized_correlation(flat_a, flat_b), 1.0);
}

TEST(NormalizedWindow, PrecomputedMatchesDirect) {
  const auto a = testing::sine(17.0, 256.0, 256);
  const auto b = testing::noise(8, 256);
  const NormalizedWindow probe(a);
  EXPECT_NEAR(probe.correlate(b), normalized_correlation(a, b), 1e-12);
}

TEST(NormalizedWindow, WindowPairCorrelateMatches) {
  const auto a = testing::sine(17.0, 256.0, 256);
  const auto b = testing::sine(17.0, 256.0, 256, 1.0, 0.5);
  const NormalizedWindow na(a);
  const NormalizedWindow nb(b);
  EXPECT_NEAR(na.correlate(nb), normalized_correlation(a, b), 1e-12);
}

TEST(NormalizedWindow, RejectsLengthMismatch) {
  const NormalizedWindow probe(testing::noise(9, 64));
  EXPECT_THROW(probe.correlate(testing::noise(10, 32)), InvalidArgument);
}

TEST(SlidingNcc, FindsEmbeddedCopy) {
  const auto probe = testing::sine(20.0, 256.0, 128);
  auto haystack = testing::noise(11, 1000, 0.1);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    haystack[400 + i] += probe[i];
  }
  const auto ncc = sliding_ncc(probe, haystack);
  ASSERT_EQ(ncc.size(), 1000u - 128u + 1u);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < ncc.size(); ++k) {
    if (ncc[k] > ncc[argmax]) {
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, 400u);
  EXPECT_GT(ncc[400], 0.95);
}

TEST(SlidingNcc, EmptyWhenProbeTooLong) {
  const auto probe = testing::noise(12, 64);
  const auto haystack = testing::noise(13, 32);
  EXPECT_TRUE(sliding_ncc(probe, haystack).empty());
}

TEST(SlidingNcc, AllValuesWithinBounds) {
  const auto probe = testing::noise(14, 64);
  const auto haystack = testing::noise(15, 512);
  for (double v : sliding_ncc(probe, haystack)) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace emap::dsp
