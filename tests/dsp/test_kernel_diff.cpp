// Differential kernel-equivalence tests: every (kernel, implementation)
// pair driven through tests/support/kernel_diff.hpp over 10k seeded
// random cases plus edge shapes, IEEE adversarial inputs, and corpus
// windows.  The pinned ULP bound here is the contract docs/performance.md
// publishes; tightening or loosening it is an API change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "emap/dsp/area.hpp"
#include "emap/dsp/kernels.hpp"
#include "emap/dsp/simd.hpp"
#include "emap/dsp/xcorr.hpp"
#include "support/kernel_diff.hpp"

namespace emap::testing {
namespace {

namespace kernels = dsp::kernels;
using dsp::simd::Level;

// Pinned divergence contract between the scalar and AVX2 arms for one raw
// reduction (see docs/performance.md "SIMD dispatch and ULP equivalence").
constexpr std::uint64_t kPinnedUlpBound = 256;
// NCC composes several reductions plus a sqrt and a divide; its end-to-end
// bound is wider, with a flat absolute floor (results live in [-1, 1]).
constexpr std::uint64_t kNccUlpBound = 4096;
constexpr double kNccAbsTol = 1e-9;
constexpr std::size_t kRandomCasesPerKernel = 10000;

bool avx2_arm_available() {
  return dsp::simd::compiled_with_avx2() && dsp::simd::cpu_supports_avx2();
}

// Full input sweep for one kernel: 10k random + edge shapes + adversarial
// + corpus windows.  Corpus cases are cached — the synthetic MDB build is
// the expensive part and the windows are reusable across kernels.
std::vector<kdiff::Case> full_suite(std::uint64_t seed) {
  auto cases = kdiff::random_cases(seed, kRandomCasesPerKernel, 0, 512);
  kdiff::append_cases(cases, kdiff::edge_shape_cases());
  kdiff::append_cases(cases, kdiff::adversarial_cases(seed ^ 0xADD5EEDULL));
  static const std::vector<kdiff::Case> corpus =
      kdiff::corpus_cases(/*count=*/64, /*window_len=*/256);
  kdiff::append_cases(cases, corpus);
  return cases;
}

double a_magnitude(const kdiff::Case& c) {
  double sum = 0.0;
  for (double v : c.a) {
    sum += std::abs(v);
  }
  return std::isfinite(sum) ? sum : std::numeric_limits<double>::max();
}

TEST(KernelDiff, SumScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto cases = full_suite(0x501);
  const auto report = kdiff::run_diff(
      cases,
      [](const kdiff::Case& c) {
        return kernels::sum_scalar(c.a.data(), c.size());
      },
      [](const kdiff::Case& c) {
        return kernels::sum_avx2(c.a.data(), c.size());
      },
      kdiff::make_reduction_acceptor(kPinnedUlpBound, &a_magnitude));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(KernelDiff, DotScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto cases = full_suite(0xD07);
  const auto report = kdiff::run_diff(
      cases,
      [](const kdiff::Case& c) {
        return kernels::dot_scalar(c.a.data(), c.b.data(), c.size());
      },
      [](const kdiff::Case& c) {
        return kernels::dot_avx2(c.a.data(), c.b.data(), c.size());
      },
      kdiff::make_reduction_acceptor(
          kPinnedUlpBound,
          [](const kdiff::Case& c) { return c.product_magnitude(); }));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(KernelDiff, CenteredDotNormScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto cases = full_suite(0xCD0);
  // Both arms receive the same (scalar-computed) mean, mirroring production:
  // the divergence under test is the centered reduction itself.
  const auto mean_of_b = [](const kdiff::Case& c) {
    return c.size() == 0 ? 0.0
                         : kernels::sum_scalar(c.b.data(), c.size()) /
                               static_cast<double>(c.size());
  };
  const auto centered_magnitude = [&](const kdiff::Case& c, bool dot_part) {
    const double mean = mean_of_b(c);
    double sum = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double centered = c.b[i] - mean;
      sum += dot_part ? std::abs(c.a[i] * centered) : centered * centered;
    }
    return std::isfinite(sum) ? sum : std::numeric_limits<double>::max();
  };
  const auto dot_report = kdiff::run_diff(
      cases,
      [&](const kdiff::Case& c) {
        return kernels::centered_dot_norm_scalar(c.a.data(), c.b.data(),
                                                 c.size(), mean_of_b(c))
            .dot;
      },
      [&](const kdiff::Case& c) {
        return kernels::centered_dot_norm_avx2(c.a.data(), c.b.data(),
                                               c.size(), mean_of_b(c))
            .dot;
      },
      kdiff::make_reduction_acceptor(kPinnedUlpBound, [&](const auto& c) {
        return centered_magnitude(c, /*dot_part=*/true);
      }));
  EXPECT_TRUE(dot_report.ok()) << "dot: " << dot_report.summary();
  const auto norm_report = kdiff::run_diff(
      cases,
      [&](const kdiff::Case& c) {
        return kernels::centered_dot_norm_scalar(c.a.data(), c.b.data(),
                                                 c.size(), mean_of_b(c))
            .norm_sq;
      },
      [&](const kdiff::Case& c) {
        return kernels::centered_dot_norm_avx2(c.a.data(), c.b.data(),
                                               c.size(), mean_of_b(c))
            .norm_sq;
      },
      kdiff::make_reduction_acceptor(kPinnedUlpBound, [&](const auto& c) {
        return centered_magnitude(c, /*dot_part=*/false);
      }));
  EXPECT_TRUE(norm_report.ok()) << "norm_sq: " << norm_report.summary();
}

TEST(KernelDiff, AbsSumScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto cases = full_suite(0xA55);
  const auto report = kdiff::run_diff(
      cases,
      [](const kdiff::Case& c) {
        return kernels::abs_sum_scalar(c.a.data(), c.b.data(), c.size());
      },
      [](const kdiff::Case& c) {
        return kernels::abs_sum_avx2(c.a.data(), c.b.data(), c.size());
      },
      kdiff::make_reduction_acceptor(
          kPinnedUlpBound,
          [](const kdiff::Case& c) { return c.difference_magnitude(); }));
  EXPECT_TRUE(report.ok()) << report.summary();
}

// The capped kernel's contract is weaker than value equality: when the
// true area is <= threshold both arms return the full (reduction-
// equivalent) sum; once it exceeds the threshold each arm may exit at a
// different point and only "both > threshold" is promised.  A straddle is
// legal only within the reduction tolerance of the threshold itself.
TEST(KernelDiff, AbsSumCappedScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto cases = full_suite(0xCA9);
  const auto threshold_for = [](const kdiff::Case& c) {
    // Half the true area: roughly half the cases exit early, half run to
    // completion, and the threshold scales with the case's magnitudes.
    return 0.5 * kernels::abs_sum_scalar(c.a.data(), c.b.data(), c.size());
  };
  const auto capped_acceptor = [&](const kdiff::Case& c, double ref,
                                   double got) {
    const double threshold = threshold_for(c);
    if (std::isnan(ref) || std::isnan(got)) {
      return std::isnan(ref) && std::isnan(got);
    }
    const double tol =
        kdiff::reduction_tolerance(c.difference_magnitude(), c.size());
    const bool ref_over = ref > threshold;
    const bool got_over = got > threshold;
    if (ref_over && got_over) {
      return true;
    }
    if (!ref_over && !got_over) {
      return kdiff::ulp_distance(ref, got) <= kPinnedUlpBound ||
             std::abs(ref - got) <= tol;
    }
    return std::abs(std::min(ref, got) - threshold) <= tol;
  };
  const auto report = kdiff::run_diff(
      cases,
      [&](const kdiff::Case& c) {
        return kernels::abs_sum_capped_scalar(c.a.data(), c.b.data(),
                                              c.size(), threshold_for(c),
                                              nullptr);
      },
      [&](const kdiff::Case& c) {
        return kernels::abs_sum_capped_avx2(c.a.data(), c.b.data(), c.size(),
                                            threshold_for(c), nullptr);
      },
      capped_acceptor);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// With an unreachable threshold neither arm may exit early: both consume
// exactly n samples and return the full abs-sum.
TEST(KernelDiff, AbsSumCappedConsumesAllWithoutEarlyExit) {
  const auto cases = kdiff::random_cases(0xFEED, 200, 0, 130);
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto& c : cases) {
    std::size_t consumed = 0;
    const double scalar = kernels::abs_sum_capped_scalar(
        c.a.data(), c.b.data(), c.size(), inf, &consumed);
    EXPECT_EQ(consumed, c.size()) << c.tag;
    EXPECT_EQ(scalar, kernels::abs_sum_scalar(c.a.data(), c.b.data(),
                                              c.size()))
        << c.tag;
#ifdef EMAP_HAVE_AVX2
    if (dsp::simd::cpu_supports_avx2()) {
      consumed = 0;
      const double vec = kernels::abs_sum_capped_avx2(
          c.a.data(), c.b.data(), c.size(), inf, &consumed);
      EXPECT_EQ(consumed, c.size()) << c.tag;
      // Capped and uncapped AVX2 use different accumulator structures
      // (per-block cap check vs unrolled pairs), so "the full sum" is only
      // reduction-equivalent, not bit-equal.
      const double plain =
          kernels::abs_sum_avx2(c.a.data(), c.b.data(), c.size());
      EXPECT_TRUE(kdiff::ulp_distance(vec, plain) <= kPinnedUlpBound ||
                  std::abs(vec - plain) <= kdiff::reduction_tolerance(
                                               c.difference_magnitude(),
                                               c.size()))
          << c.tag << ": capped=" << vec << " plain=" << plain;
    }
#endif
  }
}

// End-to-end NCC through the public API, one dispatch arm per run.
TEST(KernelDiff, NormalizedCorrelationPublicApiScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  auto cases = full_suite(0x4CC0);
  std::erase_if(cases, [](const kdiff::Case& c) { return c.size() == 0; });
  const auto ncc_with = [](Level level, const kdiff::Case& c) {
    kdiff::ScopedSimdLevel forced(level);
    return dsp::normalized_correlation(c.a, c.b);
  };
  const auto report = kdiff::run_diff(
      cases,
      [&](const kdiff::Case& c) { return ncc_with(Level::kScalar, c); },
      [&](const kdiff::Case& c) { return ncc_with(Level::kAvx2, c); },
      kdiff::make_reduction_acceptor(
          kNccUlpBound, [](const kdiff::Case&) { return 0.0; }, kNccAbsTol));
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Sliding kernels, element-wise across arms.
TEST(KernelDiff, SlidingNccAndAreaScalarVsAvx2) {
  if (!avx2_arm_available()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto probe = noise(0x9A0BE, 128);
  const auto haystack = noise(0x8A15, 1500);
  kdiff::Case shared;
  shared.tag = "sliding[probe=128,haystack=1500]";
  shared.a = probe;
  shared.b = haystack;
  const std::vector<kdiff::Case> cases = {shared};
  const auto accept = kdiff::make_reduction_acceptor(
      kNccUlpBound, [](const kdiff::Case&) { return 0.0; }, kNccAbsTol);
  const auto ncc_report = kdiff::run_diff_sequences(
      cases,
      [&](const kdiff::Case& c) {
        kdiff::ScopedSimdLevel forced(Level::kScalar);
        return dsp::sliding_ncc(c.a, c.b);
      },
      [&](const kdiff::Case& c) {
        kdiff::ScopedSimdLevel forced(Level::kAvx2);
        return dsp::sliding_ncc(c.a, c.b);
      },
      accept);
  EXPECT_TRUE(ncc_report.ok()) << "sliding_ncc: " << ncc_report.summary();
  const auto area_accept = kdiff::make_reduction_acceptor(
      kPinnedUlpBound,
      [](const kdiff::Case& c) {
        return static_cast<double>(c.a.size()) * 16.0;  // |diff| <= ~16 sigma
      });
  const auto area_report = kdiff::run_diff_sequences(
      cases,
      [&](const kdiff::Case& c) {
        kdiff::ScopedSimdLevel forced(Level::kScalar);
        return dsp::sliding_area(c.a, c.b);
      },
      [&](const kdiff::Case& c) {
        kdiff::ScopedSimdLevel forced(Level::kAvx2);
        return dsp::sliding_area(c.a, c.b);
      },
      area_accept);
  EXPECT_TRUE(area_report.ok()) << "sliding_area: " << area_report.summary();
}

// --- forced-scalar bit-identity against the pre-SIMD implementations ----

// Verbatim replicas of the original (pre-dispatch) loops.  If the scalar
// arm ever stops being bit-identical to these, EMAP_SIMD=off no longer
// reproduces pre-SIMD results and every deterministic baseline breaks.
double legacy_ncc(const std::vector<double>& a, const std::vector<double>& b) {
  constexpr double kDegenerateNorm = 1e-12;
  const std::size_t n = a.size();
  std::vector<double> na(a);
  double mean = 0.0;
  for (double v : na) {
    mean += v;
  }
  mean /= static_cast<double>(n);
  double norm_sq = 0.0;
  for (double& v : na) {
    v -= mean;
    norm_sq += v * v;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm < kDegenerateNorm) {
    double mean_b = 0.0;
    for (double v : b) {
      mean_b += v;
    }
    mean_b /= static_cast<double>(n);
    double norm_sq_b = 0.0;
    for (double v : b) {
      const double centered = v - mean_b;
      norm_sq_b += centered * centered;
    }
    return std::sqrt(norm_sq_b) < kDegenerateNorm ? 1.0 : 0.0;
  }
  for (double& v : na) {
    v /= norm;
  }
  double mean_b = 0.0;
  for (double v : b) {
    mean_b += v;
  }
  mean_b /= static_cast<double>(n);
  double dot = 0.0;
  double cand_norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double centered = b[i] - mean_b;
    dot += na[i] * centered;
    cand_norm_sq += centered * centered;
  }
  const double cand_norm = std::sqrt(cand_norm_sq);
  if (cand_norm < kDegenerateNorm) {
    return 0.0;
  }
  return std::clamp(dot / cand_norm, -1.0, 1.0);
}

double legacy_area_capped(const std::vector<double>& a,
                          const std::vector<double>& b, double threshold,
                          std::size_t& ops) {
  double acc = 0.0;
  std::size_t i = 0;
  while (i < a.size()) {
    acc += std::abs(a[i] - b[i]);
    ++i;
    if (acc > threshold) {
      break;
    }
  }
  ops += i;
  return acc;
}

TEST(KernelDiff, ForcedScalarIsBitIdenticalToLegacyNcc) {
  auto cases = full_suite(0xB17);
  std::erase_if(cases, [](const kdiff::Case& c) { return c.size() == 0; });
  const auto report = kdiff::run_diff(
      cases,
      [](const kdiff::Case& c) { return legacy_ncc(c.a, c.b); },
      [](const kdiff::Case& c) {
        kdiff::ScopedSimdLevel forced(Level::kScalar);
        return dsp::normalized_correlation(c.a, c.b);
      },
      kdiff::ExactAcceptor{});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(KernelDiff, ForcedScalarIsBitIdenticalToLegacyCappedArea) {
  auto cases = full_suite(0xB18);
  std::erase_if(cases, [](const kdiff::Case& c) { return c.size() == 0; });
  kdiff::ScopedSimdLevel forced(Level::kScalar);
  for (const auto& c : cases) {
    const double threshold =
        0.5 * kernels::abs_sum_scalar(c.a.data(), c.b.data(), c.size());
    std::size_t legacy_ops = 0;
    std::size_t ops = 0;
    const double want = legacy_area_capped(c.a, c.b, threshold, legacy_ops);
    const double got =
        dsp::area_between_capped_counted(c.a, c.b, threshold, ops);
    ASSERT_EQ(kdiff::ulp_distance(want, got), 0u) << c.tag;
    ASSERT_EQ(legacy_ops, ops) << c.tag;
  }
}

// --- harness self-tests -------------------------------------------------

TEST(KernelDiffHarness, UlpDistanceBasics) {
  const double one = 1.0;
  EXPECT_EQ(kdiff::ulp_distance(one, one), 0u);
  EXPECT_EQ(kdiff::ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(kdiff::ulp_distance(
                one, std::nextafter(one, std::numeric_limits<double>::max())),
            1u);
  EXPECT_EQ(kdiff::ulp_distance(1e-320, -1e-320) > 0, true);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(kdiff::ulp_distance(nan, nan), 0u);
  EXPECT_EQ(kdiff::ulp_distance(nan, 1.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(kdiff::ulp_distance(inf, inf), 0u);
  EXPECT_EQ(kdiff::ulp_distance(inf, -inf),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(kdiff::ulp_distance(inf, 1.0),
            std::numeric_limits<std::uint64_t>::max());
  // Distance across the sign boundary is symmetric and monotone.
  EXPECT_EQ(kdiff::ulp_distance(-1.0, 1.0), kdiff::ulp_distance(1.0, -1.0));
  EXPECT_GT(kdiff::ulp_distance(-1.0, 1.0), kdiff::ulp_distance(0.5, 1.0));
}

TEST(KernelDiffHarness, GeneratorsAreSeededAndShaped) {
  const auto a = kdiff::random_cases(42, 50, 0, 64);
  const auto b = kdiff::random_cases(42, 50, 0, 64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
  }
  const auto c = kdiff::random_cases(43, 50, 0, 64);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].a != c[i].a;
  }
  EXPECT_TRUE(any_difference) << "different seeds must differ";

  bool has_non_multiple_of_8 = false;
  for (const auto& kase : a) {
    has_non_multiple_of_8 =
        has_non_multiple_of_8 || (kase.size() % 8 != 0 && kase.size() > 0);
  }
  EXPECT_TRUE(has_non_multiple_of_8);

  bool has_len0 = false;
  bool has_len1 = false;
  bool has_denormal = false;
  for (const auto& kase : kdiff::edge_shape_cases()) {
    has_len0 = has_len0 || kase.size() == 0;
    has_len1 = has_len1 || kase.size() == 1;
    for (double v : kase.a) {
      has_denormal = has_denormal ||
                     (v != 0.0 && std::abs(v) <
                                      std::numeric_limits<double>::min());
    }
  }
  EXPECT_TRUE(has_len0);
  EXPECT_TRUE(has_len1);
  EXPECT_TRUE(has_denormal);

  bool has_nan = false;
  bool has_inf = false;
  for (const auto& kase : kdiff::adversarial_cases(7)) {
    for (double v : kase.a) {
      has_nan = has_nan || std::isnan(v);
      has_inf = has_inf || std::isinf(v);
    }
  }
  EXPECT_TRUE(has_nan);
  EXPECT_TRUE(has_inf);
}

TEST(KernelDiffHarness, ReportsFailuresWithTags) {
  std::vector<kdiff::Case> cases;
  kdiff::Case c;
  c.tag = "bad-case";
  c.a = {1.0};
  c.b = {1.0};
  cases.push_back(c);
  const auto report = kdiff::run_diff(
      cases, [](const kdiff::Case&) { return 1.0; },
      [](const kdiff::Case&) { return 2.0; }, kdiff::ExactAcceptor{});
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].tag, "bad-case");
  EXPECT_NE(report.summary().find("bad-case"), std::string::npos);
}

}  // namespace
}  // namespace emap::testing
