#include "emap/dsp/fir.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(FirDesign, PaperBandpassHas100Taps) {
  const auto filter = FirFilter::paper_bandpass();
  EXPECT_EQ(filter.taps(), 100u);
  EXPECT_NEAR(filter.group_delay(), 49.5, 1e-12);
}

TEST(FirDesign, PaperBandpassPassesMidband) {
  const auto filter = FirFilter::paper_bandpass();
  // Unity (normalized) gain at the geometric center of 11-40 Hz.
  EXPECT_NEAR(filter.magnitude_response(25.5, 256.0), 1.0, 1e-9);
  EXPECT_GT(filter.magnitude_response(20.0, 256.0), 0.85);
  EXPECT_GT(filter.magnitude_response(35.0, 256.0), 0.85);
}

TEST(FirDesign, PaperBandpassAttenuatesStopbands) {
  const auto filter = FirFilter::paper_bandpass();
  EXPECT_LT(filter.magnitude_response(2.0, 256.0), 0.05);
  EXPECT_LT(filter.magnitude_response(5.0, 256.0), 0.05);
  EXPECT_LT(filter.magnitude_response(60.0, 256.0), 0.05);
  EXPECT_LT(filter.magnitude_response(100.0, 256.0), 0.05);
}

TEST(FirDesign, LowpassPassesDcBlocksHigh) {
  FirDesign design;
  design.response = FirResponse::kLowpass;
  design.taps = 101;
  design.high_cut_hz = 30.0;
  FirFilter filter(design);
  EXPECT_NEAR(filter.magnitude_response(0.0, 256.0), 1.0, 1e-9);
  EXPECT_LT(filter.magnitude_response(80.0, 256.0), 0.03);
}

TEST(FirDesign, HighpassBlocksDc) {
  FirDesign design;
  design.response = FirResponse::kHighpass;
  design.taps = 101;
  design.low_cut_hz = 30.0;
  FirFilter filter(design);
  EXPECT_LT(filter.magnitude_response(0.0, 256.0), 0.02);
  EXPECT_GT(filter.magnitude_response(60.0, 256.0), 0.9);
}

TEST(FirDesign, BandstopNotchesTheBand) {
  FirDesign design;
  design.response = FirResponse::kBandstop;
  design.taps = 151;
  design.low_cut_hz = 45.0;
  design.high_cut_hz = 55.0;
  FirFilter filter(design);
  EXPECT_LT(filter.magnitude_response(50.0, 256.0), 0.1);
  EXPECT_GT(filter.magnitude_response(10.0, 256.0), 0.9);
}

TEST(FirDesign, RejectsBadParameters) {
  FirDesign design;
  design.taps = 1;
  EXPECT_THROW(design_fir(design), InvalidArgument);

  design = FirDesign{};
  design.low_cut_hz = 0.0;
  EXPECT_THROW(design_fir(design), InvalidArgument);

  design = FirDesign{};
  design.high_cut_hz = 200.0;  // above Nyquist (128)
  EXPECT_THROW(design_fir(design), InvalidArgument);

  design = FirDesign{};
  design.low_cut_hz = 50.0;
  design.high_cut_hz = 20.0;
  EXPECT_THROW(design_fir(design), InvalidArgument);
}

TEST(FirFilter, RejectsEmptyCoefficients) {
  EXPECT_THROW(FirFilter(std::vector<double>{}), InvalidArgument);
}

TEST(FirFilter, BatchApplyMatchesDirectConvolution) {
  FirFilter filter(std::vector<double>{0.5, 0.25, 0.25});
  const std::vector<double> input = {1.0, 2.0, 3.0, 4.0};
  const auto output = filter.apply(input);
  ASSERT_EQ(output.size(), 4u);
  EXPECT_NEAR(output[0], 0.5, 1e-12);
  EXPECT_NEAR(output[1], 1.25, 1e-12);
  EXPECT_NEAR(output[2], 2.25, 1e-12);
  EXPECT_NEAR(output[3], 3.25, 1e-12);
}

TEST(FirFilter, StreamingMatchesBatch) {
  const auto filter_design = FirDesign{};
  FirFilter batch(filter_design);
  FirFilter streaming(filter_design);
  const auto input = testing::noise(5, 600);
  const auto expected = batch.apply(input);
  const auto actual = streaming.process_block(input);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-9) << "at " << i;
  }
}

TEST(FirFilter, StreamingAcrossBlockBoundariesIsSeamless) {
  FirFilter whole(FirDesign{});
  FirFilter chunked(FirDesign{});
  const auto input = testing::noise(6, 512);
  const auto expected = whole.process_block(input);
  std::vector<double> actual;
  for (std::size_t begin = 0; begin < input.size(); begin += 100) {
    const std::size_t end = std::min(input.size(), begin + 100);
    const auto part = chunked.process_block(
        std::span<const double>(input.data() + begin, end - begin));
    actual.insert(actual.end(), part.begin(), part.end());
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-9);
  }
}

TEST(FirFilter, ResetClearsHistory) {
  FirFilter filter(std::vector<double>{1.0, 1.0});
  (void)filter.process_sample(5.0);
  filter.reset();
  EXPECT_NEAR(filter.process_sample(1.0), 1.0, 1e-12);
}

TEST(FirFilter, LinearityHolds) {
  FirFilter f1(FirDesign{});
  FirFilter f2(FirDesign{});
  FirFilter f3(FirDesign{});
  const auto a = testing::sine(20.0, 256.0, 400, 1.0);
  const auto b = testing::noise(8, 400, 0.5);
  std::vector<double> sum(400);
  for (std::size_t i = 0; i < 400; ++i) {
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  const auto ya = f1.apply(a);
  const auto yb = f2.apply(b);
  const auto ysum = f3.apply(sum);
  for (std::size_t i = 0; i < 400; ++i) {
    EXPECT_NEAR(ysum[i], 2.0 * ya[i] + 3.0 * yb[i], 1e-9);
  }
}

TEST(FirFilter, SinusoidGainMatchesMagnitudeResponse) {
  FirFilter filter(FirDesign{});
  const double freq = 20.0;
  const auto input = testing::sine(freq, 256.0, 2048, 1.0);
  const auto output = filter.apply(input);
  // Steady-state peak after the transient.
  double peak = 0.0;
  for (std::size_t i = 512; i < output.size(); ++i) {
    peak = std::max(peak, std::abs(output[i]));
  }
  EXPECT_NEAR(peak, filter.magnitude_response(freq, 256.0), 0.02);
}

}  // namespace
}  // namespace emap::dsp
