#include "emap/dsp/montage.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/stats.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(Montage, CarRemovesCommonMode) {
  // Two channels sharing a strong common-mode tone plus distinct content.
  const auto common = testing::sine(7.0, 256.0, 512, 10.0);
  ChannelBlock block(2);
  block[0] = testing::sine(20.0, 256.0, 512, 1.0);
  block[1] = testing::sine(25.0, 256.0, 512, 1.0);
  for (std::size_t k = 0; k < 512; ++k) {
    block[0][k] += common[k];
    block[1][k] += common[k];
  }
  const auto referenced = common_average_reference(block);
  // The common-mode tone is identical in both channels, so CAR removes it
  // exactly; the 7 Hz content must vanish.
  for (const auto& channel : referenced) {
    EXPECT_LT(band_power(channel, 256.0, 5.0, 9.0), 0.01);
  }
  // The distinct content survives (halved: the other channel's mean share).
  EXPECT_GT(band_power(referenced[0], 256.0, 18.0, 22.0), 0.05);
}

TEST(Montage, CarOfSingleChannelIsZero) {
  ChannelBlock block(1, testing::noise(1, 64));
  const auto referenced = common_average_reference(block);
  for (double v : referenced[0]) {
    EXPECT_NEAR(v, 0.0, 1e-12);
  }
}

TEST(Montage, CarPreservesShape) {
  ChannelBlock block(3);
  for (std::size_t i = 0; i < 3; ++i) {
    block[i] = testing::noise(i + 2, 128);
  }
  const auto referenced = common_average_reference(block);
  ASSERT_EQ(referenced.size(), 3u);
  for (const auto& channel : referenced) {
    EXPECT_EQ(channel.size(), 128u);
  }
  // Instantaneous sum across CAR channels is zero.
  for (std::size_t k = 0; k < 128; ++k) {
    double sum = 0.0;
    for (const auto& channel : referenced) {
      sum += channel[k];
    }
    EXPECT_NEAR(sum, 0.0, 1e-9);
  }
}

TEST(Montage, CarRejectsRaggedBlock) {
  ChannelBlock block(2);
  block[0] = testing::noise(5, 64);
  block[1] = testing::noise(6, 32);
  EXPECT_THROW(common_average_reference(block), InvalidArgument);
  EXPECT_THROW(common_average_reference({}), InvalidArgument);
}

TEST(Montage, BipolarIsDifference) {
  const std::vector<double> a = {3.0, 2.0, 1.0};
  const std::vector<double> b = {1.0, 1.0, 1.0};
  const auto d = bipolar(a, b);
  EXPECT_EQ(d, (std::vector<double>{2.0, 1.0, 0.0}));
}

TEST(Montage, BipolarRejectsMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(bipolar(a, b), InvalidArgument);
}

TEST(Montage, PickMaxVarianceFindsActiveChannel) {
  ChannelBlock block(3);
  block[0] = testing::noise(7, 256, 0.5);
  block[1] = testing::noise(8, 256, 5.0);  // most active
  block[2] = testing::noise(9, 256, 1.0);
  EXPECT_EQ(pick_channel(block, ChannelPick::kMaxVariance), 1u);
}

TEST(Montage, PickMaxBandPowerFindsInBandChannel) {
  ChannelBlock block(3);
  block[0] = testing::sine(3.0, 256.0, 512, 5.0);   // out of band, strong
  block[1] = testing::sine(20.0, 256.0, 512, 2.0);  // in band
  block[2] = testing::sine(90.0, 256.0, 512, 5.0);  // out of band
  EXPECT_EQ(pick_channel(block, ChannelPick::kMaxBandPower), 1u);
}

TEST(Montage, PickMaxLineLengthFindsSpikyChannel) {
  ChannelBlock block(2);
  block[0] = testing::sine(2.0, 256.0, 512, 1.0);
  block[1] = testing::sine(40.0, 256.0, 512, 1.0);  // same amp, faster
  EXPECT_EQ(pick_channel(block, ChannelPick::kMaxLineLength), 1u);
}

}  // namespace
}  // namespace emap::dsp
