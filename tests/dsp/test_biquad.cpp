#include "emap/dsp/biquad.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/stats.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(Biquad, RejectsBadParameters) {
  EXPECT_THROW(Biquad(1, 0, 0, 0.0, 0, 0), InvalidArgument);
  EXPECT_THROW(Biquad::lowpass(0.0, 256.0), InvalidArgument);
  EXPECT_THROW(Biquad::lowpass(200.0, 256.0), InvalidArgument);
  EXPECT_THROW(Biquad::notch(50.0, 256.0, 0.0), InvalidArgument);
}

TEST(Biquad, LowpassPassesDcBlocksHigh) {
  auto filter = Biquad::lowpass(20.0, 256.0);
  EXPECT_NEAR(filter.magnitude_response(0.0, 256.0), 1.0, 1e-6);
  EXPECT_NEAR(filter.magnitude_response(20.0, 256.0), 0.7071, 0.01);
  EXPECT_LT(filter.magnitude_response(100.0, 256.0), 0.05);
}

TEST(Biquad, HighpassBlocksDcPassesHigh) {
  auto filter = Biquad::highpass(1.0, 256.0);
  EXPECT_LT(filter.magnitude_response(0.01, 256.0), 0.01);
  EXPECT_NEAR(filter.magnitude_response(50.0, 256.0), 1.0, 0.01);
}

TEST(Biquad, NotchKillsTargetKeepsNeighbours) {
  auto filter = Biquad::notch(50.0, 256.0, 30.0);
  EXPECT_LT(filter.magnitude_response(50.0, 256.0), 0.01);
  EXPECT_GT(filter.magnitude_response(40.0, 256.0), 0.95);
  EXPECT_GT(filter.magnitude_response(60.0, 256.0), 0.95);
}

TEST(Biquad, PeakingBoostsTarget) {
  auto filter = Biquad::peaking(20.0, 256.0, 6.0);
  EXPECT_NEAR(filter.magnitude_response(20.0, 256.0),
              std::pow(10.0, 6.0 / 20.0), 0.05);
  EXPECT_NEAR(filter.magnitude_response(1.0, 256.0), 1.0, 0.05);
}

TEST(Biquad, TimeDomainMatchesMagnitudeResponse) {
  auto filter = Biquad::lowpass(30.0, 256.0);
  const double freq = 15.0;
  const auto input = testing::sine(freq, 256.0, 4096);
  const auto output = filter.process_block(input);
  double peak = 0.0;
  for (std::size_t i = 1024; i < output.size(); ++i) {
    peak = std::max(peak, std::abs(output[i]));
  }
  EXPECT_NEAR(peak, filter.magnitude_response(freq, 256.0), 0.02);
}

TEST(Biquad, ResetClearsState) {
  auto filter = Biquad::lowpass(30.0, 256.0);
  (void)filter.process_sample(100.0);
  filter.reset();
  auto fresh = Biquad::lowpass(30.0, 256.0);
  EXPECT_DOUBLE_EQ(filter.process_sample(1.0), fresh.process_sample(1.0));
}

TEST(BiquadCascade, MagnitudeIsProductOfSections) {
  BiquadCascade cascade;
  cascade.push_back(Biquad::lowpass(40.0, 256.0));
  cascade.push_back(Biquad::highpass(5.0, 256.0));
  const double expected =
      Biquad::lowpass(40.0, 256.0).magnitude_response(20.0, 256.0) *
      Biquad::highpass(5.0, 256.0).magnitude_response(20.0, 256.0);
  EXPECT_NEAR(cascade.magnitude_response(20.0, 256.0), expected, 1e-9);
}

TEST(BiquadCascade, BlockMatchesSampleBySample) {
  BiquadCascade a({Biquad::lowpass(30.0, 256.0), Biquad::notch(50.0, 256.0)});
  BiquadCascade b({Biquad::lowpass(30.0, 256.0), Biquad::notch(50.0, 256.0)});
  const auto input = testing::noise(3, 256);
  const auto block = a.process_block(input);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(block[i], b.process_sample(input[i]), 1e-12);
  }
}

TEST(AcquisitionFrontend, RemovesMainsAndDc) {
  auto frontend = make_acquisition_frontend(256.0, 50.0);
  // 50 Hz mains + DC offset + in-band EEG tone.
  auto input = testing::sine(50.0, 256.0, 8192, 10.0);
  const auto eeg = testing::sine(20.0, 256.0, 8192, 1.0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] += eeg[i] + 25.0;
  }
  const auto output = frontend.process_block(input);
  const std::span<const double> steady(output.data() + 4096, 4096);
  EXPECT_LT(std::abs(mean(steady)), 0.5);        // DC gone
  // The in-band tone survives; mains is crushed.
  EXPECT_GT(frontend.magnitude_response(20.0, 256.0), 0.9);
  EXPECT_LT(frontend.magnitude_response(50.0, 256.0), 0.01);
  EXPECT_LT(frontend.magnitude_response(100.0, 256.0), 0.01);
}

TEST(AcquisitionFrontend, SkipsHarmonicAboveNyquist) {
  // At fs=100 the 2*60=120 Hz harmonic is above Nyquist and must not be
  // designed (would throw otherwise).
  auto frontend = make_acquisition_frontend(100.0, 40.0);
  EXPECT_EQ(frontend.size(), 2u);  // highpass + one notch
}

}  // namespace
}  // namespace emap::dsp
