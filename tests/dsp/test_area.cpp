#include "emap/dsp/area.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::dsp {
namespace {

TEST(AreaBetween, MatchesEq3) {
  const std::vector<double> a = {1.0, -2.0, 3.0};
  const std::vector<double> b = {0.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(area_between(a, b), 1.0 + 4.0 + 2.0);
}

TEST(AreaBetween, IdenticalCurvesGiveZero) {
  const auto a = testing::noise(1, 256);
  EXPECT_DOUBLE_EQ(area_between(a, a), 0.0);
}

TEST(AreaBetween, SymmetricInArguments) {
  const auto a = testing::noise(2, 128);
  const auto b = testing::noise(3, 128);
  EXPECT_DOUBLE_EQ(area_between(a, b), area_between(b, a));
}

TEST(AreaBetween, TriangleInequality) {
  const auto a = testing::noise(4, 128);
  const auto b = testing::noise(5, 128);
  const auto c = testing::noise(6, 128);
  EXPECT_LE(area_between(a, c),
            area_between(a, b) + area_between(b, c) + 1e-9);
}

TEST(AreaBetween, RejectsMismatchedOrEmpty) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(area_between(a, b), InvalidArgument);
  EXPECT_THROW(area_between({}, {}), InvalidArgument);
}

TEST(AreaBetweenCapped, ExactWhenUnderThreshold) {
  const auto a = testing::noise(7, 256);
  const auto b = testing::noise(8, 256);
  const double exact = area_between(a, b);
  EXPECT_DOUBLE_EQ(area_between_capped(a, b, exact + 1.0), exact);
}

TEST(AreaBetweenCapped, ExceedsThresholdWhenOver) {
  const auto a = testing::noise(9, 256);
  const auto b = testing::noise(10, 256);
  const double exact = area_between(a, b);
  const double capped = area_between_capped(a, b, exact / 2.0);
  EXPECT_GT(capped, exact / 2.0);
}

TEST(AreaBetweenCappedCounted, CountsConsumedSamples) {
  const std::vector<double> a(100, 0.0);
  std::vector<double> b(100, 0.0);
  b[3] = 50.0;  // blows through any small threshold at index 3
  std::size_t ops = 0;
  const double area = area_between_capped_counted(a, b, 10.0, ops);
  EXPECT_GT(area, 10.0);
  EXPECT_EQ(ops, 4u);
}

TEST(AreaBetweenCappedCounted, FullConsumptionWhenUnder) {
  const std::vector<double> a(100, 0.0);
  const std::vector<double> b(100, 0.01);
  std::size_t ops = 0;
  const double area = area_between_capped_counted(a, b, 10.0, ops);
  EXPECT_NEAR(area, 1.0, 1e-12);
  EXPECT_EQ(ops, 100u);
}

TEST(SlidingArea, MinimumAtEmbeddedCopy) {
  const auto probe = testing::sine(20.0, 256.0, 128, 3.0);
  auto haystack = testing::noise(11, 800, 0.2);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    haystack[300 + i] += probe[i];
  }
  const auto area = sliding_area(probe, haystack);
  ASSERT_EQ(area.size(), 800u - 128u + 1u);
  std::size_t argmin = 0;
  for (std::size_t k = 1; k < area.size(); ++k) {
    if (area[k] < area[argmin]) {
      argmin = k;
    }
  }
  EXPECT_EQ(argmin, 300u);
}

TEST(SlidingArea, EmptyWhenProbeTooLong) {
  EXPECT_TRUE(sliding_area(testing::noise(12, 64), testing::noise(13, 32))
                  .empty());
}

}  // namespace
}  // namespace emap::dsp
