#include "emap/dsp/window.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::dsp {
namespace {

TEST(Window, RejectsZeroLength) {
  EXPECT_THROW(make_window(WindowKind::kHamming, 0), InvalidArgument);
}

TEST(Window, LengthOneIsUnity) {
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHamming,
                    WindowKind::kHann, WindowKind::kBlackman}) {
    const auto w = make_window(kind, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
  }
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 64);
  for (double v : w) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

class WindowSymmetryTest : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowSymmetryTest, IsSymmetric) {
  for (std::size_t length : {2u, 3u, 64u, 100u, 101u}) {
    const auto w = make_window(GetParam(), length);
    ASSERT_EQ(w.size(), length);
    for (std::size_t n = 0; n < length; ++n) {
      EXPECT_NEAR(w[n], w[length - 1 - n], 1e-12)
          << window_name(GetParam()) << " length " << length << " at " << n;
    }
  }
}

TEST_P(WindowSymmetryTest, PeaksAtCenterAndBounded) {
  const auto w = make_window(GetParam(), 101);
  const double center = w[50];
  for (double v : w) {
    EXPECT_LE(v, center + 1e-12);
    EXPECT_GE(v, -1e-12);
  }
  EXPECT_NEAR(center, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowSymmetryTest,
                         ::testing::Values(WindowKind::kRectangular,
                                           WindowKind::kHamming,
                                           WindowKind::kHann,
                                           WindowKind::kBlackman),
                         [](const auto& info) {
                           return window_name(info.param);
                         });

TEST(Window, HammingEndpointValue) {
  const auto w = make_window(WindowKind::kHamming, 100);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
}

TEST(Window, HannEndpointsAreZero) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
}

TEST(Window, NamesAreStable) {
  EXPECT_STREQ(window_name(WindowKind::kHamming), "hamming");
  EXPECT_STREQ(window_name(WindowKind::kRectangular), "rectangular");
}

}  // namespace
}  // namespace emap::dsp
