#include "emap/core/report.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

RunResult sample_run() {
  EmapPipeline pipeline(testing::small_mdb(2), EmapConfig{});
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 2;
  spec.duration_sec = 20.0;
  spec.onset_sec = 15.0;
  return pipeline.run(synth::make_eval_input(spec));
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream stream(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(Report, IterationsCsvHasHeaderAndOneRowPerIteration) {
  testing::TempDir dir("report");
  const auto result = sample_run();
  const auto path = dir.path() / "iterations.csv";
  write_iterations_csv(result, path);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), result.iterations.size() + 1);
  EXPECT_NE(lines[0].find("anomaly_probability"), std::string::npos);
  // Every data row has the full column count.
  const auto commas = std::count(lines[0].begin(), lines[0].end(), ',');
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(std::count(lines[i].begin(), lines[i].end(), ','), commas);
  }
}

TEST(Report, TraceCsvMatchesActivities) {
  testing::TempDir dir("report");
  const auto result = sample_run();
  const auto path = dir.path() / "trace.csv";
  write_trace_csv(result, path);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), result.trace.activities().size() + 1);
  EXPECT_NE(lines[1].find("sample"), std::string::npos);
}

TEST(Report, WriteToUnwritablePathThrows) {
  const auto result = sample_run();
  EXPECT_THROW(write_iterations_csv(result, "/nonexistent/dir/out.csv"),
               IoError);
}

TEST(Report, JsonSummaryContainsAllKeys) {
  const auto result = sample_run();
  const auto json = run_summary_json(result);
  for (const char* key :
       {"iterations", "cloud_calls", "anomaly_predicted", "first_alarm_sec",
        "delta_ec_sec", "delta_cs_sec", "delta_ce_sec", "delta_initial_sec",
        "mean_track_sec", "max_track_sec"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace emap::core
