#include "emap/core/tracker.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

EmapConfig small_config() {
  EmapConfig config;
  config.tracking_threshold_h = 2;
  return config;
}

TrackedSignal make_signal(std::uint64_t id, bool anomalous,
                          std::vector<double> samples,
                          std::size_t beta = 0) {
  TrackedSignal signal;
  signal.set_id = id;
  signal.anomalous = anomalous;
  signal.beta = beta;
  signal.samples = std::move(samples);
  return signal;
}

TEST(Tracker, UnloadedStepIsNoop) {
  EdgeTracker tracker(small_config());
  EXPECT_FALSE(tracker.loaded());
  const auto result = tracker.step(testing::noise(1, 256));
  EXPECT_EQ(result.tracked_before, 0u);
  EXPECT_EQ(result.tracked_after, 0u);
}

TEST(Tracker, MatchingSignalSurvivesAndKeepsOffset) {
  EdgeTracker tracker(small_config());
  // Signal-set whose region at offset 100 equals the window exactly.
  const auto window = testing::noise(2, 256, 5.0);
  auto samples = testing::noise(3, 1000, 5.0);
  for (std::size_t i = 0; i < 256; ++i) {
    samples[100 + i] = window[i];
  }
  tracker.load({make_signal(1, true, samples, /*beta=*/100)});
  const auto result = tracker.step(window);
  EXPECT_EQ(result.tracked_after, 1u);
  EXPECT_EQ(result.removed_dissimilar, 0u);
  EXPECT_EQ(tracker.active()[0].beta, 100u);
}

TEST(Tracker, DissimilarSignalIsRemoved) {
  EdgeTracker tracker(small_config());
  tracker.load({make_signal(1, false, testing::noise(4, 1000, 5.0))});
  const auto result = tracker.step(testing::noise(5, 256, 5.0));
  EXPECT_EQ(result.removed_dissimilar, 1u);
  EXPECT_EQ(result.tracked_after, 0u);
}

TEST(Tracker, RematchScanAdvancesOffset) {
  EdgeTracker tracker(small_config());
  const auto window = testing::noise(6, 256, 5.0);
  auto samples = testing::noise(7, 1000, 5.0);
  // Plant the matching region ahead of the current offset, within the scan
  // range (stride 4 x 32 offsets = 124 samples ahead).
  for (std::size_t i = 0; i < 256; ++i) {
    samples[80 + i] = window[i];
  }
  tracker.load({make_signal(1, true, samples, /*beta=*/0)});
  const auto result = tracker.step(window);
  ASSERT_EQ(result.tracked_after, 1u);
  EXPECT_EQ(tracker.active()[0].beta, 80u);
}

TEST(Tracker, MatchBeyondScanRangeIsRemoved) {
  EmapConfig config = small_config();
  config.track_scan_stride = 4;
  config.track_max_scan_offsets = 8;  // scans only 28 samples ahead
  EdgeTracker tracker(config);
  const auto window = testing::noise(8, 256, 5.0);
  auto samples = testing::noise(9, 1000, 5.0);
  for (std::size_t i = 0; i < 256; ++i) {
    samples[500 + i] = window[i];
  }
  tracker.load({make_signal(1, true, samples, /*beta=*/0)});
  const auto result = tracker.step(window);
  EXPECT_EQ(result.removed_dissimilar, 1u);
}

TEST(Tracker, ExhaustedSignalIsRemovedAsExhausted) {
  EdgeTracker tracker(small_config());
  tracker.load({make_signal(1, true, testing::noise(10, 1000, 5.0),
                            /*beta=*/900)});
  const auto result = tracker.step(testing::noise(11, 256, 5.0));
  EXPECT_EQ(result.removed_exhausted, 1u);
  EXPECT_EQ(result.removed_dissimilar, 0u);
}

TEST(Tracker, TooShortSignalSetCountsExhausted) {
  EdgeTracker tracker(small_config());
  TrackedSignal stub = make_signal(1, false, testing::noise(12, 100, 5.0));
  tracker.load({stub});
  const auto result = tracker.step(testing::noise(13, 256, 5.0));
  EXPECT_EQ(result.removed_exhausted, 1u);
}

TEST(Tracker, StalenessCountsStepsAndResetsOnLoad) {
  EdgeTracker tracker(small_config());
  EXPECT_EQ(tracker.steps_since_load(), 0u);
  // A self-matching signal survives arbitrarily many steps.
  const auto window = testing::noise(40, 256, 5.0);
  auto samples = testing::noise(41, 1000, 5.0);
  for (std::size_t i = 0; i < 256; ++i) {
    samples[i] = window[i];
  }
  tracker.load({make_signal(1, false, samples)});
  EXPECT_EQ(tracker.steps_since_load(), 0u);
  for (std::size_t step = 1; step <= 7; ++step) {
    tracker.step(window);
    EXPECT_EQ(tracker.steps_since_load(), step);
  }
  // A fresh correlation set (the degraded edge finally reaching the cloud)
  // resets the staleness count.
  tracker.load({make_signal(2, false, samples)});
  EXPECT_EQ(tracker.steps_since_load(), 0u);
}

TEST(Tracker, AnomalyProbabilityIsEq5) {
  EdgeTracker tracker(small_config());
  const auto window = testing::noise(14, 256, 5.0);
  std::vector<TrackedSignal> set;
  for (int i = 0; i < 4; ++i) {
    auto samples = testing::noise(20 + static_cast<std::uint64_t>(i), 1000,
                                  5.0);
    for (std::size_t k = 0; k < 256; ++k) {
      samples[k] = window[k];
    }
    set.push_back(make_signal(static_cast<std::uint64_t>(i), i < 3, samples));
  }
  tracker.load(std::move(set));
  const auto result = tracker.step(window);
  EXPECT_EQ(result.tracked_after, 4u);
  EXPECT_DOUBLE_EQ(result.anomaly_probability, 0.75);
  EXPECT_DOUBLE_EQ(tracker.anomaly_probability(), 0.75);
}

TEST(Tracker, CloudCallFlagWhenBelowH) {
  EmapConfig config = small_config();
  config.tracking_threshold_h = 5;
  EdgeTracker tracker(config);
  tracker.load({make_signal(1, false, testing::noise(30, 1000, 5.0))});
  const auto result = tracker.step(testing::noise(31, 256, 5.0));
  EXPECT_TRUE(result.cloud_call_needed);
}

TEST(Tracker, NoCloudCallWhenEnoughTracked) {
  EmapConfig config = small_config();
  config.tracking_threshold_h = 1;
  EdgeTracker tracker(config);
  const auto window = testing::noise(32, 256, 5.0);
  auto samples = testing::noise(33, 1000, 5.0);
  for (std::size_t i = 0; i < 256; ++i) {
    samples[i] = window[i];
  }
  tracker.load({make_signal(1, true, samples)});
  const auto result = tracker.step(window);
  EXPECT_FALSE(result.cloud_call_needed);
}

TEST(Tracker, AbsOpsAreAccounted) {
  EdgeTracker tracker(small_config());
  tracker.load({make_signal(1, false, testing::noise(34, 1000, 5.0))});
  const auto result = tracker.step(testing::noise(35, 256, 5.0));
  EXPECT_GT(result.abs_ops, 0u);
}

TEST(Tracker, RejectsWrongWindowLength) {
  EdgeTracker tracker(small_config());
  tracker.load({make_signal(1, false, testing::noise(36, 1000))});
  EXPECT_THROW(tracker.step(testing::noise(37, 128)), InvalidArgument);
}

TEST(Tracker, LoadFromSearchCopiesSamples) {
  mdb::MdbStore store;
  mdb::SignalSet set;
  set.anomalous = true;
  set.class_tag = 1;
  set.samples = testing::noise(38, mdb::kSignalSetLength);
  store.insert(std::move(set));

  SearchResult search_result;
  SearchMatch match;
  match.store_index = 0;
  match.set_id = store.at(0).id;
  match.omega = 0.9;
  match.beta = 10;
  match.anomalous = true;
  search_result.matches.push_back(match);

  EdgeTracker tracker(small_config());
  tracker.load_from_search(search_result, store);
  ASSERT_EQ(tracker.active_count(), 1u);
  EXPECT_EQ(tracker.active()[0].samples, store.at(0).samples);
  EXPECT_EQ(tracker.active()[0].beta, 10u);
}

TEST(Tracker, LoadFromMessageMirrorsEntries) {
  net::CorrelationSetMessage message;
  net::CorrelationEntry entry;
  entry.set_id = 77;
  entry.omega = 0.85f;
  entry.beta = 5;
  entry.anomalous = 1;
  entry.class_tag = 2;
  entry.samples = testing::noise(39, 1000);
  message.entries.push_back(entry);

  EdgeTracker tracker(small_config());
  tracker.load_from_message(message);
  ASSERT_EQ(tracker.active_count(), 1u);
  EXPECT_EQ(tracker.active()[0].set_id, 77u);
  EXPECT_TRUE(tracker.active()[0].anomalous);
}

TEST(Tracker, ReloadReplacesPreviousSet) {
  EdgeTracker tracker(small_config());
  tracker.load({make_signal(1, false, testing::noise(40, 1000))});
  tracker.load({make_signal(2, true, testing::noise(41, 1000)),
                make_signal(3, true, testing::noise(42, 1000))});
  EXPECT_EQ(tracker.active_count(), 2u);
  EXPECT_DOUBLE_EQ(tracker.anomaly_probability(), 1.0);
}

}  // namespace
}  // namespace emap::core
