#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/core/cloud_node.hpp"
#include "emap/core/edge_node.hpp"
#include "emap/dsp/fft.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

TEST(EdgeNode, AcquireFiltersOutOfBandContent) {
  EdgeNode edge{EmapConfig{}};
  // 4 Hz tone is outside the 11-40 Hz passband.
  const auto raw = testing::sine(4.0, 256.0, 256, 10.0);
  // Warm the filter with a couple of windows, then measure.
  (void)edge.acquire_window(raw);
  const auto filtered = edge.acquire_window(raw);
  EXPECT_LT(dsp::band_power(filtered, 256.0, 2.0, 6.0), 0.5);
}

TEST(EdgeNode, AcquireKeepsInBandContent) {
  EdgeNode edge{EmapConfig{}};
  const auto raw = testing::sine(20.0, 256.0, 256, 10.0);
  (void)edge.acquire_window(raw);
  const auto filtered = edge.acquire_window(raw);
  EXPECT_GT(dsp::band_power(filtered, 256.0, 15.0, 25.0), 5.0);
}

TEST(EdgeNode, StreamingStateCarriesAcrossWindows) {
  EdgeNode continuous{EmapConfig{}};
  EdgeNode restarted{EmapConfig{}};
  const auto first = testing::noise(1, 256, 5.0);
  const auto second = testing::noise(2, 256, 5.0);
  (void)continuous.acquire_window(first);
  const auto with_history = continuous.acquire_window(second);
  const auto without_history = restarted.acquire_window(second);
  // The filter's 100-tap history must make the outputs differ at the head.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    max_diff = std::max(max_diff,
                        std::abs(with_history[i] - without_history[i]));
  }
  EXPECT_GT(max_diff, 0.1);
}

TEST(EdgeNode, ResetRestoresColdState) {
  EdgeNode edge{EmapConfig{}};
  const auto window = testing::noise(3, 256, 5.0);
  const auto cold = edge.acquire_window(window);
  edge.reset();
  const auto after_reset = edge.acquire_window(window);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_NEAR(after_reset[i], cold[i], 1e-12);
  }
}

TEST(EdgeNode, MakeUploadPackagesWindow) {
  EdgeNode edge{EmapConfig{}};
  const auto window = testing::noise(4, 256, 5.0);
  const auto message = edge.make_upload(9, window);
  EXPECT_EQ(message.sequence, 9u);
  EXPECT_EQ(message.samples.size(), 256u);
}

TEST(EdgeNode, MakeUploadRejectsBadLength) {
  EdgeNode edge{EmapConfig{}};
  EXPECT_THROW(edge.make_upload(0, testing::noise(5, 100)), InvalidArgument);
}

TEST(CloudNode, RespondReturnsAtMostTopK) {
  EmapConfig config;
  config.top_k = 10;
  config.delta = 0.5;
  CloudNode cloud(testing::small_mdb(2), config, /*threads=*/1);
  net::SignalUploadMessage request;
  request.sequence = 4;
  request.samples = testing::sine(16.0, 256.0, 256, 7.0);
  const auto response = cloud.respond(request);
  EXPECT_EQ(response.request_sequence, 4u);
  EXPECT_LE(response.entries.size(), 10u);
  for (const auto& entry : response.entries) {
    EXPECT_EQ(entry.samples.size(), mdb::kSignalSetLength);
    EXPECT_GT(entry.omega, 0.5f);
  }
}

TEST(CloudNode, RespondRejectsBadWindow) {
  CloudNode cloud(testing::small_mdb(1), EmapConfig{}, 1);
  net::SignalUploadMessage request;
  request.samples = testing::noise(6, 10);
  EXPECT_THROW(cloud.respond(request), InvalidArgument);
}

TEST(CloudNode, LastStatsReflectMostRecentSearch) {
  CloudNode cloud(testing::small_mdb(1), EmapConfig{}, 1);
  const auto window = testing::sine(18.0, 256.0, 256, 7.0);
  (void)cloud.search(window);
  EXPECT_EQ(cloud.last_stats().sets_scanned, cloud.store().size());
  EXPECT_GT(cloud.last_stats().correlation_evals, 0u);
}

TEST(CloudNode, EntriesMirrorSearchMatches) {
  EmapConfig config;
  config.delta = 0.5;
  CloudNode cloud(testing::small_mdb(2), config, 1);
  const auto window = testing::sine(16.0, 256.0, 256, 7.0);
  const auto result = cloud.search(window);
  net::SignalUploadMessage request;
  request.samples.assign(window.begin(), window.end());
  const auto response = cloud.respond(request);
  ASSERT_EQ(response.entries.size(), result.matches.size());
  for (std::size_t i = 0; i < result.matches.size(); ++i) {
    EXPECT_EQ(response.entries[i].set_id, result.matches[i].set_id);
    EXPECT_EQ(response.entries[i].beta,
              static_cast<std::uint32_t>(result.matches[i].beta));
  }
}

}  // namespace
}  // namespace emap::core
