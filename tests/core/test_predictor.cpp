#include "emap/core/predictor.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::core {
namespace {

// Immediate-alarm configuration (persistence 1) for the threshold tests;
// the persistence mechanism has its own tests below.
EmapConfig config_with(double high, double rise, double base) {
  EmapConfig config;
  config.predict_high_probability = high;
  config.predict_rise_threshold = rise;
  config.predict_base_probability = base;
  config.predict_persistence = 1;
  return config;
}

TEST(Predictor, StartsUnalarmed) {
  AnomalyPredictor predictor{EmapConfig{}};
  EXPECT_FALSE(predictor.anomaly_predicted());
  EXPECT_LT(predictor.first_alarm_sec(), 0.0);
  EXPECT_DOUBLE_EQ(predictor.latest(), 0.0);
}

TEST(Predictor, HighProbabilityTriggersImmediately) {
  AnomalyPredictor predictor(config_with(0.8, 0.2, 0.4));
  predictor.observe(0.85, 12.0);
  EXPECT_TRUE(predictor.anomaly_predicted());
  EXPECT_DOUBLE_EQ(predictor.first_alarm_sec(), 12.0);
}

TEST(Predictor, LowFlatSeriesNeverAlarms) {
  AnomalyPredictor predictor(config_with(0.8, 0.2, 0.4));
  for (int i = 0; i < 50; ++i) {
    predictor.observe(0.1, static_cast<double>(i));
  }
  EXPECT_FALSE(predictor.anomaly_predicted());
}

TEST(Predictor, RisingSeriesAboveBaseAlarms) {
  AnomalyPredictor predictor(config_with(0.9, 0.15, 0.4));
  const double series[] = {0.1, 0.15, 0.2, 0.35, 0.5, 0.6};
  for (int i = 0; i < 6; ++i) {
    predictor.observe(series[i], static_cast<double>(i));
  }
  EXPECT_TRUE(predictor.anomaly_predicted());
}

TEST(Predictor, RiseBelowBaseDoesNotAlarm) {
  AnomalyPredictor predictor(config_with(0.9, 0.1, 0.5));
  const double series[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.35};
  for (int i = 0; i < 6; ++i) {
    predictor.observe(series[i], static_cast<double>(i));
  }
  EXPECT_FALSE(predictor.anomaly_predicted());
}

TEST(Predictor, AlarmLatches) {
  AnomalyPredictor predictor(config_with(0.8, 0.2, 0.4));
  predictor.observe(0.9, 5.0);
  predictor.observe(0.0, 6.0);
  predictor.observe(0.0, 7.0);
  EXPECT_TRUE(predictor.anomaly_predicted());
  EXPECT_DOUBLE_EQ(predictor.first_alarm_sec(), 5.0);
}

TEST(Predictor, TrendRiseComputesHalfWindowDifference) {
  EmapConfig config;
  config.predict_trend_window = 4;
  AnomalyPredictor predictor(config);
  for (double p : {0.1, 0.1, 0.5, 0.5}) {
    predictor.observe(p, 0.0);
  }
  EXPECT_NEAR(predictor.trend_rise(), 0.4, 1e-12);
}

TEST(Predictor, RejectsOutOfRangeProbability) {
  AnomalyPredictor predictor{EmapConfig{}};
  EXPECT_THROW(predictor.observe(-0.1, 0.0), InvalidArgument);
  EXPECT_THROW(predictor.observe(1.1, 0.0), InvalidArgument);
}

TEST(Predictor, ResetClearsEverything) {
  AnomalyPredictor predictor(config_with(0.8, 0.2, 0.4));
  predictor.observe(0.9, 5.0);
  predictor.reset();
  EXPECT_FALSE(predictor.anomaly_predicted());
  EXPECT_TRUE(predictor.history().empty());
  EXPECT_LT(predictor.first_alarm_sec(), 0.0);
}

TEST(Predictor, PersistenceRequiresConsecutiveHits) {
  EmapConfig config = config_with(0.8, 0.2, 0.4);
  config.predict_persistence = 2;
  AnomalyPredictor predictor(config);
  predictor.observe(0.9, 1.0);
  EXPECT_FALSE(predictor.anomaly_predicted()) << "single spike must not alarm";
  predictor.observe(0.1, 2.0);  // breaks the streak
  predictor.observe(0.9, 3.0);
  EXPECT_FALSE(predictor.anomaly_predicted());
  predictor.observe(0.9, 4.0);  // second consecutive hit
  EXPECT_TRUE(predictor.anomaly_predicted());
  EXPECT_DOUBLE_EQ(predictor.first_alarm_sec(), 4.0);
}

TEST(Predictor, DefaultConfigUsesPersistence) {
  AnomalyPredictor predictor{EmapConfig{}};
  predictor.observe(0.95, 1.0);
  EXPECT_FALSE(predictor.anomaly_predicted());
  predictor.observe(0.95, 2.0);
  EXPECT_TRUE(predictor.anomaly_predicted());
}

TEST(Predictor, HistoryAccumulates) {
  AnomalyPredictor predictor{EmapConfig{}};
  for (int i = 0; i < 10; ++i) {
    predictor.observe(0.05 * i, static_cast<double>(i));
  }
  EXPECT_EQ(predictor.history().size(), 10u);
  EXPECT_DOUBLE_EQ(predictor.latest(), 0.45);
}

}  // namespace
}  // namespace emap::core
