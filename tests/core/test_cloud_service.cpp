#include "emap/core/cloud_service.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "emap/common/error.hpp"
#include "emap/mdb/builder.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

net::SignalUploadMessage make_upload(std::uint32_t sequence,
                                     std::uint64_t seed) {
  net::SignalUploadMessage upload;
  upload.sequence = sequence;
  upload.samples = testing::sine(16.0 + static_cast<double>(seed % 5), 256.0,
                                 256, 7.0);
  return upload;
}

TEST(CloudService, RejectsZeroWorkers) {
  EXPECT_THROW(CloudService(testing::small_mdb(1), EmapConfig{}, 0),
               InvalidArgument);
}

TEST(CloudService, EmptyQueueProcessesToNothing) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  EXPECT_TRUE(service.process_all().empty());
  EXPECT_EQ(service.stats().requests, 0u);
}

TEST(CloudService, SingleRequestHasNoWait) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  service.submit(ServiceRequest{7, make_upload(1, 1), 5.0});
  const auto responses = service.process_all();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].patient, 7u);
  EXPECT_DOUBLE_EQ(responses[0].arrival_sec, 5.0);
  EXPECT_DOUBLE_EQ(responses[0].start_sec, 5.0);
  EXPECT_GT(responses[0].completion_sec, 5.0);
  EXPECT_DOUBLE_EQ(responses[0].wait_sec(), 0.0);
}

TEST(CloudService, SimultaneousArrivalsQueueOnOneWorker) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  service.submit(ServiceRequest{1, make_upload(1, 1), 0.0});
  service.submit(ServiceRequest{2, make_upload(2, 2), 0.0});
  const auto responses = service.process_all();
  ASSERT_EQ(responses.size(), 2u);
  // Second completion starts after the first finishes.
  EXPECT_DOUBLE_EQ(responses[1].start_sec, responses[0].completion_sec);
  EXPECT_GT(responses[1].wait_sec(), 0.0);
}

TEST(CloudService, TwoWorkersServeSimultaneousArrivalsInParallel) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 2);
  service.submit(ServiceRequest{1, make_upload(1, 1), 0.0});
  service.submit(ServiceRequest{2, make_upload(2, 2), 0.0});
  const auto responses = service.process_all();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_DOUBLE_EQ(responses[0].wait_sec(), 0.0);
  EXPECT_DOUBLE_EQ(responses[1].wait_sec(), 0.0);
}

TEST(CloudService, FifoByArrivalRegardlessOfSubmissionOrder) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  service.submit(ServiceRequest{2, make_upload(2, 2), 10.0});
  service.submit(ServiceRequest{1, make_upload(1, 1), 0.0});
  const auto responses = service.process_all();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].patient, 1u);
  EXPECT_EQ(responses[1].patient, 2u);
}

TEST(CloudService, LateArrivalDoesNotWaitOnIdleWorker) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  service.submit(ServiceRequest{1, make_upload(1, 1), 0.0});
  service.submit(ServiceRequest{2, make_upload(2, 2), 1000.0});
  const auto responses = service.process_all();
  EXPECT_DOUBLE_EQ(responses[1].start_sec, 1000.0);
  EXPECT_DOUBLE_EQ(responses[1].wait_sec(), 0.0);
}

TEST(CloudService, StatsAreConsistent) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    service.submit(ServiceRequest{i, make_upload(i, i), 0.0});
  }
  (void)service.process_all();
  const auto& stats = service.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_GT(stats.mean_service_sec, 0.0);
  EXPECT_GE(stats.mean_response_sec, stats.mean_service_sec);
  EXPECT_GE(stats.max_response_sec, stats.mean_response_sec);
  // One worker saturated by simultaneous arrivals: near-full utilization.
  EXPECT_GT(stats.utilization, 0.9);
  EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

TEST(CloudService, ZeroMakespanYieldsZeroUtilization) {
  // An empty store makes every search free under the device model, so the
  // batch completes with zero makespan.  Utilization must stay a finite 0
  // instead of dividing by zero.
  CloudService service(mdb::MdbBuilder().take_store(), EmapConfig{}, 1);
  service.submit(ServiceRequest{1, make_upload(1, 1), 3.0});
  (void)service.process_all();
  const auto& stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_DOUBLE_EQ(stats.makespan_sec, 0.0);
  EXPECT_TRUE(std::isfinite(stats.utilization));
  EXPECT_DOUBLE_EQ(stats.utilization, 0.0);
}

TEST(CloudService, MoreWorkersReduceResponseTime) {
  auto store = testing::small_mdb(1);
  CloudService narrow(mdb::MdbStore(store), EmapConfig{}, 1);
  CloudService wide(mdb::MdbStore(store), EmapConfig{}, 4);
  for (std::uint32_t i = 0; i < 8; ++i) {
    narrow.submit(ServiceRequest{i, make_upload(i, i), 0.0});
    wide.submit(ServiceRequest{i, make_upload(i, i), 0.0});
  }
  (void)narrow.process_all();
  (void)wide.process_all();
  EXPECT_LT(wide.stats().mean_response_sec,
            narrow.stats().mean_response_sec);
}

TEST(CloudService, LossyUplinkDropsRequestsDeterministically) {
  auto store = testing::small_mdb(1);
  net::FaultOptions fault;
  fault.up.drop = 0.5;
  fault.seed = 31;

  auto run_batch = [&store, &fault]() {
    CloudService service(mdb::MdbStore(store), EmapConfig{}, 2);
    net::FaultInjector injector(fault);
    service.set_fault_injector(&injector);
    for (std::uint32_t i = 0; i < 20; ++i) {
      service.submit(ServiceRequest{i, make_upload(i, i), 0.1 * i});
    }
    const auto responses = service.process_all();
    return std::pair<std::size_t, std::size_t>(
        responses.size(), service.stats().lost_requests);
  };

  const auto [served_a, lost_a] = run_batch();
  EXPECT_EQ(served_a + lost_a, 20u);
  EXPECT_GT(lost_a, 0u);
  EXPECT_GT(served_a, 0u) << "seed lost every request";
  // Same seed, same schedule: the fleet-capacity-under-loss experiment is
  // reproducible.
  const auto [served_b, lost_b] = run_batch();
  EXPECT_EQ(served_a, served_b);
  EXPECT_EQ(lost_a, lost_b);
}

TEST(CloudService, PerfectLinkLosesNothing) {
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    service.submit(ServiceRequest{i, make_upload(i, i), 0.0});
  }
  EXPECT_EQ(service.process_all().size(), 4u);
  EXPECT_EQ(service.stats().lost_requests, 0u);
}

TEST(CloudService, ResponsesCarrySearchResults) {
  CloudService service(testing::small_mdb(2), EmapConfig{}, 1);
  // A window drawn from a real synthetic patient must produce matches.
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 4;
  spec.duration_sec = 130.0;
  spec.onset_sec = 120.0;
  const auto input = synth::make_eval_input(spec);
  dsp::FirFilter filter{EmapConfig{}.filter};
  const auto filtered = filter.apply(input.samples);
  net::SignalUploadMessage upload;
  upload.sequence = 9;
  upload.samples.assign(filtered.begin() + 110 * 256,
                        filtered.begin() + 111 * 256);
  service.submit(ServiceRequest{1, upload, 0.0});
  const auto responses = service.process_all();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].sequence, 9u);
  EXPECT_FALSE(responses[0].correlation_set.entries.empty());
}

}  // namespace
}  // namespace emap::core
