// Algorithm 1 scan under SIMD dispatch and cache blocking: the blocked
// scan must be pure iteration structure (identical results for any block
// size), forced-scalar must be bit-identical run to run, and the AVX2 arm
// must agree with scalar within the end-to-end NCC bound.
#include "emap/core/search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "emap/dsp/simd.hpp"
#include "support/kernel_diff.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

using emap::testing::kdiff::ScopedSimdLevel;
using emap::testing::kdiff::ulp_distance;
using Level = dsp::simd::Level;

/// Restores automatic block sizing when the test ends.
struct ScopedScanBlock {
  explicit ScopedScanBlock(std::size_t block) { force_scan_block(block); }
  ~ScopedScanBlock() { force_scan_block(std::nullopt); }
};

EmapConfig permissive_config() {
  EmapConfig config;
  config.delta = 0.2;  // plenty of candidates so result ordering matters
  return config;
}

mdb::MdbStore corpus_store() { return emap::testing::small_mdb(2); }

// A probe cut from offset 0 of a stored set: offset 0 is on every
// exponential-window probe grid (see test_search.cpp's PlantedFixture),
// so the scan is guaranteed to evaluate the planted alignment and the
// invariance checks compare non-trivial result sets.
std::vector<double> corpus_probe(const mdb::MdbStore& store) {
  const auto& samples = store.at(1).samples;
  return {samples.begin(), samples.begin() + 256};
}

void expect_identical_results(const SearchResult& a, const SearchResult& b,
                              const char* what) {
  ASSERT_EQ(a.matches.size(), b.matches.size()) << what;
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].set_id, b.matches[i].set_id) << what << " #" << i;
    EXPECT_EQ(a.matches[i].beta, b.matches[i].beta) << what << " #" << i;
    EXPECT_EQ(a.matches[i].omega, b.matches[i].omega) << what << " #" << i;
  }
  EXPECT_EQ(a.stats.correlation_evals, b.stats.correlation_evals) << what;
  EXPECT_EQ(a.stats.offsets_total, b.stats.offsets_total) << what;
  EXPECT_EQ(a.stats.candidates, b.stats.candidates) << what;
}

// Blocking must not change the evaluated beta sequence: any block size —
// including pathological 1-sample blocks and blocking disabled — yields
// the same matches, the same omegas (bit-for-bit), the same eval counts.
TEST(SearchSimd, BlockedScanIsBlockSizeInvariant) {
  const auto store = corpus_store();
  const auto probe = corpus_probe(store);
  CrossCorrelationSearch search(permissive_config());
  ScopedSimdLevel forced(Level::kScalar);  // isolate blocking from dispatch

  SearchResult reference;
  {
    ScopedScanBlock block(0);  // blocking disabled: the original loop
    reference = search.search(probe, store);
  }
  ASSERT_FALSE(reference.matches.empty());
  for (const std::size_t block_size :
       {std::size_t{1}, std::size_t{7}, std::size_t{300},
        kDefaultScanBlockSamples, std::size_t{1} << 30}) {
    ScopedScanBlock block(block_size);
    const auto result = search.search(probe, store);
    expect_identical_results(reference, result, "block-size sweep");
  }
}

TEST(SearchSimd, ForcedScalarSearchIsBitIdenticalAcrossRuns) {
  const auto store = corpus_store();
  const auto probe = corpus_probe(store);
  CrossCorrelationSearch search(permissive_config());
  ScopedSimdLevel forced(Level::kScalar);
  const auto first = search.search(probe, store);
  const auto second = search.search(probe, store);
  expect_identical_results(first, second, "scalar run-to-run");
}

// Scalar and AVX2 scans take the same skip decisions on this workload and
// agree on every reported omega within the end-to-end NCC bound.  (The
// skip sequence is quantized through llround, so the sub-ULP omega
// differences cannot change it except exactly at a quantization boundary —
// if this workload ever lands on one, the divergence shows up here first.)
TEST(SearchSimd, Avx2SearchMatchesScalarWithinNccBound) {
  if (!dsp::simd::compiled_with_avx2() || !dsp::simd::cpu_supports_avx2()) {
    GTEST_SKIP() << "AVX2 arm not available on this build/host";
  }
  const auto store = corpus_store();
  const auto probe = corpus_probe(store);
  CrossCorrelationSearch search(permissive_config());

  SearchResult scalar;
  {
    ScopedSimdLevel forced(Level::kScalar);
    scalar = search.search(probe, store);
  }
  SearchResult avx2;
  {
    ScopedSimdLevel forced(Level::kAvx2);
    avx2 = search.search(probe, store);
  }
  ASSERT_FALSE(scalar.matches.empty());
  ASSERT_EQ(scalar.matches.size(), avx2.matches.size());
  EXPECT_EQ(scalar.stats.correlation_evals, avx2.stats.correlation_evals);
  for (std::size_t i = 0; i < scalar.matches.size(); ++i) {
    EXPECT_EQ(scalar.matches[i].set_id, avx2.matches[i].set_id) << i;
    EXPECT_EQ(scalar.matches[i].beta, avx2.matches[i].beta) << i;
    const bool close =
        ulp_distance(scalar.matches[i].omega, avx2.matches[i].omega) <=
            4096 ||
        std::abs(scalar.matches[i].omega - avx2.matches[i].omega) <= 1e-9;
    EXPECT_TRUE(close) << "match " << i << ": scalar omega "
                       << scalar.matches[i].omega << " vs avx2 "
                       << avx2.matches[i].omega;
  }
}

TEST(SearchSimd, ScanBlockDefaultsAndOverride) {
  force_scan_block(std::nullopt);
  // Without an override the value is whatever the process env resolved to;
  // it must be stable across calls (read-once contract).
  const std::size_t first = scan_block_samples();
  EXPECT_EQ(first, scan_block_samples());
  {
    ScopedScanBlock block(123);
    EXPECT_EQ(scan_block_samples(), 123u);
  }
  EXPECT_EQ(scan_block_samples(), first);
}

}  // namespace
}  // namespace emap::core
