// Parameterized invariants of the edge tracker (Algorithm 2).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "emap/core/tracker.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

class TrackerProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // A mixed set: some signals embed the window (survivors), some are noise.
  std::vector<TrackedSignal> make_set(const std::vector<double>& window,
                                      std::size_t count) const {
    std::vector<TrackedSignal> set;
    for (std::size_t i = 0; i < count; ++i) {
      TrackedSignal signal;
      signal.set_id = i + 1;
      signal.anomalous = (i % 3 == 0);
      signal.beta = (i * 53) % 600;
      signal.samples = testing::noise(GetParam() * 100 + i, 1000, 5.0);
      if (i % 2 == 0) {
        for (std::size_t k = 0; k < window.size(); ++k) {
          signal.samples[signal.beta + k] = window[k];
        }
      }
      set.push_back(std::move(signal));
    }
    return set;
  }
};

TEST_P(TrackerProperty, SurvivorsAreSubsetOfLoaded) {
  EmapConfig config;
  config.tracking_threshold_h = 1;
  EdgeTracker tracker(config);
  const auto window = testing::noise(GetParam(), 256, 5.0);
  const auto loaded = make_set(window, 20);
  std::set<std::uint64_t> loaded_ids;
  for (const auto& signal : loaded) {
    loaded_ids.insert(signal.set_id);
  }
  tracker.load(loaded);
  (void)tracker.step(window);
  for (const auto& survivor : tracker.active()) {
    EXPECT_TRUE(loaded_ids.count(survivor.set_id));
  }
}

TEST_P(TrackerProperty, CountsAreConserved) {
  EmapConfig config;
  EdgeTracker tracker(config);
  const auto window = testing::noise(GetParam() + 1, 256, 5.0);
  tracker.load(make_set(window, 24));
  const auto result = tracker.step(window);
  EXPECT_EQ(result.tracked_before,
            result.tracked_after + result.removed_dissimilar +
                result.removed_exhausted);
}

TEST_P(TrackerProperty, BetaNeverMovesBackward) {
  EmapConfig config;
  EdgeTracker tracker(config);
  const auto window = testing::noise(GetParam() + 2, 256, 5.0);
  const auto loaded = make_set(window, 16);
  std::map<std::uint64_t, std::size_t> initial_beta;
  for (const auto& signal : loaded) {
    initial_beta[signal.set_id] = signal.beta;
  }
  tracker.load(loaded);
  (void)tracker.step(window);
  for (const auto& survivor : tracker.active()) {
    EXPECT_GE(survivor.beta, initial_beta[survivor.set_id]);
  }
}

TEST_P(TrackerProperty, EmbeddedSignalsSurviveNoiseSignalsDie) {
  EmapConfig config;
  EdgeTracker tracker(config);
  const auto window = testing::noise(GetParam() + 3, 256, 5.0);
  tracker.load(make_set(window, 20));
  (void)tracker.step(window);
  for (const auto& survivor : tracker.active()) {
    // Only the even-indexed (embedded) signals can match exactly.
    EXPECT_EQ((survivor.set_id - 1) % 2, 0u) << "noise signal survived";
  }
  EXPECT_GT(tracker.active_count(), 0u);
}

TEST_P(TrackerProperty, ProbabilityMatchesSurvivorComposition) {
  EmapConfig config;
  EdgeTracker tracker(config);
  const auto window = testing::noise(GetParam() + 4, 256, 5.0);
  tracker.load(make_set(window, 20));
  const auto result = tracker.step(window);
  if (result.tracked_after > 0) {
    std::size_t anomalous = 0;
    for (const auto& survivor : tracker.active()) {
      if (survivor.anomalous) {
        ++anomalous;
      }
    }
    EXPECT_DOUBLE_EQ(result.anomaly_probability,
                     static_cast<double>(anomalous) /
                         static_cast<double>(result.tracked_after));
  }
}

TEST_P(TrackerProperty, StepIsIdempotentOnPerfectMatches) {
  // A window that matches at the current offset leaves beta unchanged, so
  // re-stepping with the same window keeps the same survivors.
  EmapConfig config;
  config.tracking_threshold_h = 1;
  EdgeTracker tracker(config);
  const auto window = testing::noise(GetParam() + 5, 256, 5.0);
  tracker.load(make_set(window, 12));
  (void)tracker.step(window);
  const auto first_ids = tracker.active();
  (void)tracker.step(window);
  ASSERT_EQ(tracker.active_count(), first_ids.size());
  for (std::size_t i = 0; i < first_ids.size(); ++i) {
    EXPECT_EQ(tracker.active()[i].set_id, first_ids[i].set_id);
    EXPECT_EQ(tracker.active()[i].beta, first_ids[i].beta);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace emap::core
