#include "emap/core/config.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::core {
namespace {

TEST(Config, PaperDefaultsMatchSectionV) {
  const auto config = EmapConfig::paper_defaults();
  EXPECT_DOUBLE_EQ(config.base_fs_hz, 256.0);
  EXPECT_EQ(config.window_length, 256u);
  EXPECT_DOUBLE_EQ(config.alpha, 0.004);
  EXPECT_DOUBLE_EQ(config.delta, 0.8);
  EXPECT_EQ(config.top_k, 100u);
  EXPECT_DOUBLE_EQ(config.delta_area, 900.0);
  EXPECT_EQ(config.filter.taps, 100u);
  EXPECT_DOUBLE_EQ(config.filter.low_cut_hz, 11.0);
  EXPECT_DOUBLE_EQ(config.filter.high_cut_hz, 40.0);
}

TEST(Config, DefaultsValidate) {
  EXPECT_NO_THROW(EmapConfig::paper_defaults().validate());
}

TEST(Config, ValidateRejectsBadValues) {
  auto config = EmapConfig::paper_defaults();
  config.alpha = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.alpha = 1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.delta = 1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.top_k = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.delta_area = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.window_length = 4;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.track_scan_stride = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = EmapConfig::paper_defaults();
  config.predict_trend_window = 1;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

}  // namespace
}  // namespace emap::core
