// StreamPipeline: virtual-time delegation (bit-identity with the batch
// loop), threaded stage-graph structural invariants, supervised recovery
// from injected stage crashes and stalls, and the watchdog-CRITICAL
// flight-dump regression.  The threaded suites run real threads and are
// part of the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "emap/common/error.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/core/stream.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/sim/device.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

synth::Recording seizure_input(std::uint64_t seed, double duration,
                               double onset) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

/// Threaded scheduler for the tests: the stall timeout must comfortably
/// exceed one wall-clock cloud search (a worker cannot heartbeat inside
/// executor_.issue, and sanitizer builds slow the search 10-20x) while
/// staying small enough that the injected-stall test resolves quickly.
StreamOptions threaded_options() {
  StreamOptions options;
  options.mode = SchedulerMode::kThreaded;
  options.supervisor.poll_interval_sec = 0.01;
  options.supervisor.stall_timeout_sec = 2.0;
  return options;
}

const robust::StageQueueSummary* find_stage(const RunResult& result,
                                            const std::string& name) {
  for (const robust::StageQueueSummary& row : result.robust.stages) {
    if (row.stage == name) {
      return &row;
    }
  }
  return nullptr;
}

TEST(StreamOptionsTest, ValidateRejectsBadKnobs) {
  StreamOptions options;
  options.stage_threads = 0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = StreamOptions{};
  options.queue_capacity = 1;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = StreamOptions{};
  options.faults.push_back({"", 1, StageFaultSpec::Kind::kStall, 1.0});
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = StreamOptions{};
  options.faults.push_back({"track", 0, StageFaultSpec::Kind::kCrash, 1.0});
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = StreamOptions{};
  options.drain_timeout_sec = 0.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = StreamOptions{};
  options.drain_timeout_sec = -1.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  EXPECT_NO_THROW(StreamOptions{}.validate());
}

TEST(StreamOptionsTest, ModeAndPolicyNames) {
  EXPECT_STREQ(scheduler_mode_name(SchedulerMode::kVirtualTime), "virtual");
  EXPECT_STREQ(scheduler_mode_name(SchedulerMode::kThreaded), "threaded");
  EXPECT_STREQ(queue_full_policy_name(QueueFullPolicy::kBlock), "block");
  EXPECT_STREQ(queue_full_policy_name(QueueFullPolicy::kShedOldest),
               "shed_oldest");
  EXPECT_STREQ(queue_full_policy_name(QueueFullPolicy::kDegrade), "degrade");
}

// The checkpoint topology fingerprint: empty in virtual-time mode (batch
// snapshots keep their historical shape) and a stable label in threaded
// mode.  Changing this string invalidates every threaded snapshot in the
// field, so pin it.
TEST(StreamOptionsTest, FingerprintLabelsThreadedTopologyOnly) {
  StreamOptions options;
  EXPECT_EQ(options.fingerprint(), "");
  options.mode = SchedulerMode::kThreaded;
  options.stage_threads = 3;
  options.queue_capacity = 16;
  options.policy = QueueFullPolicy::kShedOldest;
  EXPECT_EQ(options.fingerprint(),
            "threaded/workers=3/cap=16/policy=shed_oldest");
}

// The determinism contract: the virtual-time scheduler IS the batch loop.
// Same store, config, and input must reproduce the batch run bit for bit —
// P_A trajectory, timings, call counts, and the alarm.
TEST(Stream, VirtualTimeModeIsBitIdenticalToBatchLoop) {
  const synth::Recording input = seizure_input(11, 25.0, 20.0);

  PipelineOptions options;
  options.robust.enabled = true;
  EmapPipeline batch(testing::small_mdb(6), EmapConfig{}, options);
  const RunResult expected = batch.run(input);

  EmapPipeline engine(testing::small_mdb(6), EmapConfig{}, options);
  StreamPipeline stream(engine);  // default StreamOptions: kVirtualTime
  const RunResult actual = stream.run(input);

  ASSERT_EQ(actual.iterations.size(), expected.iterations.size());
  for (std::size_t i = 0; i < expected.iterations.size(); ++i) {
    const IterationRecord& a = actual.iterations[i];
    const IterationRecord& b = expected.iterations[i];
    EXPECT_EQ(a.window_index, b.window_index) << "window " << i;
    EXPECT_EQ(a.anomaly_probability, b.anomaly_probability) << "window " << i;
    EXPECT_EQ(a.tracked, b.tracked) << "window " << i;
    EXPECT_EQ(a.set_loaded, b.set_loaded) << "window " << i;
    EXPECT_EQ(a.cloud_call_issued, b.cloud_call_issued) << "window " << i;
    EXPECT_EQ(a.track_device_sec, b.track_device_sec) << "window " << i;
  }
  EXPECT_EQ(actual.cloud_calls, expected.cloud_calls);
  EXPECT_EQ(actual.retry_attempts, expected.retry_attempts);
  EXPECT_EQ(actual.anomaly_predicted, expected.anomaly_predicted);
  EXPECT_EQ(actual.first_alarm_sec, expected.first_alarm_sec);
  EXPECT_EQ(actual.timings.delta_initial_sec,
            expected.timings.delta_initial_sec);
  EXPECT_EQ(actual.timings.mean_track_sec, expected.timings.mean_track_sec);
  EXPECT_FALSE(actual.robust.streamed);
}

// Threaded clean run: every window flows through the whole stage graph
// exactly once and in order, the cloud loop closes, and the summary carries
// the per-stage supervision + queue columns.
TEST(Stream, ThreadedCleanRunProcessesEveryWindowInOrder) {
  const synth::Recording input = seizure_input(11, 25.0, 20.0);

  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.robust.enabled = true;
  options.metrics = &registry;
  EmapPipeline engine(testing::small_mdb(6), EmapConfig{}, options);
  StreamPipeline stream(engine, threaded_options());
  const RunResult result = stream.run(input);

  ASSERT_EQ(result.iterations.size(), 25u);
  bool any_loaded = false;
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    EXPECT_EQ(result.iterations[i].window_index, i);
    any_loaded |= result.iterations[i].set_loaded;
  }
  EXPECT_TRUE(any_loaded);
  EXPECT_GE(result.cloud_calls, 1u);

  EXPECT_TRUE(result.robust.streamed);
  EXPECT_EQ(result.robust.supervisor_stalls, 0u);
  EXPECT_EQ(result.robust.supervisor_restarts, 0u);
  EXPECT_EQ(result.robust.supervisor_crashes, 0u);

  // Per-stage rows: every supervised stage plus one q_ row per queue.
  for (const char* stage :
       {"acquire", "filter", "track", "predict", "uplink0", "uplink1"}) {
    const robust::StageQueueSummary* row = find_stage(result, stage);
    ASSERT_NE(row, nullptr) << stage;
    EXPECT_FALSE(row->failed) << stage;
  }
  for (const char* queue :
       {"q_raw", "q_filtered", "q_uplink", "q_deliver", "q_outcome"}) {
    const robust::StageQueueSummary* row = find_stage(result, queue);
    ASSERT_NE(row, nullptr) << queue;
    EXPECT_GE(row->queue_capacity, 2u) << queue;
    EXPECT_LE(row->queue_max_depth, row->queue_capacity) << queue;
  }
  const robust::StageQueueSummary* track = find_stage(result, "track");
  ASSERT_NE(track, nullptr);
  EXPECT_EQ(track->processed, 25u);

  // Queue occupancy is exported as telemetry.
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_stage_queue_depth"), std::string::npos);
}

// An injected crash in the track stage loses at most its in-flight window:
// the supervisor restarts the body, per-stage state survives (same tracker,
// same outstanding-call accounting), and the run completes.
TEST(Stream, ThreadedTrackStageCrashIsRecovered) {
  const synth::Recording input = seizure_input(11, 25.0, 20.0);

  PipelineOptions options;
  options.robust.enabled = true;
  EmapPipeline engine(testing::small_mdb(6), EmapConfig{}, options);
  StreamOptions stream_options = threaded_options();
  stream_options.faults.push_back(
      {"track", 3, StageFaultSpec::Kind::kCrash, 1.0});
  StreamPipeline stream(engine, stream_options);
  const RunResult result = stream.run(input);

  EXPECT_GE(result.robust.supervisor_crashes, 1u);
  EXPECT_GE(result.robust.supervisor_restarts, 1u);
  const robust::StageQueueSummary* track = find_stage(result, "track");
  ASSERT_NE(track, nullptr);
  EXPECT_GE(track->crashes, 1u);
  EXPECT_FALSE(track->failed);

  // Exactly the window in flight at the crash is lost; order and
  // uniqueness of everything else survive the restart.
  ASSERT_EQ(result.iterations.size(), 24u);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_GT(result.iterations[i].window_index,
              result.iterations[i - 1].window_index);
  }
}

// An injected stall (busy loop, no heartbeats) is detected by wall-clock
// supervision, aborted, and the stage restarted; backpressured neighbors
// (blocked on the full/empty queues around the stalled stage) are idle by
// contract and must not be misdiagnosed as stalled themselves.
TEST(Stream, ThreadedFilterStallIsDetectedAndRecovered) {
  const synth::Recording input = seizure_input(11, 25.0, 20.0);

  PipelineOptions options;
  options.robust.enabled = true;
  EmapPipeline engine(testing::small_mdb(6), EmapConfig{}, options);
  StreamOptions stream_options = threaded_options();
  stream_options.faults.push_back(
      {"filter", 3, StageFaultSpec::Kind::kStall, 5.0});
  StreamPipeline stream(engine, stream_options);
  const RunResult result = stream.run(input);

  EXPECT_GE(result.robust.supervisor_stalls, 1u);
  EXPECT_GE(result.robust.supervisor_restarts, 1u);
  EXPECT_EQ(result.robust.supervisor_crashes, 0u);
  const robust::StageQueueSummary* filter = find_stage(result, "filter");
  ASSERT_NE(filter, nullptr);
  EXPECT_GE(filter->stalls, 1u);
  EXPECT_FALSE(filter->failed);
  for (const char* stage : {"acquire", "track", "predict"}) {
    const robust::StageQueueSummary* row = find_stage(result, stage);
    ASSERT_NE(row, nullptr) << stage;
    EXPECT_EQ(row->stalls, 0u) << stage;
  }
  // The stalled window is dropped on restart; the rest flow through.
  EXPECT_GE(result.iterations.size(), 24u);
}

// Satellite regression: a watchdog trip that forces CRITICAL must latch a
// flight dump (historically only crash points, SLO burn pages, and breaker
// opens did).  The dump lands last in its window, so the file's header
// names the watchdog even when the stuck step also paged the edge SLO.
TEST(Stream, WatchdogForcedCriticalTriggersFlightDump) {
  testing::TempDir dir("stream_flight");
  const std::filesystem::path dump_path = dir.path() / "flight.jsonl";
  obs::FlightRecorder flight(256);
  flight.set_dump_path(dump_path);

  PipelineOptions options;
  options.robust.enabled = true;
  options.flight = &flight;
  sim::DeviceProfile glacial = sim::edge_raspberry_pi();
  glacial.name = "glacial";
  glacial.mac_ops_per_sec /= 1000.0;
  glacial.abs_ops_per_sec /= 1000.0;
  glacial.per_signal_overhead_sec *= 1000.0;
  options.edge_device = glacial;
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const RunResult result = pipeline.run(seizure_input(11, 25.0, 20.0));

  ASSERT_GE(result.robust.watchdog_trips, 1u);
  EXPECT_GE(flight.dumps_written(), 1u);
  ASSERT_TRUE(std::filesystem::exists(dump_path));
  std::ifstream in(dump_path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"flight_dump\":\"watchdog_critical\""),
            std::string::npos)
      << header;
}

}  // namespace
}  // namespace emap::core
