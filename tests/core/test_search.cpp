#include "emap/core/search.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/xcorr.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

// A store with one planted match: the probe is embedded (scaled) at offset
// 0 of set #3 — offset 0 is on every exponential-window probe grid, so
// Algorithm 1 is guaranteed to evaluate it.  (At an arbitrary offset the
// sliding window may legitimately skip a periodic pattern when a probe
// lands anti-phase; the exhaustive baseline covers that case.)
struct PlantedFixture {
  mdb::MdbStore store;
  std::vector<double> probe;
  static constexpr std::size_t kPlantedIndex = 3;
  static constexpr std::size_t kPlantedOffset = 0;

  PlantedFixture() {
    probe = testing::sine(19.0, 256.0, 256, 5.0);
    for (double& v : probe) {
      v += 0.1;
    }
    for (std::size_t i = 0; i < 8; ++i) {
      mdb::SignalSet set;
      set.samples = testing::noise(1000 + i, mdb::kSignalSetLength, 5.0);
      set.anomalous = (i % 2 == 1);
      set.source = "fixture";
      if (i == kPlantedIndex) {
        for (std::size_t k = 0; k < probe.size(); ++k) {
          set.samples[kPlantedOffset + k] = 1.3 * probe[k] + 0.7;
        }
      }
      store.insert(std::move(set));
    }
  }
};

TEST(SkipForOmega, PaperValuesAtAlpha0004) {
  const EmapConfig config;  // alpha = 0.004
  CrossCorrelationSearch search(config);
  // omega = 1 -> alpha^0 = 1 (finest step).
  EXPECT_EQ(search.skip_for_omega(1.0), 1u);
  // omega = 0 -> alpha^-1 = 250 (coarsest step).
  EXPECT_EQ(search.skip_for_omega(0.0), 250u);
  // Negative omegas are clamped to zero first (Algorithm 1 lines 9-11).
  EXPECT_EQ(search.skip_for_omega(-0.7), 250u);
  // Mid correlation: 0.004^(-0.2) ~ 3.
  EXPECT_EQ(search.skip_for_omega(0.8), 3u);
}

TEST(SkipForOmega, MonotoneDecreasingInOmega) {
  CrossCorrelationSearch search{EmapConfig{}};
  std::size_t previous = SIZE_MAX;
  for (double omega = 0.0; omega <= 1.0; omega += 0.05) {
    const std::size_t skip = search.skip_for_omega(omega);
    EXPECT_LE(skip, previous);
    previous = skip;
  }
}

TEST(SkipForOmega, RespectsMaxSkipClamp) {
  EmapConfig config;
  config.alpha = 0.0001;
  config.max_skip = 100;
  CrossCorrelationSearch search(config);
  EXPECT_EQ(search.skip_for_omega(0.0), 100u);
}

TEST(Search, FindsPlantedMatchAtCorrectOffset) {
  PlantedFixture fixture;
  CrossCorrelationSearch search{EmapConfig{}};
  const auto result = search.search(fixture.probe, fixture.store);
  ASSERT_FALSE(result.matches.empty());
  const auto& best = result.matches.front();
  EXPECT_EQ(best.store_index, PlantedFixture::kPlantedIndex);
  EXPECT_EQ(best.beta, PlantedFixture::kPlantedOffset);
  EXPECT_GT(best.omega, 0.95);
}

TEST(Search, MatchCarriesLabelAndId) {
  PlantedFixture fixture;
  CrossCorrelationSearch search{EmapConfig{}};
  const auto result = search.search(fixture.probe, fixture.store);
  ASSERT_FALSE(result.matches.empty());
  const auto& best = result.matches.front();
  const auto& planted = fixture.store.at(PlantedFixture::kPlantedIndex);
  EXPECT_EQ(best.set_id, planted.id);
  EXPECT_EQ(best.anomalous, planted.anomalous);
}

TEST(Search, ResultsSortedDescendingByOmega) {
  PlantedFixture fixture;
  EmapConfig config;
  config.delta = 0.0;  // accept everything to exercise ordering
  CrossCorrelationSearch search(config);
  const auto result = search.search(fixture.probe, fixture.store);
  for (std::size_t i = 1; i < result.matches.size(); ++i) {
    EXPECT_GE(result.matches[i - 1].omega, result.matches[i].omega);
  }
}

TEST(Search, TopKLimitRespected) {
  PlantedFixture fixture;
  EmapConfig config;
  config.delta = -0.99;
  config.top_k = 5;
  CrossCorrelationSearch search(config);
  const auto result = search.search(fixture.probe, fixture.store);
  EXPECT_LE(result.matches.size(), 5u);
}

TEST(Search, StatsAccountEvaluations) {
  PlantedFixture fixture;
  CrossCorrelationSearch search{EmapConfig{}};
  const auto result = search.search(fixture.probe, fixture.store);
  EXPECT_GT(result.stats.correlation_evals, 0u);
  EXPECT_EQ(result.stats.mac_ops, result.stats.correlation_evals * 256u);
  EXPECT_EQ(result.stats.sets_scanned, fixture.store.size());
  EXPECT_GE(result.stats.candidates, result.matches.size());
}

TEST(Search, ParallelMatchesSerial) {
  PlantedFixture fixture;
  EmapConfig config;
  config.delta = 0.3;
  ThreadPool pool(4);
  CrossCorrelationSearch serial(config, nullptr);
  CrossCorrelationSearch parallel(config, &pool);
  const auto a = serial.search(fixture.probe, fixture.store);
  const auto b = parallel.search(fixture.probe, fixture.store);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].set_id, b.matches[i].set_id);
    EXPECT_EQ(a.matches[i].beta, b.matches[i].beta);
    EXPECT_DOUBLE_EQ(a.matches[i].omega, b.matches[i].omega);
  }
  EXPECT_EQ(a.stats.correlation_evals, b.stats.correlation_evals);
}

TEST(Search, EmptyStoreGivesEmptyResult) {
  mdb::MdbStore store;
  CrossCorrelationSearch search{EmapConfig{}};
  const auto probe = testing::noise(1, 256);
  const auto result = search.search(probe, store);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.stats.correlation_evals, 0u);
}

TEST(Search, RejectsWrongWindowLength) {
  mdb::MdbStore store;
  CrossCorrelationSearch search{EmapConfig{}};
  EXPECT_THROW(search.search(testing::noise(1, 100), store),
               InvalidArgument);
}

TEST(Search, HigherAlphaEvaluatesMoreOffsets) {
  // Fig. 7a mechanism: larger alpha -> smaller skips -> more evaluations.
  PlantedFixture fixture;
  EmapConfig coarse;
  coarse.alpha = 0.0008;
  EmapConfig fine;
  fine.alpha = 0.015;
  const auto r_coarse =
      CrossCorrelationSearch(coarse).search(fixture.probe, fixture.store);
  const auto r_fine =
      CrossCorrelationSearch(fine).search(fixture.probe, fixture.store);
  EXPECT_GT(r_fine.stats.correlation_evals,
            r_coarse.stats.correlation_evals);
}

TEST(SelectTopK, TieBreaksAreDeterministic) {
  std::vector<SearchMatch> candidates;
  for (std::uint64_t id : {5, 3, 9}) {
    SearchMatch match;
    match.omega = 0.9;
    match.set_id = id;
    candidates.push_back(match);
  }
  const auto top = select_top_k(candidates, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].set_id, 3u);
  EXPECT_EQ(top[1].set_id, 5u);
}

TEST(Search, DegenerateConstantSetNeverMatches) {
  mdb::MdbStore store;
  mdb::SignalSet flat;
  flat.samples.assign(mdb::kSignalSetLength, 3.0);
  store.insert(std::move(flat));
  CrossCorrelationSearch search{EmapConfig{}};
  const auto probe = testing::noise(2, 256);
  const auto result = search.search(probe, store);
  EXPECT_TRUE(result.matches.empty());
}

}  // namespace
}  // namespace emap::core
