#include "emap/synth/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "emap/common/error.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/dsp/stats.hpp"
#include "emap/dsp/xcorr.hpp"

namespace emap::synth {
namespace {

RecordingSpec base_spec(AnomalyClass cls) {
  RecordingSpec spec;
  spec.cls = cls;
  spec.duration_sec = 30.0;
  spec.onset_sec = 25.0;
  spec.seed = 7;
  return spec;
}

TEST(Generator, DeterministicForSameSpec) {
  RecordingGenerator gen;
  const auto spec = base_spec(AnomalyClass::kSeizure);
  const auto a = gen.generate(spec);
  const auto b = gen.generate(spec);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Generator, DifferentSeedsDiffer) {
  RecordingGenerator gen;
  auto spec = base_spec(AnomalyClass::kNormal);
  const auto a = gen.generate(spec);
  spec.seed = 8;
  const auto b = gen.generate(spec);
  EXPECT_NE(a.samples, b.samples);
}

TEST(Generator, SampleCountMatchesDurationAndRate) {
  RecordingGenerator gen;
  auto spec = base_spec(AnomalyClass::kNormal);
  spec.fs = 173.61;
  const auto recording = gen.generate(spec);
  EXPECT_EQ(recording.samples.size(),
            static_cast<std::size_t>(std::llround(30.0 * 173.61)));
  EXPECT_DOUBLE_EQ(recording.fs(), 173.61);
  EXPECT_NEAR(recording.duration_sec(), 30.0, 0.01);
}

TEST(Generator, RejectsBadSpecs) {
  RecordingGenerator gen;
  auto spec = base_spec(AnomalyClass::kNormal);
  spec.fs = 0.0;
  EXPECT_THROW(gen.generate(spec), InvalidArgument);
  spec = base_spec(AnomalyClass::kNormal);
  spec.duration_sec = 0.0;
  EXPECT_THROW(gen.generate(spec), InvalidArgument);
}

TEST(Generator, NormalRecordingIsFullyNormal) {
  RecordingGenerator gen;
  const auto recording = gen.generate(base_spec(AnomalyClass::kNormal));
  EXPECT_FALSE(recording.anomalous_at(0.0));
  EXPECT_FALSE(recording.anomalous_at(15.0));
  EXPECT_FALSE(recording.anomalous_at(29.9));
  ASSERT_EQ(recording.annotations.size(), 1u);
  EXPECT_FALSE(recording.annotations[0].anomalous);
}

TEST(Generator, PreciseAnnotationsCoverPreictalWindow) {
  RecordingGenerator gen;
  RecordingSpec spec = base_spec(AnomalyClass::kSeizure);
  spec.duration_sec = 300.0;
  spec.onset_sec = 250.0;
  spec.preictal_label_sec = 60.0;
  const auto recording = gen.generate(spec);
  EXPECT_FALSE(recording.anomalous_at(100.0));
  EXPECT_TRUE(recording.anomalous_at(195.0));   // inside pre-ictal window
  EXPECT_TRUE(recording.anomalous_at(270.0));   // ictal
}

TEST(Generator, WholeSignalLabelCoversEverything) {
  RecordingGenerator gen;
  RecordingSpec spec = base_spec(AnomalyClass::kStroke);
  spec.whole_signal_label = true;
  const auto recording = gen.generate(spec);
  EXPECT_TRUE(recording.anomalous_at(0.0));
  EXPECT_TRUE(recording.anomalous_at(29.0));
}

TEST(Generator, ProdromeDisplacesNormalBackground) {
  // Early in an anomalous recording the waveform is normal background and
  // matches a same-archetype normal recording; near onset the morphology
  // has displaced the background and the match disappears.
  RecordingGenerator gen;
  RecordingSpec anomalous = base_spec(AnomalyClass::kSeizure);
  anomalous.duration_sec = 260.0;
  anomalous.onset_sec = 250.0;
  anomalous.archetype = 2;
  anomalous.noise_scale = 0.3;
  RecordingSpec normal = anomalous;
  normal.cls = AnomalyClass::kNormal;
  normal.seed = 1234;
  const auto sick = gen.generate(anomalous);
  const auto healthy = gen.generate(normal);

  auto best_match = [&](double t0) {
    const auto begin = static_cast<std::size_t>(t0 * 256.0);
    const std::span<const double> probe(sick.samples.data() + begin, 256);
    const std::span<const double> hay(healthy.samples.data() + begin - 1280,
                                      2560);
    const auto ncc = dsp::sliding_ncc(probe, hay);
    return *std::max_element(ncc.begin(), ncc.end());
  };
  // 20 s in: pure background (prodrome starts at 250 - 180 = 70 s).
  // 245 s in: intensity ~1, background suppressed.
  EXPECT_GT(best_match(20.0), best_match(245.0));
}

TEST(Generator, SameArchetypeInstancesCorrelateAfterBandpass) {
  // The load-bearing property of the whole reproduction: two instances of
  // the same archetype must exceed the paper's delta = 0.8 somewhere.
  RecordingGenerator gen;
  RecordingSpec spec_a = base_spec(AnomalyClass::kSeizure);
  spec_a.duration_sec = 250.0;
  spec_a.onset_sec = 230.0;
  spec_a.archetype = 1;
  RecordingSpec spec_b = spec_a;
  spec_b.seed = 99;
  const auto ra = gen.generate(spec_a);
  const auto rb = gen.generate(spec_b);
  auto fa = dsp::FirFilter::paper_bandpass();
  auto fb = dsp::FirFilter::paper_bandpass();
  const auto sa = fa.apply(ra.samples);
  const auto sb = fb.apply(rb.samples);
  // Window of a at 10 s before onset vs a +/-5 s region of b.
  const std::span<const double> probe(sa.data() + 220 * 256, 256);
  const std::span<const double> hay(sb.data() + 215 * 256, 10 * 256);
  const auto ncc = dsp::sliding_ncc(probe, hay);
  const double best = *std::max_element(ncc.begin(), ncc.end());
  EXPECT_GT(best, 0.8);
}

TEST(Generator, LabelOutsideRecordingIsFalse) {
  RecordingGenerator gen;
  const auto recording = gen.generate(base_spec(AnomalyClass::kNormal));
  EXPECT_FALSE(recording.anomalous_at(-1.0));
  EXPECT_FALSE(recording.anomalous_at(1000.0));
}

}  // namespace
}  // namespace emap::synth
