#include "emap/synth/anomaly.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::synth {
namespace {

TEST(AnomalyNames, RoundTrip) {
  for (AnomalyClass cls :
       {AnomalyClass::kNormal, AnomalyClass::kSeizure,
        AnomalyClass::kEncephalopathy, AnomalyClass::kStroke}) {
    EXPECT_EQ(anomaly_from_name(anomaly_name(cls)), cls);
  }
}

TEST(AnomalyNames, RejectsUnknown) {
  EXPECT_THROW(anomaly_from_name("migraine"), InvalidArgument);
}

TEST(Morphology, RejectsNormalClass) {
  EXPECT_THROW(Morphology(AnomalyClass::kNormal, 0), InvalidArgument);
}

TEST(Morphology, ArchetypeWrapsAround) {
  Morphology m(AnomalyClass::kSeizure, kArchetypesPerClass + 1);
  EXPECT_EQ(m.archetype(), 1u);
}

class MorphologyClassTest : public ::testing::TestWithParam<AnomalyClass> {};

TEST_P(MorphologyClassTest, IntensityIsMonotoneRampTo1) {
  Morphology m(GetParam(), 0);
  EXPECT_DOUBLE_EQ(m.intensity(-Morphology::kProdromeSeconds - 1.0), 0.0);
  double previous = -1.0;
  for (double t = -Morphology::kProdromeSeconds; t <= 5.0; t += 5.0) {
    const double value = m.intensity(t);
    EXPECT_GE(value, previous - 1e-12);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    previous = value;
  }
  EXPECT_DOUBLE_EQ(m.intensity(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.intensity(100.0), 1.0);
}

TEST_P(MorphologyClassTest, EarlySignatureVisibleAt120sLead) {
  // The Fig. 10 lead-time sweep needs a detectable signature 120 s before
  // onset; the two-phase ramp puts intensity well above 0.4 there.
  Morphology m(GetParam(), 0);
  EXPECT_GT(m.intensity(-120.0), 0.4);
}

TEST_P(MorphologyClassTest, BackgroundGainDecreasesWithProgression) {
  Morphology m(GetParam(), 0);
  EXPECT_GT(m.background_gain(-Morphology::kProdromeSeconds),
            m.background_gain(0.0));
  EXPECT_GE(m.background_gain(0.0), 0.1);
}

TEST_P(MorphologyClassTest, ValueIsDeterministic) {
  Morphology a(GetParam(), 2);
  Morphology b(GetParam(), 2);
  for (double t : {-100.0, -10.0, 0.0, 5.0}) {
    EXPECT_DOUBLE_EQ(a.value(t), b.value(t));
  }
}

TEST_P(MorphologyClassTest, ArchetypesProduceDistinctWaveforms) {
  Morphology a(GetParam(), 0);
  Morphology b(GetParam(), 1);
  double max_diff = 0.0;
  for (int i = 0; i < 512; ++i) {
    const double t = -20.0 + i / 256.0;
    max_diff = std::max(max_diff, std::abs(a.value(t) - b.value(t)));
  }
  EXPECT_GT(max_diff, 0.3);
}

TEST_P(MorphologyClassTest, WaveformIsBounded) {
  Morphology m(GetParam(), 0);
  for (int i = 0; i < 4096; ++i) {
    const double t = -180.0 + i * 0.05;
    EXPECT_LT(std::abs(m.value(t)), 10.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, MorphologyClassTest,
                         ::testing::ValuesIn(kAnomalyClasses),
                         [](const auto& info) {
                           return anomaly_name(info.param);
                         });

TEST(Morphology, SeizureIctalContainsSpikes) {
  Morphology m(AnomalyClass::kSeizure, 0);
  // Post-onset peak (spike-wave) clearly exceeds pre-onset rhythm peak.
  double pre_peak = 0.0;
  double post_peak = 0.0;
  for (int i = 0; i < 2048; ++i) {
    pre_peak = std::max(pre_peak, std::abs(m.value(-30.0 + i / 256.0)));
    post_peak = std::max(post_peak, std::abs(m.value(10.0 + i / 256.0)));
  }
  EXPECT_GT(post_peak, 1.5 * pre_peak);
}

TEST(Morphology, EncephalopathyHasBurstSuppression) {
  Morphology m(AnomalyClass::kEncephalopathy, 0);
  // RMS over sliding 0.5 s windows should alternate strongly (gating).
  std::vector<double> window_rms;
  for (int w = 0; w < 20; ++w) {
    std::vector<double> window;
    for (int i = 0; i < 128; ++i) {
      window.push_back(m.value(w * 0.5 + i / 256.0));
    }
    window_rms.push_back(dsp::rms(window));
  }
  const double max_rms = *std::max_element(window_rms.begin(),
                                           window_rms.end());
  const double min_rms = *std::min_element(window_rms.begin(),
                                           window_rms.end());
  EXPECT_GT(max_rms, 2.0 * min_rms);
}

TEST(Morphology, StrokeAttenuatesAfterOnset) {
  Morphology m(AnomalyClass::kStroke, 0);
  auto rms_at = [&m](double t0) {
    std::vector<double> window;
    for (int i = 0; i < 1024; ++i) {
      window.push_back(m.value(t0 + i / 256.0));
    }
    return dsp::rms(window);
  };
  EXPECT_GT(rms_at(-10.0), rms_at(60.0));
}

}  // namespace
}  // namespace emap::synth
