#include "emap/synth/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

namespace emap::synth {
namespace {

TEST(Corpus, FiveStandardCorpora) {
  const auto corpora = standard_corpora(10);
  ASSERT_EQ(corpora.size(), 5u);
  std::set<std::string> names;
  std::set<double> rates;
  for (const auto& corpus : corpora) {
    names.insert(corpus.name);
    rates.insert(corpus.native_fs_hz);
    EXPECT_EQ(corpus.recording_count, 10u);
  }
  EXPECT_EQ(names.size(), 5u) << "corpus names must be distinct";
  EXPECT_EQ(rates.size(), 5u) << "native rates must be distinct (the paper "
                                 "resamples five different rates)";
}

TEST(Corpus, SeizureCorporaArePreciselyAnnotated) {
  for (const auto& corpus : standard_corpora(10)) {
    if (corpus.name == "physionet-chbmit" || corpus.name == "uci-epilepsy") {
      EXPECT_TRUE(corpus.precise_annotations);
      EXPECT_GT(corpus.seizure_fraction, 0.0);
    }
  }
}

TEST(Corpus, GenerateRespectsClassMix) {
  CorpusSpec spec;
  spec.name = "test";
  spec.recording_count = 20;
  spec.recording_duration_sec = 10.0;
  spec.seizure_fraction = 0.25;
  spec.stroke_fraction = 0.25;
  spec.seed = 5;
  const auto recordings = generate_corpus(spec);
  ASSERT_EQ(recordings.size(), 20u);
  std::size_t seizures = 0;
  std::size_t strokes = 0;
  std::size_t normals = 0;
  for (const auto& r : recordings) {
    switch (r.spec.cls) {
      case AnomalyClass::kSeizure: ++seizures; break;
      case AnomalyClass::kStroke: ++strokes; break;
      case AnomalyClass::kNormal: ++normals; break;
      default: break;
    }
  }
  EXPECT_EQ(seizures, 5u);
  EXPECT_EQ(strokes, 5u);
  EXPECT_EQ(normals, 10u);
}

TEST(Corpus, GenerateIsDeterministic) {
  const auto corpora = standard_corpora(3);
  const auto a = generate_corpus(corpora[0]);
  const auto b = generate_corpus(corpora[0]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].samples, b[i].samples);
  }
}

TEST(Corpus, WholeSignalLabelsOnlyOnImpreciseCorpora) {
  for (const auto& corpus : standard_corpora(8)) {
    for (const auto& recording : generate_corpus(corpus)) {
      if (recording.spec.cls == AnomalyClass::kNormal) {
        EXPECT_FALSE(recording.spec.whole_signal_label);
      } else {
        EXPECT_EQ(recording.spec.whole_signal_label,
                  !corpus.precise_annotations);
      }
    }
  }
}

TEST(Corpus, NativeRatesPropagate) {
  for (const auto& corpus : standard_corpora(2)) {
    for (const auto& recording : generate_corpus(corpus)) {
      EXPECT_DOUBLE_EQ(recording.fs(), corpus.native_fs_hz);
    }
  }
}

TEST(Corpus, ClassVariabilityDegradesEncephalopathyAndStroke) {
  const auto seizure = class_variability(AnomalyClass::kSeizure);
  const auto enceph = class_variability(AnomalyClass::kEncephalopathy);
  const auto stroke = class_variability(AnomalyClass::kStroke);
  EXPECT_GT(enceph.dilation_jitter_multiplier,
            seizure.dilation_jitter_multiplier);
  EXPECT_GT(stroke.dilation_jitter_multiplier,
            seizure.dilation_jitter_multiplier);
  EXPECT_LT(enceph.covered_archetypes, kArchetypesPerClass);
  EXPECT_LT(stroke.covered_archetypes, kArchetypesPerClass);
  EXPECT_EQ(seizure.covered_archetypes, kArchetypesPerClass);
}

TEST(Corpus, AnomalousRecordingsOnlyUseCoveredArchetypes) {
  for (const auto& corpus : standard_corpora(16)) {
    for (const auto& recording : generate_corpus(corpus)) {
      if (recording.spec.cls == AnomalyClass::kNormal) {
        continue;
      }
      const auto covered =
          class_variability(recording.spec.cls).covered_archetypes;
      EXPECT_LT(recording.spec.archetype, covered);
    }
  }
}

TEST(Corpus, EvalInputIsDeterministicPerSeed) {
  EvalInputSpec spec;
  spec.cls = AnomalyClass::kSeizure;
  spec.seed = 3;
  spec.duration_sec = 20.0;
  spec.onset_sec = 15.0;
  const auto a = make_eval_input(spec);
  const auto b = make_eval_input(spec);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Corpus, EvalInputsAtBaseRate) {
  EvalInputSpec spec;
  spec.duration_sec = 10.0;
  spec.onset_sec = 8.0;
  const auto input = make_eval_input(spec);
  EXPECT_DOUBLE_EQ(input.fs(), 256.0);
  EXPECT_EQ(input.samples.size(), 2560u);
}

TEST(Corpus, EvalInputsDrawFromAllArchetypes) {
  std::set<std::uint32_t> archetypes;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    EvalInputSpec spec;
    spec.cls = AnomalyClass::kEncephalopathy;
    spec.seed = seed;
    spec.duration_sec = 2.0;
    spec.onset_sec = 1.0;
    archetypes.insert(make_eval_input(spec).spec.archetype);
  }
  // Evaluation draws from the full phenotype space, including archetypes
  // the corpora do not cover (the Table I degradation mechanism).
  EXPECT_EQ(archetypes.size(), kArchetypesPerClass);
}

}  // namespace
}  // namespace emap::synth
