#include "emap/synth/artifacts.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::synth {
namespace {

Recording clean_recording(std::uint64_t seed, double duration = 60.0) {
  RecordingGenerator gen;
  RecordingSpec spec;
  spec.cls = AnomalyClass::kNormal;
  spec.duration_sec = duration;
  spec.seed = seed;
  return gen.generate(spec);
}

TEST(Artifacts, DeterministicGivenConfig) {
  ArtifactInjector injector;
  const auto a = injector.render(1000, 256.0);
  const auto b = injector.render(1000, 256.0);
  EXPECT_EQ(a, b);
}

TEST(Artifacts, ZeroRatesProduceSilence) {
  ArtifactConfig config;
  config.blink_rate_per_min = 0.0;
  config.emg_rate_per_min = 0.0;
  config.pop_rate_per_min = 0.0;
  ArtifactInjector injector(config);
  for (double v : injector.render(1000, 256.0)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Artifacts, RejectsNegativeRates) {
  ArtifactConfig config;
  config.blink_rate_per_min = -1.0;
  EXPECT_THROW(ArtifactInjector{config}, InvalidArgument);
}

TEST(Artifacts, BlinksAreLowFrequencyAndLarge) {
  ArtifactConfig config;
  config.emg_rate_per_min = 0.0;
  config.pop_rate_per_min = 0.0;
  config.blink_rate_per_min = 20.0;
  ArtifactInjector injector(config);
  const auto artifact = injector.render(256 * 60, 256.0);
  EXPECT_GT(dsp::peak_abs(artifact), 20.0);
  const double low = dsp::band_power(artifact, 256.0, 0.2, 6.0);
  const double inband = dsp::band_power(artifact, 256.0, 11.0, 40.0);
  EXPECT_GT(low, 20.0 * inband);
}

TEST(Artifacts, EmgIsBroadbandReachingHighFrequencies) {
  ArtifactConfig config;
  config.blink_rate_per_min = 0.0;
  config.pop_rate_per_min = 0.0;
  config.emg_rate_per_min = 30.0;
  ArtifactInjector injector(config);
  const auto artifact = injector.render(256 * 60, 256.0);
  EXPECT_GT(dsp::band_power(artifact, 256.0, 60.0, 120.0), 0.1);
}

TEST(Artifacts, ApplyPreservesAnnotationsAndLength) {
  const auto clean = clean_recording(5);
  ArtifactInjector injector;
  const auto dirty = injector.apply(clean);
  EXPECT_EQ(dirty.samples.size(), clean.samples.size());
  ASSERT_EQ(dirty.annotations.size(), clean.annotations.size());
  EXPECT_NE(dirty.samples, clean.samples);
}

TEST(Artifacts, PaperBandpassSuppressesBlinksAndPops) {
  // The stated purpose of the 11-40 Hz filter: the out-of-band artifact
  // energy must be strongly attenuated, leaving the in-band EEG usable.
  ArtifactConfig config;
  config.emg_rate_per_min = 0.0;  // EMG is partially in-band by nature
  ArtifactInjector injector(config);
  const auto clean = clean_recording(7);
  const auto dirty = injector.apply(clean);

  auto filter = dsp::FirFilter::paper_bandpass();
  const auto filtered_dirty = filter.apply(dirty.samples);
  auto filter2 = dsp::FirFilter::paper_bandpass();
  const auto filtered_clean = filter2.apply(clean.samples);

  // After filtering, contaminated and clean differ far less than before.
  double raw_diff = 0.0;
  double filtered_diff = 0.0;
  for (std::size_t i = 500; i < clean.samples.size(); ++i) {
    raw_diff += std::abs(dirty.samples[i] - clean.samples[i]);
    filtered_diff += std::abs(filtered_dirty[i] - filtered_clean[i]);
  }
  EXPECT_LT(filtered_diff, 0.25 * raw_diff);
}

}  // namespace
}  // namespace emap::synth
