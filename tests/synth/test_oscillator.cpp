#include "emap/synth/oscillator.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::synth {
namespace {

TEST(Tone, PureSineValue) {
  ToneSpec tone;
  tone.freq_hz = 1.0;
  tone.amp = 2.0;
  tone.phase = 0.0;
  EXPECT_NEAR(tone_value(tone, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(tone_value(tone, 0.25), 2.0, 1e-12);
}

TEST(Tone, DeterministicInAbsoluteTime) {
  ToneSpec tone;
  tone.freq_hz = 13.7;
  tone.drift_hz_per_s = 0.01;
  tone.am_freq_hz = 0.2;
  tone.am_depth = 0.5;
  EXPECT_DOUBLE_EQ(tone_value(tone, 12.345), tone_value(tone, 12.345));
}

TEST(Tone, ChirpFrequencyDrifts) {
  ToneSpec tone;
  tone.freq_hz = 20.0;
  tone.drift_hz_per_s = 1.0;
  // Render two windows 10 s apart; dominant frequency should shift ~10 Hz.
  const auto early = render_tone_bank(std::vector<ToneSpec>{tone}, 0.0,
                                      256.0, 1024);
  const auto late = render_tone_bank(std::vector<ToneSpec>{tone}, 10.0,
                                     256.0, 1024);
  auto dominant = [](const std::vector<double>& x) {
    const auto p = dsp::power_spectrum(x);
    std::size_t argmax = 1;
    for (std::size_t k = 1; k < p.size(); ++k) {
      if (p[k] > p[argmax]) argmax = k;
    }
    return static_cast<double>(argmax) * 256.0 / 1024.0;
  };
  EXPECT_NEAR(dominant(early), 22.0, 1.5);   // f0 + k*t across the window
  EXPECT_NEAR(dominant(late), 32.0, 1.5);
}

TEST(Tone, AmplitudeModulationBoundsEnvelope) {
  ToneSpec tone;
  tone.freq_hz = 16.0;
  tone.amp = 1.0;
  tone.am_freq_hz = 0.5;
  tone.am_depth = 0.6;
  const auto x = render_tone_bank(std::vector<ToneSpec>{tone}, 0.0, 256.0,
                                  2048);
  EXPECT_LE(dsp::peak_abs(x), 1.0 + 1e-9);
  EXPECT_GT(dsp::peak_abs(x), 0.9);
}

TEST(ToneBank, SumsComponents) {
  ToneSpec a;
  a.freq_hz = 5.0;
  ToneSpec b;
  b.freq_hz = 11.0;
  const std::vector<ToneSpec> bank = {a, b};
  const double t = 0.123;
  EXPECT_NEAR(tone_bank_value(bank, t),
              tone_value(a, t) + tone_value(b, t), 1e-12);
}

TEST(RenderToneBank, RejectsBadRate) {
  EXPECT_THROW(render_tone_bank({}, 0.0, 0.0, 10), InvalidArgument);
}

TEST(SpikeWave, PeriodicInRate) {
  SpikeWaveSpec spec;
  spec.rate_hz = 3.0;
  const double period = 1.0 / 3.0;
  for (double t : {0.05, 0.11, 0.21, 0.3}) {
    EXPECT_NEAR(spike_wave_value(spec, t),
                spike_wave_value(spec, t + 5.0 * period), 1e-9);
  }
}

TEST(SpikeWave, SpikeDominatesPeak) {
  SpikeWaveSpec spec;
  spec.rate_hz = 3.0;
  spec.spike_amp = 3.0;
  spec.wave_amp = 1.0;
  const auto x = render_spike_wave(spec, 0.0, 256.0, 512);
  EXPECT_NEAR(dsp::peak_abs(x), 3.0, 0.2);
}

TEST(SpikeWave, SlowWaveIsNegativeLobe) {
  SpikeWaveSpec spec;
  spec.rate_hz = 2.0;
  spec.spike_amp = 1.0;
  spec.wave_amp = 0.8;
  double min_value = 0.0;
  for (int i = 0; i < 256; ++i) {
    min_value = std::min(min_value,
                         spike_wave_value(spec, static_cast<double>(i) / 256.0));
  }
  EXPECT_NEAR(min_value, -0.8, 0.05);
}

TEST(SpikeWave, HasEnergyInsidePaperBand) {
  // The 3 Hz fundamental is filtered out by 11-40 Hz, but the sharp spike
  // harmonics must leak into the band — that is why ictal activity remains
  // visible after the paper's bandpass.
  SpikeWaveSpec spec;
  const auto x = render_spike_wave(spec, 0.0, 256.0, 4096);
  EXPECT_GT(dsp::band_power(x, 256.0, 11.0, 40.0), 0.001);
}

TEST(SpikeWave, RejectsNonPositiveRate) {
  SpikeWaveSpec spec;
  spec.rate_hz = 0.0;
  EXPECT_THROW(spike_wave_value(spec, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace emap::synth
