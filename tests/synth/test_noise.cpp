#include "emap/synth/noise.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/dsp/stats.hpp"

namespace emap::synth {
namespace {

TEST(WhiteNoise, MomentsMatch) {
  Rng rng(1);
  const auto x = white_noise(rng, 100000, 2.0);
  EXPECT_NEAR(dsp::mean(x), 0.0, 0.05);
  EXPECT_NEAR(dsp::stddev(x), 2.0, 0.05);
}

TEST(WhiteNoise, ZeroStddevIsSilence) {
  Rng rng(2);
  for (double v : white_noise(rng, 100, 0.0)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(WhiteNoise, RejectsNegativeStddev) {
  Rng rng(3);
  EXPECT_THROW(white_noise(rng, 10, -1.0), InvalidArgument);
}

TEST(PinkNoise, StddevApproximatelyRequested) {
  Rng rng(4);
  const auto x = pink_noise(rng, 100000, 1.5);
  EXPECT_NEAR(dsp::stddev(x), 1.5, 0.4);
}

TEST(PinkNoise, LowFrequenciesDominate) {
  Rng rng(5);
  const auto x = pink_noise(rng, 65536, 1.0);
  const double low = dsp::band_power(x, 256.0, 0.5, 8.0);
  const double high = dsp::band_power(x, 256.0, 64.0, 128.0);
  EXPECT_GT(low, 2.0 * high);
}

TEST(PinkNoise, DeterministicGivenRng) {
  Rng a(6);
  Rng b(6);
  const auto xa = pink_noise(a, 100, 1.0);
  const auto xb = pink_noise(b, 100, 1.0);
  EXPECT_EQ(xa, xb);
}

TEST(BrownNoise, BoundedVarianceWithLeak) {
  Rng rng(7);
  const auto x = brown_noise(rng, 200000, 3.0, 0.99);
  EXPECT_NEAR(dsp::stddev(x), 3.0, 0.5);
}

TEST(BrownNoise, RejectsBadLeak) {
  Rng rng(8);
  EXPECT_THROW(brown_noise(rng, 10, 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(brown_noise(rng, 10, 1.0, 1.5), InvalidArgument);
}

TEST(BrownNoise, SmootherThanWhite) {
  Rng rng(9);
  const auto brown = brown_noise(rng, 8192, 1.0, 0.99);
  Rng rng2(10);
  const auto white = white_noise(rng2, 8192, 1.0);
  // Brown noise has much lower line length per unit variance.
  EXPECT_LT(dsp::line_length(brown) / dsp::stddev(brown),
            0.5 * dsp::line_length(white) / dsp::stddev(white));
}

}  // namespace
}  // namespace emap::synth
