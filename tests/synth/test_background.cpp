#include "emap/synth/background.hpp"

#include <gtest/gtest.h>

#include "emap/dsp/fft.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/dsp/stats.hpp"
#include "emap/dsp/xcorr.hpp"

namespace emap::synth {
namespace {

TEST(Background, SameArchetypeSameRhythm) {
  const BandMix mix;
  BackgroundModel a(3, mix);
  BackgroundModel b(3, mix);
  for (double t : {0.0, 1.5, 10.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.rhythm_value(t), b.rhythm_value(t));
  }
}

TEST(Background, DifferentArchetypesDiffer) {
  const BandMix mix;
  BackgroundModel a(0, mix);
  BackgroundModel b(1, mix);
  double max_diff = 0.0;
  for (int i = 0; i < 256; ++i) {
    max_diff = std::max(max_diff,
                        std::abs(a.rhythm_value(i / 256.0) -
                                 b.rhythm_value(i / 256.0)));
  }
  EXPECT_GT(max_diff, 1.0);
}

TEST(Background, HasFiveTones) {
  BackgroundModel model(0, BandMix{});
  EXPECT_EQ(model.tones().size(), 5u);
}

TEST(Background, BetaBandDominatesAfterPaperFilter) {
  BackgroundModel model(2, BandMix{});
  Rng rng(1);
  const auto raw = model.render(0.0, 256.0, 8192, 1.0, rng);
  auto filter = dsp::FirFilter::paper_bandpass();
  const auto filtered = filter.apply(raw);
  const std::span<const double> steady(filtered.data() + 512,
                                       filtered.size() - 512);
  const double beta = dsp::band_power(steady, 256.0, 13.0, 30.0);
  const double delta = dsp::band_power(steady, 256.0, 0.5, 4.0);
  EXPECT_GT(beta, 5.0 * delta);
}

TEST(Background, FilteredRmsNearCalibrationTarget) {
  // DESIGN.md Section 5: filtered RMS ~7 scaled units so that
  // delta_A = 900 corresponds to NCC ~0.8.
  BackgroundModel model(1, BandMix{});
  Rng rng(2);
  const auto raw = model.render(0.0, 256.0, 8192, 1.0, rng);
  auto filter = dsp::FirFilter::paper_bandpass();
  const auto filtered = filter.apply(raw);
  const std::span<const double> steady(filtered.data() + 512,
                                       filtered.size() - 512);
  const double rms = dsp::rms(steady);
  EXPECT_GT(rms, 4.5);
  EXPECT_LT(rms, 10.0);
}

TEST(Background, RenderAddsInstanceNoise) {
  BackgroundModel model(0, BandMix{});
  Rng rng_a(1);
  Rng rng_b(2);
  const auto a = model.render(0.0, 256.0, 256, 1.0, rng_a);
  const auto b = model.render(0.0, 256.0, 256, 1.0, rng_b);
  // Same rhythm, different noise: highly correlated but not identical.
  EXPECT_GT(dsp::normalized_correlation(a, b), 0.8);
  EXPECT_NE(a, b);
}

TEST(Background, AmplitudeScaleIsLinearOnRhythm) {
  BackgroundModel model(0, BandMix{.noise_stddev = 0.0});
  Rng rng(3);
  Rng rng2(3);
  const auto x1 = model.render(0.0, 256.0, 128, 1.0, rng);
  const auto x2 = model.render(0.0, 256.0, 128, 2.0, rng2);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x2[i], 2.0 * x1[i], 1e-9);
  }
}

}  // namespace
}  // namespace emap::synth
