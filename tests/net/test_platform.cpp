#include "emap/net/platform.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace emap::net {
namespace {

TEST(Platform, SixPlatformsWithDistinctNames) {
  std::set<std::string> names;
  for (CommPlatform platform : kAllPlatforms) {
    names.insert(platform_name(platform));
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(Platform, RatesArePositive) {
  for (CommPlatform platform : kAllPlatforms) {
    const auto& params = platform_params(platform);
    EXPECT_GT(params.uplink_mbps, 0.0) << params.name;
    EXPECT_GT(params.downlink_mbps, 0.0) << params.name;
    EXPECT_GT(params.latency_ms, 0.0) << params.name;
  }
}

TEST(Platform, GenerationalOrderingHolds) {
  // Each generation uplinks faster than its predecessor (the Fig. 4 curve
  // ordering).
  EXPECT_LT(platform_params(CommPlatform::kHspa).uplink_mbps,
            platform_params(CommPlatform::kHspaPlus).uplink_mbps);
  EXPECT_LT(platform_params(CommPlatform::kHspaPlus).uplink_mbps,
            platform_params(CommPlatform::kLte).uplink_mbps);
  EXPECT_LT(platform_params(CommPlatform::kLte).uplink_mbps,
            platform_params(CommPlatform::kLteAdvanced).uplink_mbps);
  EXPECT_LT(platform_params(CommPlatform::kWimaxR1).uplink_mbps,
            platform_params(CommPlatform::kWimaxR2).uplink_mbps);
}

TEST(Platform, DownlinkFasterThanUplink) {
  for (CommPlatform platform : kAllPlatforms) {
    const auto& params = platform_params(platform);
    EXPECT_GT(params.downlink_mbps, params.uplink_mbps) << params.name;
  }
}

TEST(Platform, NamesMatchPaperLegend) {
  EXPECT_STREQ(platform_name(CommPlatform::kHspa), "HSPA");
  EXPECT_STREQ(platform_name(CommPlatform::kLteAdvanced), "LTE-A");
  EXPECT_STREQ(platform_name(CommPlatform::kWimaxR2), "WiMax R2");
}

}  // namespace
}  // namespace emap::net
