#include "emap/net/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "emap/common/error.hpp"

namespace emap::net {
namespace {

TEST(RetryPolicy, TimeoutScalesWithExpectedTransfer) {
  RetryOptions options;
  options.timeout_multiplier = 4.0;
  options.min_timeout_sec = 0.25;
  options.max_timeout_sec = 5.0;
  const RetryPolicy policy(options);
  EXPECT_DOUBLE_EQ(policy.timeout_for(0.5), 2.0);
}

TEST(RetryPolicy, TimeoutClampedToConfiguredRange) {
  const RetryPolicy policy;
  const RetryOptions& o = policy.options();
  EXPECT_DOUBLE_EQ(policy.timeout_for(0.0), o.min_timeout_sec);
  EXPECT_DOUBLE_EQ(policy.timeout_for(1e-9), o.min_timeout_sec);
  EXPECT_DOUBLE_EQ(policy.timeout_for(1e6), o.max_timeout_sec);
  // Negative expectations (shouldn't happen, but must not produce a
  // negative timeout) clamp to the floor too.
  EXPECT_DOUBLE_EQ(policy.timeout_for(-1.0), o.min_timeout_sec);
}

TEST(RetryPolicyProperty, BackoffIsCappedAndNonDecreasing) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 0xdeadULL}) {
    RetryOptions options;
    options.max_attempts = 12;
    options.base_backoff_sec = 0.05;
    options.backoff_cap_sec = 1.0;
    options.jitter_fraction = 0.25;
    options.deadline_sec = 1e9;  // not under test here
    options.seed = seed;
    const RetryPolicy policy(options);
    EXPECT_DOUBLE_EQ(policy.backoff_before(0), 0.0);
    double previous = 0.0;
    for (std::size_t attempt = 1; attempt <= 40; ++attempt) {
      const double backoff = policy.backoff_before(attempt);
      EXPECT_GE(backoff, previous) << "attempt " << attempt;
      EXPECT_LE(backoff,
                options.backoff_cap_sec * (1.0 + options.jitter_fraction))
          << "attempt " << attempt;
      previous = backoff;
    }
  }
}

TEST(RetryPolicyProperty, BackoffDeterministicPerSeed) {
  RetryOptions options;
  options.jitter_fraction = 0.3;
  options.seed = 2024;
  const RetryPolicy a(options);
  const RetryPolicy b(options);
  options.seed = 2025;
  const RetryPolicy c(options);
  bool any_difference = false;
  for (std::size_t attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_DOUBLE_EQ(a.backoff_before(attempt), b.backoff_before(attempt));
    // Repeated queries of the same attempt must not advance hidden state.
    EXPECT_DOUBLE_EQ(a.backoff_before(attempt), a.backoff_before(attempt));
    if (a.backoff_before(attempt) != c.backoff_before(attempt)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds produced identical jitter";
}

TEST(RetryPolicyProperty, WorstCaseWaitNeverExceedsDeadline) {
  for (std::uint64_t seed : {3ULL, 11ULL, 99ULL}) {
    for (double deadline : {1.0, 5.0, 20.0}) {
      for (double expected : {0.001, 0.1, 2.0, 100.0}) {
        RetryOptions options;
        options.max_attempts = 6;
        options.max_timeout_sec = 1.0;
        options.deadline_sec = deadline;
        options.seed = seed;
        const RetryPolicy policy(options);
        EXPECT_LE(policy.worst_case_wait(expected),
                  options.deadline_sec + 1e-12);
      }
    }
  }
}

TEST(RetryPolicyProperty, SimulatedLossyCallStaysWithinWorstCase) {
  // Drive the policy the way the pipeline does — every attempt times out —
  // and check the accumulated wait against worst_case_wait().
  RetryOptions options;
  options.max_attempts = 5;
  options.deadline_sec = 30.0;
  const RetryPolicy policy(options);
  const double expected = 0.4;
  const double timeout = policy.timeout_for(expected);
  double elapsed = 0.0;
  std::size_t attempts = 0;
  for (std::size_t attempt = 0;
       policy.allow_attempt(attempt, elapsed, timeout); ++attempt) {
    elapsed += policy.backoff_before(attempt);
    elapsed += timeout;  // attempt fails at its timeout
    ++attempts;
  }
  EXPECT_EQ(attempts, options.max_attempts);
  EXPECT_LE(elapsed, policy.worst_case_wait(expected) + 1e-12);
  EXPECT_LE(elapsed, options.deadline_sec + 1e-12);
}

TEST(RetryPolicy, AllowAttemptEnforcesMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 3;
  const RetryPolicy policy(options);
  EXPECT_TRUE(policy.allow_attempt(0, 0.0, 1.0));
  EXPECT_TRUE(policy.allow_attempt(2, 0.0, 1.0));
  EXPECT_FALSE(policy.allow_attempt(3, 0.0, 1.0));
  EXPECT_FALSE(policy.allow_attempt(100, 0.0, 1.0));
}

TEST(RetryPolicy, AllowAttemptEnforcesDeadline) {
  RetryOptions options;
  options.max_attempts = 10;
  options.deadline_sec = 5.0;
  options.max_timeout_sec = 5.0;
  const RetryPolicy policy(options);
  // First attempt is always allowed even when the timeout alone would
  // exceed the remaining budget.
  EXPECT_TRUE(policy.allow_attempt(0, 0.0, 5.0));
  // A retry whose backoff + timeout no longer fits is refused.
  EXPECT_FALSE(policy.allow_attempt(1, 4.0, 2.0));
  EXPECT_TRUE(policy.allow_attempt(1, 0.0, 1.0));
}

// A RetryAfter hint — whether attached to a cloud-side shed or advertised
// by the edge's open circuit breaker — floors the backoff for EVERY reject
// reason: whoever issued the hint said when to come back.
TEST(RetryPolicy, RetryAfterHintFloorsBackoffForEveryReason) {
  const RetryPolicy policy;
  const double hint = 7.5;  // far above any scheduled backoff
  for (const RejectReason reason :
       {RejectReason::kTimeout, RejectReason::kCorrupt, RejectReason::kShed}) {
    for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_DOUBLE_EQ(policy.backoff_for(attempt, reason, hint), hint)
          << reject_reason_name(reason) << " attempt " << attempt;
    }
  }
  // A hint below the scheduled backoff is a no-op (floor, not override).
  const double scheduled = policy.backoff_for(3, RejectReason::kTimeout);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3, RejectReason::kTimeout, 1e-6),
                   scheduled);
  // Attempt 0 never waits, hint or not.
  EXPECT_DOUBLE_EQ(policy.backoff_for(0, RejectReason::kShed, hint), 0.0);
}

TEST(RetryOptions, ValidateRejectsInconsistentKnobs) {
  RetryOptions options;
  options.max_attempts = 0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = RetryOptions{};
  options.min_timeout_sec = 2.0;
  options.max_timeout_sec = 1.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = RetryOptions{};
  options.jitter_fraction = 1.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = RetryOptions{};
  options.backoff_cap_sec = 0.01;  // below base_backoff_sec
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = RetryOptions{};
  options.deadline_sec = 0.5;  // below max_timeout_sec: attempt 0 can't fit
  EXPECT_THROW(options.validate(), InvalidArgument);
}

}  // namespace
}  // namespace emap::net
