#include "emap/net/transport.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "emap/common/crc32.hpp"
#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::net {
namespace {

TEST(Transport, UploadRoundTripWithin16BitPrecision) {
  SignalUploadMessage message;
  message.sequence = 42;
  message.samples = testing::noise(1, 256, 7.0);
  const auto decoded = decode_upload(encode_upload(message));
  EXPECT_EQ(decoded.sequence, 42u);
  ASSERT_EQ(decoded.samples.size(), 256u);
  double peak = 0.0;
  for (double s : message.samples) {
    peak = std::max(peak, std::abs(s));
  }
  const double quantum = peak / 32767.0;
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_NEAR(decoded.samples[i], message.samples[i], quantum);
  }
}

TEST(Transport, UploadWireSizeMatchesEncoding) {
  SignalUploadMessage message;
  message.samples = testing::noise(2, 256);
  EXPECT_EQ(encode_upload(message).size(), wire_size(message));
}

TEST(Transport, PaperUploadPayloadIsCompact) {
  // One second of 16-bit samples ~= 512 bytes + small header; this is what
  // makes the < 1 ms upload of Fig. 4a possible.
  SignalUploadMessage message;
  message.samples.assign(256, 1.0);
  EXPECT_LT(wire_size(message), 600u);
}

TEST(Transport, CorrelationSetRoundTrip) {
  CorrelationSetMessage message;
  message.request_sequence = 7;
  for (int i = 0; i < 3; ++i) {
    CorrelationEntry entry;
    entry.set_id = 100 + static_cast<std::uint64_t>(i);
    entry.omega = 0.9f - 0.01f * static_cast<float>(i);
    entry.beta = 12 * static_cast<std::uint32_t>(i);
    entry.anomalous = (i % 2 == 0) ? 1 : 0;
    entry.class_tag = static_cast<std::uint8_t>(i);
    entry.samples = testing::noise(static_cast<std::uint64_t>(i) + 5, 1000,
                                   6.0);
    message.entries.push_back(std::move(entry));
  }
  const auto decoded = decode_correlation_set(encode_correlation_set(message));
  EXPECT_EQ(decoded.request_sequence, 7u);
  ASSERT_EQ(decoded.entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.entries[i].set_id, message.entries[i].set_id);
    EXPECT_FLOAT_EQ(decoded.entries[i].omega, message.entries[i].omega);
    EXPECT_EQ(decoded.entries[i].beta, message.entries[i].beta);
    EXPECT_EQ(decoded.entries[i].anomalous, message.entries[i].anomalous);
    ASSERT_EQ(decoded.entries[i].samples.size(), 1000u);
  }
}

TEST(Transport, CorrelationSetWireSizeMatchesEncoding) {
  CorrelationSetMessage message;
  CorrelationEntry entry;
  entry.samples = testing::noise(3, 1000);
  message.entries.push_back(entry);
  EXPECT_EQ(encode_correlation_set(message).size(), wire_size(message));
}

TEST(Transport, Top100DownloadPayloadNearPaperScale) {
  // 100 x 1000-sample signal-sets at 16 bits ~= 200 kB.
  CorrelationSetMessage message;
  for (int i = 0; i < 100; ++i) {
    CorrelationEntry entry;
    entry.samples.assign(1000, 1.0);
    message.entries.push_back(std::move(entry));
  }
  const std::size_t size = wire_size(message);
  EXPECT_GT(size, 190'000u);
  EXPECT_LT(size, 220'000u);
}

TEST(Transport, DecodeUploadRejectsBadMagic) {
  SignalUploadMessage message;
  message.samples = testing::noise(4, 16);
  auto bytes = encode_upload(message);
  bytes[0] ^= 0xff;
  EXPECT_THROW(decode_upload(bytes), CorruptData);
}

TEST(Transport, DecodeUploadRejectsTruncation) {
  SignalUploadMessage message;
  message.samples = testing::noise(5, 64);
  auto bytes = encode_upload(message);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_upload(bytes), CorruptData);
}

TEST(Transport, DecodeUploadRejectsTrailingBytes) {
  SignalUploadMessage message;
  message.samples = testing::noise(6, 64);
  auto bytes = encode_upload(message);
  bytes.push_back(0);
  EXPECT_THROW(decode_upload(bytes), CorruptData);
}

TEST(Transport, DecodeCorrelationSetRejectsCorruptScale) {
  CorrelationSetMessage message;
  CorrelationEntry entry;
  entry.samples = testing::noise(7, 100);
  message.entries.push_back(entry);
  auto bytes = encode_correlation_set(message);
  // Scale field of the first entry sits after magic(4)+seq(4)+count(4)+
  // id(8)+omega(4)+beta(4)+anomalous(1)+class(1) = 30.
  bytes[30] = 0xff;
  bytes[31] = 0xff;
  bytes[32] = 0xff;
  bytes[33] = 0xff;  // NaN scale
  EXPECT_THROW(decode_correlation_set(bytes), CorruptData);
}

TEST(Transport, EmptyCorrelationSetIsValid) {
  CorrelationSetMessage message;
  const auto decoded = decode_correlation_set(encode_correlation_set(message));
  EXPECT_TRUE(decoded.entries.empty());
}

TEST(Transport, ZeroEntrySetRejectsEveryTruncation) {
  // The minimal valid message (header + CRC only): every strict prefix
  // must be rejected, and an intact one must round-trip.
  CorrelationSetMessage message;
  message.request_sequence = 3;
  const auto bytes = encode_correlation_set(message);
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + length);
    EXPECT_THROW(decode_correlation_set(prefix), CorruptData)
        << "prefix length " << length;
  }
  EXPECT_EQ(decode_correlation_set(bytes).request_sequence, 3u);
}

TEST(Transport, DecodeAcceptsSpanOverSubrange) {
  // decode_* takes std::span: decoding from a view into a larger buffer
  // (the receive path after framing removal) must work without a copy.
  SignalUploadMessage message;
  message.sequence = 9;
  message.samples = testing::noise(8, 32);
  const auto encoded = encode_upload(message);
  std::vector<std::uint8_t> framed;
  framed.insert(framed.end(), 7, 0xee);  // fake frame header
  framed.insert(framed.end(), encoded.begin(), encoded.end());
  framed.insert(framed.end(), 5, 0xdd);  // fake frame trailer
  const std::span<const std::uint8_t> view(framed.data() + 7,
                                           encoded.size());
  EXPECT_EQ(decode_upload(view).sequence, 9u);
}

TEST(Transport, PaperScaleSetRoundTripsAndGuardsItsBounds) {
  // Top-100 download at full 1000-sample entries (the paper's maximum):
  // round-trips intact, and dropping even the final byte is rejected.
  CorrelationSetMessage message;
  for (int i = 0; i < 100; ++i) {
    CorrelationEntry entry;
    entry.set_id = static_cast<std::uint64_t>(i);
    entry.samples = testing::noise(static_cast<std::uint64_t>(i), 1000, 4.0);
    message.entries.push_back(std::move(entry));
  }
  auto bytes = encode_correlation_set(message);
  EXPECT_EQ(bytes.size(), wire_size(message));
  const auto decoded = decode_correlation_set(bytes);
  ASSERT_EQ(decoded.entries.size(), 100u);
  EXPECT_EQ(decoded.entries.back().set_id, 99u);
  bytes.pop_back();
  EXPECT_THROW(decode_correlation_set(bytes), CorruptData);
}

TEST(Transport, TracedUploadRoundTripsContextUnderV2) {
  SignalUploadMessage message;
  message.sequence = 11;
  message.trace = {obs::mint_trace_id(obs::kDefaultTraceSeed, 11), 0x5150};
  message.samples = testing::noise(10, 256, 7.0);
  const auto bytes = encode_upload(message);
  EXPECT_EQ(bytes.size(), wire_size(message));
  // V2 magic "EMU2" leads the frame; the V1 magic must not.
  EXPECT_EQ(bytes[0], 'E');
  EXPECT_EQ(bytes[1], 'M');
  EXPECT_EQ(bytes[2], 'U');
  EXPECT_EQ(bytes[3], '2');
  const auto decoded = decode_upload(bytes);
  EXPECT_EQ(decoded.sequence, 11u);
  EXPECT_EQ(decoded.trace, message.trace);
  EXPECT_EQ(decoded.samples.size(), 256u);
}

TEST(Transport, TracedCorrelationSetRoundTripsContext) {
  CorrelationSetMessage message;
  message.request_sequence = 23;
  message.trace = {0xfeedf00dcafe1234ull, 0x42};
  CorrelationEntry entry;
  entry.set_id = 9;
  entry.samples = testing::noise(11, 100);
  message.entries.push_back(std::move(entry));
  const auto bytes = encode_correlation_set(message);
  EXPECT_EQ(bytes.size(), wire_size(message));
  EXPECT_EQ(bytes[3], '2');  // "EMD2"
  const auto decoded = decode_correlation_set(bytes);
  EXPECT_EQ(decoded.request_sequence, 23u);
  EXPECT_EQ(decoded.trace, message.trace);
  ASSERT_EQ(decoded.entries.size(), 1u);
  EXPECT_EQ(decoded.entries[0].set_id, 9u);
}

TEST(Transport, UntracedMessagesKeepTheV1WireForm) {
  // Tracing off must leave the wire bit-identical to pre-trace builds:
  // the V1 magic, no 16-byte trace header, and decode yields the invalid
  // (all-zero) context.
  SignalUploadMessage untraced;
  untraced.sequence = 1;
  untraced.samples = testing::noise(12, 64);
  SignalUploadMessage traced = untraced;
  traced.trace = {0xabcull, 0x1ull};
  const auto v1 = encode_upload(untraced);
  const auto v2 = encode_upload(traced);
  EXPECT_EQ(v1[3], 'U');  // "EMPU"
  EXPECT_EQ(v2.size(), v1.size() + 16u);
  EXPECT_FALSE(decode_upload(v1).trace.valid());
  EXPECT_FALSE(decode_correlation_set(
                   encode_correlation_set(CorrelationSetMessage{}))
                   .trace.valid());
}

TEST(Transport, PeekTraceReadsV2AndFailsClosedOtherwise) {
  SignalUploadMessage message;
  message.trace = {0x1122334455667788ull, 0x9};
  message.samples = testing::noise(13, 32);
  const auto v2 = encode_upload(message);
  EXPECT_EQ(peek_trace(v2), message.trace);
  // V1 input: valid message, no context.
  message.trace = {};
  EXPECT_FALSE(peek_trace(encode_upload(message)).valid());
  // Corrupt input: never a garbage id, and never a throw.
  auto mutated = v2;
  mutated[8] ^= 0x01;
  EXPECT_FALSE(peek_trace(mutated).valid());
  EXPECT_FALSE(peek_trace(std::span<const std::uint8_t>{}).valid());
}

TEST(Transport, V2HeaderWithNullTraceIdIsRejected) {
  // A null trace id under the V2 magic cannot come from our encoder (null
  // contexts take the V1 path); accepting one would let a forged message
  // smuggle an "untraced" frame through the V2 parser.  Zero the id and
  // re-seal the CRC so only the explicit null-id guard can catch it.
  SignalUploadMessage message;
  message.trace = {0xdeadbeefull, 0x7};
  message.samples = testing::noise(14, 32);
  auto bytes = encode_upload(message);
  for (std::size_t i = 4; i < 12; ++i) {
    bytes[i] = 0;  // trace_id sits right after the magic
  }
  bytes.resize(bytes.size() - 4);
  const std::uint32_t crc = emap::crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff));
  }
  EXPECT_THROW(decode_upload(bytes), CorruptData);
  EXPECT_FALSE(peek_trace(bytes).valid());
}

TEST(Transport, EntryCountBeyondPayloadIsRejectedBeforeAllocation) {
  // An in-range CRC-valid message can still lie about its entry count if
  // an attacker recomputes the checksum; the decoder's count guard must
  // reject it from the byte budget alone.
  CorrelationSetMessage message;
  CorrelationEntry entry;
  entry.samples = testing::noise(9, 10);
  message.entries.push_back(entry);
  auto bytes = encode_correlation_set(message);
  // Rewrite the entry count (offset 8) to 2^31 and re-seal a valid CRC so
  // only the count guard can catch it.
  bytes[8] = 0x00;
  bytes[9] = 0x00;
  bytes[10] = 0x00;
  bytes[11] = 0x80;
  bytes.resize(bytes.size() - 4);
  const std::uint32_t crc = emap::crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff));
  }
  EXPECT_THROW(decode_correlation_set(bytes), CorruptData);
}

}  // namespace
}  // namespace emap::net
