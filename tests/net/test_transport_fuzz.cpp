// Randomized robustness tests for the wire codec: every mutation of a valid
// encoding — truncation, bit-flips, random garbage — must surface as
// CorruptData, never as UB, a silent mis-decode, or an attempted huge
// allocation.  The CRC-32 trailer makes the bit-flip guarantee exact; the
// count-vs-remaining-bytes guards make truncated/garbage inputs cheap to
// reject.  Seeds are fixed: each failure is reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/net/transport.hpp"
#include "support/test_util.hpp"

namespace emap::net {
namespace {

SignalUploadMessage sample_upload(std::uint64_t seed) {
  SignalUploadMessage message;
  message.sequence = static_cast<std::uint32_t>(seed * 31 + 5);
  message.samples = testing::noise(seed, 256, 7.0);
  return message;
}

SignalUploadMessage sample_traced_upload(std::uint64_t seed) {
  auto message = sample_upload(seed);
  message.trace = {obs::mint_trace_id(obs::kDefaultTraceSeed, seed),
                   seed * 7 + 1};
  return message;
}

CorrelationSetMessage sample_correlation_set(std::uint64_t seed,
                                             std::size_t entries) {
  CorrelationSetMessage message;
  message.request_sequence = static_cast<std::uint32_t>(seed);
  for (std::size_t i = 0; i < entries; ++i) {
    CorrelationEntry entry;
    entry.set_id = seed * 1000 + i;
    entry.omega = 0.8f + 0.001f * static_cast<float>(i);
    entry.beta = static_cast<std::uint32_t>(i * 17);
    entry.anomalous = i % 2 == 0 ? 1 : 0;
    entry.class_tag = static_cast<std::uint8_t>(i % 5);
    entry.samples = testing::noise(seed + i, 200, 5.0);
    message.entries.push_back(std::move(entry));
  }
  return message;
}

template <typename Decode>
void expect_corrupt(const std::vector<std::uint8_t>& bytes, Decode decode,
                    const char* what) {
  try {
    decode(bytes);
    FAIL() << what << ": decode accepted a mutated message";
  } catch (const CorruptData&) {
    // expected
  }
  // Any other exception type escapes and fails the test.
}

TEST(TransportFuzz, UploadSurvivesBitFlips) {
  Rng rng(101);
  const auto bytes = encode_upload(sample_upload(1));
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = bytes;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t at = rng.uniform_index(mutated.size());
      mutated[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_index(8));
    }
    if (mutated == bytes) {
      continue;  // flips cancelled out
    }
    expect_corrupt(mutated,
                   [](const auto& b) { return decode_upload(b); },
                   "upload bit-flip");
  }
}

TEST(TransportFuzz, CorrelationSetSurvivesBitFlips) {
  Rng rng(202);
  const auto bytes = encode_correlation_set(sample_correlation_set(2, 4));
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = bytes;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t at = rng.uniform_index(mutated.size());
      mutated[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_index(8));
    }
    if (mutated == bytes) {
      continue;
    }
    expect_corrupt(mutated,
                   [](const auto& b) { return decode_correlation_set(b); },
                   "correlation-set bit-flip");
  }
}

TEST(TransportFuzz, UploadSurvivesEveryTruncation) {
  const auto bytes = encode_upload(sample_upload(3));
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + length);
    expect_corrupt(truncated,
                   [](const auto& b) { return decode_upload(b); },
                   "upload truncation");
  }
}

TEST(TransportFuzz, CorrelationSetSurvivesSampledTruncations) {
  const auto bytes = encode_correlation_set(sample_correlation_set(4, 3));
  // Every prefix would be slow (~1.3 kB x 1.3 k decodes); step through and
  // always include the boundary-adjacent lengths.
  for (std::size_t length = 0; length < bytes.size();
       length += (length < 64 ? 1 : 7)) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + length);
    expect_corrupt(truncated,
                   [](const auto& b) { return decode_correlation_set(b); },
                   "correlation-set truncation");
  }
}

TEST(TransportFuzz, RandomGarbageNeverDecodes) {
  Rng rng(303);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(512));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    expect_corrupt(garbage, [](const auto& b) { return decode_upload(b); },
                   "garbage upload");
    expect_corrupt(garbage,
                   [](const auto& b) { return decode_correlation_set(b); },
                   "garbage correlation set");
  }
}

TEST(TransportFuzz, HugeDeclaredCountsRejectedWithoutAllocation) {
  // Corrupt the length fields to claim astronomically many samples/entries.
  // The decoder must reject via the count-vs-remaining-bytes guard (or the
  // CRC) instead of attempting the allocation.
  auto upload = encode_upload(sample_upload(5));
  // sample count lives after magic(4)+sequence(4)+scale(4) = offset 12.
  upload[12] = 0xff;
  upload[13] = 0xff;
  upload[14] = 0xff;
  upload[15] = 0xff;
  expect_corrupt(upload, [](const auto& b) { return decode_upload(b); },
                 "upload huge count");

  auto corrset = encode_correlation_set(sample_correlation_set(6, 2));
  // entry count lives after magic(4)+request_sequence(4) = offset 8.
  corrset[8] = 0xff;
  corrset[9] = 0xff;
  corrset[10] = 0xff;
  corrset[11] = 0xff;
  expect_corrupt(corrset,
                 [](const auto& b) { return decode_correlation_set(b); },
                 "correlation-set huge count");
}

TEST(TransportFuzz, TracedUploadSurvivesBitFlips) {
  // V2 frames add 16 trace-header bytes inside the CRC seal; any flip —
  // including in the trace id itself — must fail both decode and the
  // cheap peek path, which may never surface a garbage context.
  Rng rng(505);
  const auto bytes = encode_upload(sample_traced_upload(7));
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = bytes;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t at = rng.uniform_index(mutated.size());
      mutated[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_index(8));
    }
    if (mutated == bytes) {
      continue;
    }
    expect_corrupt(mutated,
                   [](const auto& b) { return decode_upload(b); },
                   "traced upload bit-flip");
    EXPECT_FALSE(peek_trace(mutated).valid());
  }
}

TEST(TransportFuzz, TracedCorrelationSetSurvivesBitFlips) {
  Rng rng(606);
  auto message = sample_correlation_set(8, 4);
  message.trace = {obs::mint_trace_id(obs::kDefaultTraceSeed, 8), 3};
  const auto bytes = encode_correlation_set(message);
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = bytes;
    mutated[rng.uniform_index(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    if (mutated == bytes) {
      continue;
    }
    expect_corrupt(mutated,
                   [](const auto& b) { return decode_correlation_set(b); },
                   "traced correlation-set bit-flip");
    EXPECT_FALSE(peek_trace(mutated).valid());
  }
}

TEST(TransportFuzz, TracedUploadSurvivesEveryTruncation) {
  const auto bytes = encode_upload(sample_traced_upload(9));
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + length);
    expect_corrupt(truncated,
                   [](const auto& b) { return decode_upload(b); },
                   "traced upload truncation");
    EXPECT_FALSE(peek_trace(truncated).valid()) << "length " << length;
  }
}

TEST(TransportFuzz, PeekTraceNeverYieldsContextFromGarbage) {
  Rng rng(707);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_index(512));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    EXPECT_FALSE(peek_trace(garbage).valid());
  }
}

TEST(TransportFuzz, TracedHugeDeclaredCountRejectedWithoutAllocation) {
  // Same guard as the V1 case, but the count moved: the 16-byte trace
  // header shifts it to magic(4)+trace(16)+sequence(4)+scale(4) = 28.
  auto upload = encode_upload(sample_traced_upload(10));
  upload[28] = 0xff;
  upload[29] = 0xff;
  upload[30] = 0xff;
  upload[31] = 0xff;
  expect_corrupt(upload, [](const auto& b) { return decode_upload(b); },
                 "traced upload huge count");
}

TEST(TransportFuzz, MutateDecodeLoopIsStable) {
  // Interleave encode -> corrupt -> reject -> re-encode for many rounds;
  // the codec must stay usable after arbitrary rejected inputs (no global
  // state, no leaks visible under ASan).
  Rng rng(404);
  for (int round = 0; round < 50; ++round) {
    const auto message = sample_correlation_set(
        static_cast<std::uint64_t>(round), 1 + round % 3);
    auto bytes = encode_correlation_set(message);
    const auto good = decode_correlation_set(bytes);
    EXPECT_EQ(good.entries.size(), message.entries.size());
    bytes[rng.uniform_index(bytes.size())] ^= 0x40;
    expect_corrupt(bytes,
                   [](const auto& b) { return decode_correlation_set(b); },
                   "mutate-decode loop");
  }
}

}  // namespace
}  // namespace emap::net
