#include "emap/net/compression.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/synth/generator.hpp"
#include "support/test_util.hpp"

namespace emap::net {
namespace {

std::vector<std::int16_t> quantize(const std::vector<double>& samples,
                                   double scale = 1.0) {
  std::vector<std::int16_t> out;
  for (double s : samples) {
    out.push_back(static_cast<std::int16_t>(
        std::clamp(s * scale, -32767.0, 32767.0)));
  }
  return out;
}

TEST(Compression, EmptyRoundTrip) {
  EXPECT_TRUE(compress_samples({}).empty());
  EXPECT_TRUE(decompress_samples({}).empty());
}

TEST(Compression, RoundTripIsLossless) {
  const auto samples = quantize(testing::noise(1, 2048, 500.0));
  const auto compressed = compress_samples(samples);
  EXPECT_EQ(decompress_samples(compressed), samples);
}

TEST(Compression, ExtremeValuesRoundTrip) {
  const std::vector<std::int16_t> samples = {INT16_MIN, INT16_MAX, 0,
                                             INT16_MAX, INT16_MIN, -1, 1};
  EXPECT_EQ(decompress_samples(compress_samples(samples)), samples);
}

TEST(Compression, FilteredEegIsNearlyIncompressible) {
  // The documented negative result (see compression.hpp): peak-normalized
  // 11-40 Hz content at fs = 256 has near-full-scale deltas, so the varint
  // coder neither wins nor loses much.  Pin the behaviour so a future
  // coder change that regresses badly is caught.
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kNormal;
  spec.duration_sec = 20.0;
  spec.seed = 3;
  const auto recording = gen.generate(spec);
  dsp::FirFilter filter = dsp::FirFilter::paper_bandpass();
  const auto filtered = filter.apply(recording.samples);
  double peak = 1e-9;
  for (double s : filtered) {
    peak = std::max(peak, std::abs(s));
  }
  const auto samples = quantize(filtered, 32767.0 / peak);
  const auto compressed = compress_samples(samples);
  const double ratio = static_cast<double>(samples.size() * 2) /
                       static_cast<double>(compressed.size());
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.5);
}

TEST(Compression, RawUnfilteredEegCompressesMildly) {
  // The raw (pre-filter) stream at a fixed ADC scale compresses, but only
  // mildly (~1.1x) — beta-band content dominates the deltas.  The hard
  // wins stay confined to quiet/oversampled content (tests below).
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kNormal;
  spec.duration_sec = 20.0;
  spec.seed = 4;
  const auto recording = gen.generate(spec);
  // Fixed +/-400-unit ADC scale (EDF-style), not per-window peak.
  const auto samples = quantize(recording.samples, 32767.0 / 400.0);
  const auto compressed = compress_samples(samples);
  const double ratio = static_cast<double>(samples.size() * 2) /
                       static_cast<double>(compressed.size());
  EXPECT_GT(ratio, 1.0);
}

TEST(Compression, ConstantSignalCompressesHard) {
  const std::vector<std::int16_t> samples(1000, 42);
  const auto compressed = compress_samples(samples);
  // First sample ~1-2 bytes, every delta = 0 -> 1 byte each.
  EXPECT_LE(compressed.size(), 1002u);
  EXPECT_EQ(decompress_samples(compressed), samples);
}

TEST(Compression, WhiteNoiseDoesNotExplode) {
  // Adversarial content: full-range noise may expand, but boundedly
  // (3 bytes per sample worst case for 16-bit deltas).
  const auto samples = quantize(testing::noise(5, 1000, 15000.0));
  const auto compressed = compress_samples(samples);
  EXPECT_LE(compressed.size(), samples.size() * 3);
}

TEST(Compression, TruncatedInputThrows) {
  const std::vector<std::int16_t> samples = {1000, -1000, 1000};
  auto compressed = compress_samples(samples);
  // Chop inside a multi-byte varint.
  ASSERT_GE(compressed.size(), 2u);
  compressed.resize(compressed.size() - 1);
  EXPECT_THROW(decompress_samples(compressed), CorruptData);
}

TEST(Compression, OverflowingDeltaThrows) {
  // Craft varints decoding to deltas that push past int16 range.
  std::vector<std::uint8_t> bytes;
  // zigzag(40000) = 80000 -> varint bytes.
  std::uint32_t v = 80000;
  while (v >= 0x80) {
    bytes.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  bytes.push_back(static_cast<std::uint8_t>(v));
  EXPECT_THROW(decompress_samples(bytes), CorruptData);
}

TEST(Compression, CompressedWireSizeNeverExceedsRawPlusFlag) {
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kNormal;
  spec.duration_sec = 2.0;
  spec.seed = 9;
  const auto recording = gen.generate(spec);
  dsp::FirFilter filter = dsp::FirFilter::paper_bandpass();
  const auto filtered = filter.apply(recording.samples);
  const std::span<const double> window(filtered.data() + 256, 256);
  const std::size_t raw_plus_flag = 9 + 2 * window.size();
  EXPECT_LE(compressed_wire_size(window), raw_plus_flag);
  EXPECT_EQ(compressed_wire_size({}), 0u);
}

TEST(Compression, QuietContentShrinksTheWireSize) {
  // A suppression segment (tiny signal riding on a constant) compresses.
  std::vector<double> quiet(256, 100.0);
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    quiet[i] += 0.01 * static_cast<double>(i % 2);
  }
  EXPECT_LT(compressed_wire_size(quiet), 9u + 2u * 256u);
}

}  // namespace
}  // namespace emap::net
