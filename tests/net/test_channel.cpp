#include "emap/net/channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/obs/metrics.hpp"

namespace emap::net {
namespace {

TEST(Channel, LineSecondsIsBitsOverRate) {
  // 1250 bytes = 10000 bits at 10 Mbps -> 1 ms.
  EXPECT_NEAR(Channel::line_seconds(1250, 10.0), 1e-3, 1e-12);
}

TEST(Channel, LineSecondsRejectsZeroRate) {
  EXPECT_THROW(Channel::line_seconds(100, 0.0), InvalidArgument);
}

TEST(Channel, UploadIncludesLatencyByDefault) {
  Channel channel(CommPlatform::kLte);
  const double latency =
      platform_params(CommPlatform::kLte).latency_ms * 1e-3;
  EXPECT_GT(channel.upload_seconds(100), latency);
}

TEST(Channel, SerializationOnlyModeExcludesLatency) {
  ChannelOptions options;
  options.include_latency = false;
  options.framing_overhead_bytes = 0;
  Channel channel(CommPlatform::kLte, options);
  const double expected = Channel::line_seconds(
      512, platform_params(CommPlatform::kLte).uplink_mbps);
  EXPECT_NEAR(channel.upload_seconds(512), expected, 1e-12);
}

TEST(Channel, PaperUploadConstraintHolds) {
  // 256 samples (512 bytes + framing) must go up in < 1 ms on 4G-era
  // links (paper Fig. 4a).
  ChannelOptions options;
  options.include_latency = false;
  for (CommPlatform platform :
       {CommPlatform::kLte, CommPlatform::kLteAdvanced,
        CommPlatform::kWimaxR2}) {
    Channel channel(platform, options);
    EXPECT_LT(channel.upload_seconds(512 + 16), 1e-3)
        << platform_name(platform);
  }
}

TEST(Channel, PaperDownloadConstraintHolds) {
  // 100 signal-sets (~100 x 2 kB) must come down in < 200 ms on 4G-era
  // links (paper Fig. 4b).
  ChannelOptions options;
  options.include_latency = false;
  const std::size_t payload = 100 * (1000 * 2 + 18);
  for (CommPlatform platform :
       {CommPlatform::kLte, CommPlatform::kLteAdvanced,
        CommPlatform::kWimaxR2}) {
    Channel channel(platform, options);
    EXPECT_LT(channel.download_seconds(payload), 0.2)
        << platform_name(platform);
  }
}

TEST(Channel, DownloadFasterThanUploadForSamePayload) {
  ChannelOptions options;
  options.include_latency = false;
  for (CommPlatform platform : kAllPlatforms) {
    Channel channel(platform, options);
    EXPECT_LT(channel.download_seconds(10000),
              channel.upload_seconds(10000));
  }
}

TEST(Channel, TransferTimeMonotoneInPayload) {
  Channel channel(CommPlatform::kHspa);
  EXPECT_LT(channel.upload_seconds(100), channel.upload_seconds(10000));
}

TEST(Channel, JitterStaysWithinFraction) {
  ChannelOptions options;
  options.include_latency = false;
  options.framing_overhead_bytes = 0;
  options.jitter_fraction = 0.2;
  Channel channel(CommPlatform::kLte, options, /*jitter_seed=*/9);
  const double nominal = Channel::line_seconds(
      10000, platform_params(CommPlatform::kLte).uplink_mbps);
  for (int i = 0; i < 100; ++i) {
    const double t = channel.upload_seconds(10000);
    EXPECT_GE(t, nominal * 0.8 - 1e-15);
    EXPECT_LE(t, nominal * 1.2 + 1e-15);
  }
}

TEST(Channel, RejectsBadJitter) {
  ChannelOptions options;
  options.jitter_fraction = 1.5;
  EXPECT_THROW(Channel(CommPlatform::kLte, options), InvalidArgument);
}

TEST(Channel, ExpectedSecondsMatchesJitterFreeTransfer) {
  ChannelOptions options;
  options.jitter_fraction = 0.0;
  Channel channel(CommPlatform::kLte, options);
  std::vector<std::uint8_t> bytes(1000);
  const auto outcome = channel.transfer(Direction::kUpload, bytes);
  EXPECT_TRUE(outcome.delivered());
  EXPECT_NEAR(outcome.seconds,
              channel.expected_seconds(Direction::kUpload, bytes.size()),
              1e-12);
  // expected_seconds is const and consumes no randomness: asking twice
  // gives the same answer.
  EXPECT_DOUBLE_EQ(channel.expected_seconds(Direction::kDownload, 5000),
                   channel.expected_seconds(Direction::kDownload, 5000));
}

TEST(Channel, TransferWithoutInjectorIsFaultFree) {
  Channel channel(CommPlatform::kHspa);
  std::vector<std::uint8_t> bytes(64, 0xab);
  const auto original = bytes;
  for (int i = 0; i < 50; ++i) {
    const auto outcome = channel.transfer(Direction::kDownload, bytes);
    EXPECT_TRUE(outcome.delivered());
    EXPECT_FALSE(outcome.fault.any());
  }
  EXPECT_EQ(bytes, original);
}

TEST(Channel, TransferConsultsAttachedInjector) {
  FaultOptions fault;
  fault.up.drop = 1.0;
  FaultInjector injector(fault);
  Channel channel(CommPlatform::kLte);
  channel.set_fault_injector(&injector);
  std::vector<std::uint8_t> bytes(32);
  const auto outcome = channel.transfer(Direction::kUpload, bytes);
  EXPECT_FALSE(outcome.delivered());
  EXPECT_TRUE(outcome.fault.dropped);
  EXPECT_EQ(injector.counts(Direction::kUpload).dropped, 1u);

  channel.set_fault_injector(nullptr);
  EXPECT_TRUE(channel.transfer(Direction::kUpload, bytes).delivered());
  EXPECT_EQ(injector.counts(Direction::kUpload).messages, 1u);
}

TEST(Channel, InjectedDelayExtendsTransferTime) {
  FaultOptions fault;
  fault.down.delay = 1.0;
  fault.down.delay_min_sec = 1.0;
  fault.down.delay_max_sec = 2.0;
  FaultInjector injector(fault);
  ChannelOptions options;
  options.jitter_fraction = 0.0;
  Channel channel(CommPlatform::kLte, options);
  channel.set_fault_injector(&injector);
  std::vector<std::uint8_t> bytes(100);
  const double baseline =
      channel.expected_seconds(Direction::kDownload, bytes.size());
  const auto outcome = channel.transfer(Direction::kDownload, bytes);
  EXPECT_GE(outcome.seconds, baseline + 1.0);
  EXPECT_LE(outcome.seconds, baseline + 2.0 + 1e-12);
  EXPECT_NEAR(outcome.seconds, baseline + outcome.fault.extra_delay_sec,
              1e-12);
}

TEST(Channel, InjectedFaultsAllLandInMetrics) {
  // Every fault the injector reports through the channel must be visible
  // in the exported counters: injected == counted.
  FaultOptions fault;
  fault.up.drop = 0.3;
  fault.up.corrupt = 0.3;
  fault.down.drop = 0.2;
  fault.down.delay = 0.4;
  fault.seed = 77;
  FaultInjector injector(fault);
  obs::MetricsRegistry registry;
  injector.set_metrics(&registry);
  Channel channel(CommPlatform::kLte);
  channel.set_metrics(&registry);
  channel.set_fault_injector(&injector);

  std::uint64_t observed_up_faults = 0;
  std::uint64_t observed_down_faults = 0;
  for (int i = 0; i < 400; ++i) {
    std::vector<std::uint8_t> up(64, 0x5a);
    std::vector<std::uint8_t> down(256, 0xa5);
    const auto up_outcome = channel.transfer(Direction::kUpload, up);
    const auto down_outcome = channel.transfer(Direction::kDownload, down);
    observed_up_faults += up_outcome.fault.any() ? 1 : 0;
    observed_down_faults += down_outcome.fault.any() ? 1 : 0;
  }
  ASSERT_GT(observed_up_faults, 0u);
  ASSERT_GT(observed_down_faults, 0u);

  for (Direction direction : {Direction::kUpload, Direction::kDownload}) {
    const FaultCounts& counts = injector.counts(direction);
    const char* dir = direction_name(direction);
    const std::uint64_t counted =
        registry
            .counter("emap_net_faults_total",
                     {{"direction", dir}, {"kind", "drop"}})
            .value() +
        registry
            .counter("emap_net_faults_total",
                     {{"direction", dir}, {"kind", "corrupt"}})
            .value() +
        registry
            .counter("emap_net_faults_total",
                     {{"direction", dir}, {"kind", "duplicate"}})
            .value() +
        registry
            .counter("emap_net_faults_total",
                     {{"direction", dir}, {"kind", "reorder"}})
            .value() +
        registry
            .counter("emap_net_faults_total",
                     {{"direction", dir}, {"kind", "delay"}})
            .value();
    EXPECT_EQ(counted, counts.total_faults());
    // Dropped messages still occupied the link, so the channel's message
    // counter covers every send.
    EXPECT_EQ(registry
                  .counter("emap_net_messages_total", {{"direction", dir}})
                  .value(),
              counts.messages);
  }
}

}  // namespace
}  // namespace emap::net
