#include "emap/net/channel.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::net {
namespace {

TEST(Channel, LineSecondsIsBitsOverRate) {
  // 1250 bytes = 10000 bits at 10 Mbps -> 1 ms.
  EXPECT_NEAR(Channel::line_seconds(1250, 10.0), 1e-3, 1e-12);
}

TEST(Channel, LineSecondsRejectsZeroRate) {
  EXPECT_THROW(Channel::line_seconds(100, 0.0), InvalidArgument);
}

TEST(Channel, UploadIncludesLatencyByDefault) {
  Channel channel(CommPlatform::kLte);
  const double latency =
      platform_params(CommPlatform::kLte).latency_ms * 1e-3;
  EXPECT_GT(channel.upload_seconds(100), latency);
}

TEST(Channel, SerializationOnlyModeExcludesLatency) {
  ChannelOptions options;
  options.include_latency = false;
  options.framing_overhead_bytes = 0;
  Channel channel(CommPlatform::kLte, options);
  const double expected = Channel::line_seconds(
      512, platform_params(CommPlatform::kLte).uplink_mbps);
  EXPECT_NEAR(channel.upload_seconds(512), expected, 1e-12);
}

TEST(Channel, PaperUploadConstraintHolds) {
  // 256 samples (512 bytes + framing) must go up in < 1 ms on 4G-era
  // links (paper Fig. 4a).
  ChannelOptions options;
  options.include_latency = false;
  for (CommPlatform platform :
       {CommPlatform::kLte, CommPlatform::kLteAdvanced,
        CommPlatform::kWimaxR2}) {
    Channel channel(platform, options);
    EXPECT_LT(channel.upload_seconds(512 + 16), 1e-3)
        << platform_name(platform);
  }
}

TEST(Channel, PaperDownloadConstraintHolds) {
  // 100 signal-sets (~100 x 2 kB) must come down in < 200 ms on 4G-era
  // links (paper Fig. 4b).
  ChannelOptions options;
  options.include_latency = false;
  const std::size_t payload = 100 * (1000 * 2 + 18);
  for (CommPlatform platform :
       {CommPlatform::kLte, CommPlatform::kLteAdvanced,
        CommPlatform::kWimaxR2}) {
    Channel channel(platform, options);
    EXPECT_LT(channel.download_seconds(payload), 0.2)
        << platform_name(platform);
  }
}

TEST(Channel, DownloadFasterThanUploadForSamePayload) {
  ChannelOptions options;
  options.include_latency = false;
  for (CommPlatform platform : kAllPlatforms) {
    Channel channel(platform, options);
    EXPECT_LT(channel.download_seconds(10000),
              channel.upload_seconds(10000));
  }
}

TEST(Channel, TransferTimeMonotoneInPayload) {
  Channel channel(CommPlatform::kHspa);
  EXPECT_LT(channel.upload_seconds(100), channel.upload_seconds(10000));
}

TEST(Channel, JitterStaysWithinFraction) {
  ChannelOptions options;
  options.include_latency = false;
  options.framing_overhead_bytes = 0;
  options.jitter_fraction = 0.2;
  Channel channel(CommPlatform::kLte, options, /*jitter_seed=*/9);
  const double nominal = Channel::line_seconds(
      10000, platform_params(CommPlatform::kLte).uplink_mbps);
  for (int i = 0; i < 100; ++i) {
    const double t = channel.upload_seconds(10000);
    EXPECT_GE(t, nominal * 0.8 - 1e-15);
    EXPECT_LE(t, nominal * 1.2 + 1e-15);
  }
}

TEST(Channel, RejectsBadJitter) {
  ChannelOptions options;
  options.jitter_fraction = 1.5;
  EXPECT_THROW(Channel(CommPlatform::kLte, options), InvalidArgument);
}

}  // namespace
}  // namespace emap::net
