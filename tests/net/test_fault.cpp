#include "emap/net/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/obs/metrics.hpp"

namespace emap::net {
namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return bytes;
}

TEST(FaultInjector, DefaultOptionsInjectNothing) {
  FaultInjector injector;
  auto bytes = payload(64);
  const auto original = bytes;
  for (int i = 0; i < 200; ++i) {
    const FaultPlan plan = injector.apply(Direction::kUpload, bytes);
    EXPECT_FALSE(plan.any());
  }
  EXPECT_EQ(bytes, original);
  EXPECT_EQ(injector.counts(Direction::kUpload).total_faults(), 0u);
  EXPECT_EQ(injector.counts(Direction::kUpload).messages, 200u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultOptions options;
  options.up.drop = 0.2;
  options.up.corrupt = 0.2;
  options.up.duplicate = 0.1;
  options.up.delay = 0.3;
  options.down = options.up;
  options.seed = 1234;

  FaultInjector a(options);
  FaultInjector b(options);
  for (int i = 0; i < 500; ++i) {
    auto bytes_a = payload(32);
    auto bytes_b = payload(32);
    const Direction direction =
        (i % 2 == 0) ? Direction::kUpload : Direction::kDownload;
    const FaultPlan pa = a.apply(direction, bytes_a);
    const FaultPlan pb = b.apply(direction, bytes_b);
    EXPECT_EQ(pa.dropped, pb.dropped);
    EXPECT_EQ(pa.corrupted, pb.corrupted);
    EXPECT_EQ(pa.duplicated, pb.duplicated);
    EXPECT_EQ(pa.reordered, pb.reordered);
    EXPECT_DOUBLE_EQ(pa.extra_delay_sec, pb.extra_delay_sec);
    EXPECT_EQ(bytes_a, bytes_b);
  }
}

TEST(FaultInjector, DrawCursorRewindsWithState) {
  // The draw cursor labels the RNG stream position: 6 draws per message on
  // the fixed schedule, plus 2 per corruption bit flip.  restore() must
  // rewind cursor and RNG together so the replayed schedule — and the
  // cursor audit trail — match the original run exactly.
  FaultOptions options;
  options.up.drop = 0.2;
  options.up.corrupt = 0.3;
  options.down.delay = 0.4;
  options.seed = 99;
  FaultInjector injector(options);
  EXPECT_EQ(injector.draws(Direction::kUpload), 0u);
  EXPECT_EQ(injector.draws(Direction::kDownload), 0u);

  for (int i = 0; i < 10; ++i) {
    auto bytes = payload(16);
    injector.apply(Direction::kUpload, bytes);
    injector.apply(Direction::kDownload, bytes);
  }
  // Every message consumes the fixed six-draw schedule; corrupted uploads
  // consume two more per flipped bit on top.
  EXPECT_GE(injector.draws(Direction::kUpload), 60u);
  EXPECT_EQ(injector.draws(Direction::kDownload), 60u);

  const FaultInjectorState snapshot = injector.save();
  std::vector<FaultPlan> first_pass;
  std::vector<std::vector<std::uint8_t>> first_payloads;
  for (int i = 0; i < 20; ++i) {
    auto bytes = payload(16);
    first_pass.push_back(injector.apply(Direction::kUpload, bytes));
    first_payloads.push_back(bytes);
  }
  const std::uint64_t cursor_after = injector.draws(Direction::kUpload);

  injector.restore(snapshot);
  EXPECT_EQ(injector.draws(Direction::kUpload), snapshot.up_draws);
  EXPECT_EQ(injector.draws(Direction::kDownload), snapshot.down_draws);
  for (int i = 0; i < 20; ++i) {
    auto bytes = payload(16);
    const FaultPlan replayed = injector.apply(Direction::kUpload, bytes);
    EXPECT_EQ(replayed.dropped, first_pass[static_cast<std::size_t>(i)].dropped);
    EXPECT_EQ(replayed.corrupted,
              first_pass[static_cast<std::size_t>(i)].corrupted);
    EXPECT_EQ(replayed.duplicated,
              first_pass[static_cast<std::size_t>(i)].duplicated);
    EXPECT_DOUBLE_EQ(replayed.extra_delay_sec,
                     first_pass[static_cast<std::size_t>(i)].extra_delay_sec);
    EXPECT_EQ(bytes, first_payloads[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(injector.draws(Direction::kUpload), cursor_after);
}

TEST(FaultInjector, DirectionsAreIndependentStreams) {
  // The schedule for message N of one direction must not change when the
  // other direction carries more or fewer messages in between.
  FaultOptions options;
  options.up.drop = 0.3;
  options.down.drop = 0.3;

  FaultInjector interleaved(options);
  FaultInjector upload_only(options);
  std::vector<std::uint8_t> empty;
  std::vector<bool> interleaved_drops;
  std::vector<bool> solo_drops;
  for (int i = 0; i < 100; ++i) {
    interleaved_drops.push_back(
        interleaved.apply(Direction::kUpload, empty).dropped);
    interleaved.apply(Direction::kDownload, empty);  // extra traffic
    solo_drops.push_back(
        upload_only.apply(Direction::kUpload, empty).dropped);
  }
  EXPECT_EQ(interleaved_drops, solo_drops);
}

TEST(FaultInjector, CorruptFlipsBitsInPlace) {
  FaultOptions options;
  options.up.corrupt = 1.0;
  options.up.corrupt_bits = 3;
  FaultInjector injector(options);
  auto bytes = payload(128);
  const auto original = bytes;
  const FaultPlan plan = injector.apply(Direction::kUpload, bytes);
  EXPECT_TRUE(plan.corrupted);
  EXPECT_FALSE(plan.dropped);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(bytes[i] ^ original[i]);
    while (diff != 0) {
      flipped += diff & 1u;
      diff = static_cast<std::uint8_t>(diff >> 1);
    }
  }
  EXPECT_GE(flipped, 1u);
  EXPECT_LE(flipped, 3u);
}

TEST(FaultInjector, CorruptWithoutPayloadDegradesToDrop) {
  FaultOptions options;
  options.down.corrupt = 1.0;
  FaultInjector injector(options);
  const FaultPlan plan = injector.apply(Direction::kDownload, {});
  EXPECT_TRUE(plan.dropped);
  EXPECT_TRUE(plan.lost());
}

TEST(FaultInjector, DropSuppressesOtherFaults) {
  FaultOptions options;
  options.up.drop = 1.0;
  options.up.corrupt = 1.0;
  options.up.duplicate = 1.0;
  options.up.delay = 1.0;
  FaultInjector injector(options);
  auto bytes = payload(16);
  const auto original = bytes;
  const FaultPlan plan = injector.apply(Direction::kUpload, bytes);
  EXPECT_TRUE(plan.dropped);
  EXPECT_FALSE(plan.corrupted);
  EXPECT_FALSE(plan.duplicated);
  EXPECT_DOUBLE_EQ(plan.extra_delay_sec, 0.0);
  EXPECT_EQ(bytes, original);
}

TEST(FaultInjector, DelayStaysWithinConfiguredRange) {
  FaultOptions options;
  options.down.delay = 1.0;
  options.down.delay_min_sec = 0.1;
  options.down.delay_max_sec = 0.2;
  FaultInjector injector(options);
  for (int i = 0; i < 200; ++i) {
    const FaultPlan plan = injector.apply(Direction::kDownload, {});
    EXPECT_TRUE(plan.any());
    EXPECT_GE(plan.extra_delay_sec, 0.1);
    EXPECT_LE(plan.extra_delay_sec, 0.2);
  }
  EXPECT_EQ(injector.counts(Direction::kDownload).delayed, 200u);
}

TEST(FaultInjector, CountsMatchObservedPlans) {
  FaultOptions options;
  options.up.drop = 0.15;
  options.up.corrupt = 0.15;
  options.up.duplicate = 0.15;
  options.up.reorder = 0.10;
  options.up.delay = 0.15;
  options.seed = 99;
  FaultInjector injector(options);
  FaultCounts expected;
  for (int i = 0; i < 1000; ++i) {
    auto bytes = payload(8);
    const FaultPlan plan = injector.apply(Direction::kUpload, bytes);
    ++expected.messages;
    expected.dropped += plan.dropped ? 1 : 0;
    expected.corrupted += plan.corrupted ? 1 : 0;
    expected.duplicated += plan.duplicated ? 1 : 0;
    expected.reordered += plan.reordered ? 1 : 0;
    expected.delayed += plan.extra_delay_sec > 0.0 ? 1 : 0;
  }
  const FaultCounts& counts = injector.counts(Direction::kUpload);
  EXPECT_EQ(counts.messages, expected.messages);
  EXPECT_EQ(counts.dropped, expected.dropped);
  EXPECT_EQ(counts.corrupted, expected.corrupted);
  EXPECT_EQ(counts.duplicated, expected.duplicated);
  EXPECT_EQ(counts.reordered, expected.reordered);
  EXPECT_EQ(counts.delayed, expected.delayed);
  EXPECT_GT(counts.total_faults(), 0u);
}

TEST(FaultInjector, MetricsMirrorCounts) {
  FaultOptions options;
  options.up.drop = 0.3;
  options.down.corrupt = 0.3;
  options.down.delay = 0.3;
  FaultInjector injector(options);
  obs::MetricsRegistry registry;
  injector.set_metrics(&registry);
  for (int i = 0; i < 300; ++i) {
    auto up = payload(16);
    auto down = payload(16);
    injector.apply(Direction::kUpload, up);
    injector.apply(Direction::kDownload, down);
  }
  const auto up_counts = injector.counts(Direction::kUpload);
  const auto down_counts = injector.counts(Direction::kDownload);
  EXPECT_EQ(registry
                .counter("emap_net_faults_total",
                         {{"direction", "up"}, {"kind", "drop"}})
                .value(),
            up_counts.dropped);
  EXPECT_EQ(registry
                .counter("emap_net_faults_total",
                         {{"direction", "down"}, {"kind", "corrupt"}})
                .value(),
            down_counts.corrupted);
  EXPECT_EQ(registry
                .counter("emap_net_faults_total",
                         {{"direction", "down"}, {"kind", "delay"}})
                .value(),
            down_counts.delayed);
}

TEST(FaultOptions, ValidateRejectsBadProbabilities) {
  FaultOptions options;
  options.up.drop = 1.5;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = FaultOptions{};
  options.down.corrupt = -0.1;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = FaultOptions{};
  options.up.delay_min_sec = 0.5;
  options.up.delay_max_sec = 0.1;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = FaultOptions{};
  options.up.corrupt = 0.5;
  options.up.corrupt_bits = 0;
  EXPECT_THROW(options.validate(), InvalidArgument);
}

}  // namespace
}  // namespace emap::net
