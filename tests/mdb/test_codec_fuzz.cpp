// Mutation fuzzing of the MDB codec: random byte flips must be detected
// (CRC/framing) or produce a structurally valid record — never crash.
#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/mdb/store.hpp"
#include "support/test_util.hpp"

namespace emap::mdb {
namespace {

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RecordMutationsDetectedOrHarmless) {
  SignalSet set;
  set.id = GetParam();
  set.anomalous = true;
  set.source = "fuzz";
  set.samples = testing::noise(GetParam(), kSignalSetLength);
  const auto bytes = encode_record(set);

  Rng rng(GetParam() * 7919);
  int detected = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    auto mutated = bytes;
    const auto at = rng.uniform_index(mutated.size());
    const auto bit = rng.uniform_index(8);
    mutated[at] ^= static_cast<std::uint8_t>(1u << bit);
    Decoder decoder(mutated);
    try {
      (void)decoder.read_record();
    } catch (const CorruptData&) {
      ++detected;
    }
  }
  // Single-bit flips inside the payload or CRC are always caught; flips in
  // the (unprotected) length prefix are caught by framing.  Everything must
  // be detected for single-bit mutations.
  EXPECT_EQ(detected, trials);
}

TEST_P(CodecFuzz, StoreMutationsDetectedOrHarmless) {
  MdbStore store;
  for (int i = 0; i < 3; ++i) {
    SignalSet set;
    set.samples = testing::noise(GetParam() + static_cast<std::uint64_t>(i),
                                 kSignalSetLength);
    store.insert(std::move(set));
  }
  const auto bytes = store.encode();
  Rng rng(GetParam() * 104729);
  for (int trial = 0; trial < 40; ++trial) {
    auto mutated = bytes;
    const auto at = rng.uniform_index(mutated.size());
    mutated[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    try {
      const auto decoded = MdbStore::decode(mutated);
      // If it decoded, the store-level invariants must still hold.
      for (const auto& record : decoded.all()) {
        EXPECT_EQ(record.samples.size(), decoded.info().slice_length);
      }
    } catch (const CorruptData&) {
      // expected
    }
  }
}

TEST_P(CodecFuzz, RandomGarbageNeverDecodes) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> garbage(rng.uniform_index(4096) + 16);
  for (auto& byte : garbage) {
    byte = static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  EXPECT_THROW(MdbStore::decode(garbage), CorruptData);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace emap::mdb
