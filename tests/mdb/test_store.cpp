#include "emap/mdb/store.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::mdb {
namespace {

SignalSet make_set(bool anomalous, const std::string& source = "corpus-a") {
  static std::uint64_t salt = 0;
  SignalSet set;
  set.anomalous = anomalous;
  set.source = source;
  set.samples = testing::noise(++salt, kSignalSetLength);
  return set;
}

TEST(Store, InsertAssignsSequentialIds) {
  MdbStore store;
  EXPECT_EQ(store.insert(make_set(false)), 1u);
  EXPECT_EQ(store.insert(make_set(true)), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(Store, InsertRespectsExplicitIds) {
  MdbStore store;
  auto set = make_set(false);
  set.id = 50;
  EXPECT_EQ(store.insert(std::move(set)), 50u);
  EXPECT_EQ(store.insert(make_set(false)), 51u);
}

TEST(Store, InsertRejectsWrongLength) {
  MdbStore store;
  SignalSet set;
  set.samples.resize(10);
  EXPECT_THROW(store.insert(std::move(set)), InvalidArgument);
}

TEST(Store, AtRejectsOutOfRange) {
  MdbStore store;
  store.insert(make_set(false));
  EXPECT_NO_THROW(store.at(0));
  EXPECT_THROW(store.at(1), InvalidArgument);
}

TEST(Store, LabelQueries) {
  MdbStore store;
  store.insert(make_set(false));
  store.insert(make_set(true));
  store.insert(make_set(true));
  EXPECT_EQ(store.count_anomalous(), 2u);
  EXPECT_EQ(store.query_label(true).size(), 2u);
  EXPECT_EQ(store.query_label(false).size(), 1u);
}

TEST(Store, SourceQueries) {
  MdbStore store;
  store.insert(make_set(false, "a"));
  store.insert(make_set(false, "b"));
  store.insert(make_set(false, "a"));
  EXPECT_EQ(store.query_source("a").size(), 2u);
  EXPECT_EQ(store.query_source("b").size(), 1u);
  EXPECT_TRUE(store.query_source("c").empty());
}

TEST(Store, ShardsPartitionExactly) {
  MdbStore store;
  for (int i = 0; i < 10; ++i) {
    store.insert(make_set(false));
  }
  const auto shards = store.shards(3);
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : shards) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    covered += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(Store, ShardsOfEmptyStoreIsEmpty) {
  MdbStore store;
  EXPECT_TRUE(store.shards(4).empty());
}

TEST(Store, EncodeDecodeRoundTrip) {
  MdbStore store(StoreInfo{256.0, kSignalSetLength});
  store.insert(make_set(true, "physionet"));
  store.insert(make_set(false, "tuh"));
  const auto decoded = MdbStore::decode(store.encode());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded.at(0).source, "physionet");
  EXPECT_TRUE(decoded.at(0).anomalous);
  EXPECT_EQ(decoded.at(1).source, "tuh");
  EXPECT_DOUBLE_EQ(decoded.info().base_fs_hz, 256.0);
}

TEST(Store, DecodedStoreContinuesIdSequence) {
  MdbStore store;
  store.insert(make_set(false));
  store.insert(make_set(false));
  auto decoded = MdbStore::decode(store.encode());
  EXPECT_EQ(decoded.insert(make_set(false)), 3u);
}

TEST(Store, SaveLoadDiskRoundTrip) {
  testing::TempDir dir("store");
  const auto path = dir.path() / "mdb.bin";
  MdbStore store;
  store.insert(make_set(true));
  store.save(path);
  const auto loaded = MdbStore::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.at(0).anomalous);
}

TEST(Store, LoadMissingFileThrows) {
  EXPECT_THROW(MdbStore::load("/nonexistent/mdb.bin"), IoError);
}

TEST(Store, DecodeRejectsBadMagic) {
  MdbStore store;
  store.insert(make_set(false));
  auto bytes = store.encode();
  bytes[0] ^= 0xff;
  EXPECT_THROW(MdbStore::decode(bytes), CorruptData);
}

TEST(Store, DecodeRejectsCorruptRecord) {
  MdbStore store;
  store.insert(make_set(false));
  auto bytes = store.encode();
  bytes[bytes.size() / 2] ^= 0xff;
  EXPECT_THROW(MdbStore::decode(bytes), CorruptData);
}

TEST(Store, DecodeRejectsTrailingGarbage) {
  MdbStore store;
  store.insert(make_set(false));
  auto bytes = store.encode();
  bytes.push_back(0x00);
  EXPECT_THROW(MdbStore::decode(bytes), CorruptData);
}

TEST(Store, DecodeRejectsTruncation) {
  MdbStore store;
  store.insert(make_set(false));
  auto bytes = store.encode();
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW(MdbStore::decode(bytes), CorruptData);
}

}  // namespace
}  // namespace emap::mdb
