#include "emap/mdb/builder.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/dsp/fft.hpp"
#include "emap/edf/edf.hpp"
#include "support/test_util.hpp"

namespace emap::mdb {
namespace {

synth::Recording make_recording(synth::AnomalyClass cls, double fs,
                                double duration = 60.0) {
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = cls;
  spec.fs = fs;
  spec.duration_sec = duration;
  spec.onset_sec = duration * 0.8;
  spec.seed = 21;
  return gen.generate(spec);
}

TEST(Builder, SliceCountMatchesArithmetic) {
  MdbBuilder builder;
  const auto recording = make_recording(synth::AnomalyClass::kNormal, 256.0);
  const auto inserted = builder.add_recording(recording, "test", 0);
  // 60 s at 256 Hz = 15360 samples; minus 100 transient; /1000 slices.
  EXPECT_EQ(inserted, (15360u - 100u) / 1000u);
  EXPECT_EQ(builder.store().size(), inserted);
}

TEST(Builder, ResamplesNativeRates) {
  MdbBuilder builder;
  const auto recording = make_recording(synth::AnomalyClass::kNormal, 512.0);
  const auto inserted = builder.add_recording(recording, "bnci", 0);
  // Same 60 s of content regardless of native rate.
  EXPECT_EQ(inserted, (15360u - 100u) / 1000u);
  for (const auto& set : builder.store().all()) {
    EXPECT_EQ(set.samples.size(), kSignalSetLength);
  }
}

TEST(Builder, SlicesAreBandlimited) {
  MdbBuilder builder;
  builder.add_recording(make_recording(synth::AnomalyClass::kNormal, 100.0),
                        "warsaw", 0);
  for (const auto& set : builder.store().all()) {
    const double in_band = dsp::band_power(set.samples, 256.0, 11.0, 40.0);
    const double below = dsp::band_power(set.samples, 256.0, 0.1, 6.0);
    const double above = dsp::band_power(set.samples, 256.0, 60.0, 127.0);
    EXPECT_GT(in_band, 10.0 * (below + above));
  }
}

TEST(Builder, LabelsFollowAnnotations) {
  MdbBuilder builder;
  const auto recording =
      make_recording(synth::AnomalyClass::kSeizure, 256.0, 300.0);
  builder.add_recording(recording, "physionet", 3);
  std::size_t anomalous = 0;
  for (const auto& set : builder.store().all()) {
    EXPECT_EQ(set.source, "physionet");
    EXPECT_EQ(set.source_recording, 3u);
    const double mid = set.start_sec + 500.0 / 256.0;
    EXPECT_EQ(set.anomalous, recording.anomalous_at(mid))
        << "slice at " << set.start_sec;
    if (set.anomalous) {
      ++anomalous;
    }
  }
  EXPECT_GT(anomalous, 0u);
  EXPECT_LT(anomalous, builder.store().size());
}

TEST(Builder, ClassTagPropagates) {
  MdbBuilder builder;
  builder.add_recording(make_recording(synth::AnomalyClass::kStroke, 256.0),
                        "bnci", 0);
  for (const auto& set : builder.store().all()) {
    EXPECT_EQ(set.class_tag,
              static_cast<std::uint8_t>(synth::AnomalyClass::kStroke));
  }
}

TEST(Builder, StartSecReflectsSlicePosition) {
  MdbBuilder builder;
  builder.add_recording(make_recording(synth::AnomalyClass::kNormal, 256.0),
                        "test", 0);
  const auto& store = builder.store();
  for (std::size_t i = 1; i < store.size(); ++i) {
    EXPECT_NEAR(store.at(i).start_sec - store.at(i - 1).start_sec,
                1000.0 / 256.0, 1e-9);
  }
}

TEST(Builder, OverlappingStrideProducesMoreSlices) {
  BuilderConfig config;
  config.slice_stride = 500;
  MdbBuilder overlapping(config);
  MdbBuilder plain;
  const auto recording = make_recording(synth::AnomalyClass::kNormal, 256.0);
  const auto many = overlapping.add_recording(recording, "t", 0);
  const auto few = plain.add_recording(recording, "t", 0);
  EXPECT_GT(many, 1.8 * few);
}

TEST(Builder, EmptySignalInsertsNothing) {
  MdbBuilder builder;
  EXPECT_EQ(builder.add_signal({}, 256.0, "t", 0, nullptr, 0), 0u);
}

TEST(Builder, TooShortSignalInsertsNothing) {
  MdbBuilder builder;
  const auto samples = testing::noise(1, 500);
  EXPECT_EQ(builder.add_signal(samples, 256.0, "t", 0, nullptr, 0), 0u);
}

TEST(Builder, NullLabelCallbackMeansNormal) {
  MdbBuilder builder;
  const auto samples = testing::noise(2, 5000);
  builder.add_signal(samples, 256.0, "t", 0, nullptr, 0);
  EXPECT_EQ(builder.store().count_anomalous(), 0u);
}

TEST(Builder, RejectsBadConfig) {
  BuilderConfig config;
  config.slice_length = 0;
  EXPECT_THROW(MdbBuilder{config}, InvalidArgument);
  config = BuilderConfig{};
  config.anomalous_fraction = 1.5;
  EXPECT_THROW(MdbBuilder{config}, InvalidArgument);
}

TEST(Builder, IngestsEdfFiles) {
  testing::TempDir dir("builder");
  const auto path = dir.path() / "rec.edf";
  edf::EdfFile file;
  file.sample_rate_hz = 256.0;
  edf::EdfChannel channel;
  channel.physical_min = -300.0;
  channel.physical_max = 300.0;
  channel.samples = make_recording(synth::AnomalyClass::kNormal, 256.0)
                        .samples;
  file.channels.push_back(channel);
  edf::write_edf(path, file);

  MdbBuilder builder;
  const auto inserted = builder.add_edf(
      path, "edf-corpus", 0, [](double) { return false; }, 0);
  EXPECT_GT(inserted, 10u);
  EXPECT_EQ(builder.store().query_source("edf-corpus").size(), inserted);
}

}  // namespace
}  // namespace emap::mdb
