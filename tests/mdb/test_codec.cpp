#include "emap/mdb/codec.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::mdb {
namespace {

SignalSet make_set(std::uint64_t id = 1) {
  SignalSet set;
  set.id = id;
  set.anomalous = true;
  set.class_tag = 2;
  set.source = "physionet-chbmit";
  set.source_recording = 7;
  set.start_sec = 12.5;
  set.samples = testing::noise(id, kSignalSetLength, 5.0);
  return set;
}

TEST(Codec, RecordRoundTrip) {
  const auto set = make_set();
  const auto bytes = encode_record(set);
  Decoder decoder(bytes);
  const auto decoded = decoder.read_record();
  EXPECT_EQ(decoded.id, set.id);
  EXPECT_EQ(decoded.anomalous, set.anomalous);
  EXPECT_EQ(decoded.class_tag, set.class_tag);
  EXPECT_EQ(decoded.source, set.source);
  EXPECT_EQ(decoded.source_recording, set.source_recording);
  EXPECT_DOUBLE_EQ(decoded.start_sec, set.start_sec);
  ASSERT_EQ(decoded.samples.size(), set.samples.size());
  for (std::size_t i = 0; i < set.samples.size(); ++i) {
    EXPECT_NEAR(decoded.samples[i], set.samples[i], 1e-5);  // f32 storage
  }
  EXPECT_TRUE(decoder.at_end());
}

TEST(Codec, MultipleRecordsDecodeInOrder) {
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto record = encode_record(make_set(id));
    bytes.insert(bytes.end(), record.begin(), record.end());
  }
  Decoder decoder(bytes);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(decoder.read_record().id, id);
  }
  EXPECT_TRUE(decoder.at_end());
}

TEST(Codec, CrcDetectsPayloadCorruption) {
  auto bytes = encode_record(make_set());
  bytes[20] ^= 0xff;  // flip a payload byte
  Decoder decoder(bytes);
  EXPECT_THROW(decoder.read_record(), CorruptData);
}

TEST(Codec, CrcDetectsTrailerCorruption) {
  auto bytes = encode_record(make_set());
  bytes[bytes.size() - 1] ^= 0x01;
  Decoder decoder(bytes);
  EXPECT_THROW(decoder.read_record(), CorruptData);
}

TEST(Codec, TruncatedRecordThrows) {
  auto bytes = encode_record(make_set());
  bytes.resize(bytes.size() / 2);
  Decoder decoder(bytes);
  EXPECT_THROW(decoder.read_record(), CorruptData);
}

TEST(Codec, EveryTruncationPointFailsCleanly) {
  // Fuzz-style sweep: no truncation length may crash or mis-decode.
  const auto bytes = encode_record(make_set());
  for (std::size_t cut = 0; cut < bytes.size(); cut += 97) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    Decoder decoder(truncated);
    EXPECT_THROW(decoder.read_record(), CorruptData) << "cut=" << cut;
  }
}

TEST(Codec, PrimitiveRoundTrip) {
  Encoder encoder;
  encoder.write_u8(0xAB);
  encoder.write_u16(0xBEEF);
  encoder.write_u32(0xDEADBEEF);
  encoder.write_u64(0x0123456789ABCDEFULL);
  encoder.write_f32(3.5f);
  encoder.write_f64(-2.25);
  encoder.write_string("hello");
  const auto bytes = encoder.take();
  Decoder decoder(bytes);
  EXPECT_EQ(decoder.read_u8(), 0xAB);
  EXPECT_EQ(decoder.read_u16(), 0xBEEF);
  EXPECT_EQ(decoder.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(decoder.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(decoder.read_f32(), 3.5f);
  EXPECT_DOUBLE_EQ(decoder.read_f64(), -2.25);
  EXPECT_EQ(decoder.read_string(), "hello");
  EXPECT_TRUE(decoder.at_end());
}

TEST(Codec, ReadPastEndThrows) {
  const std::vector<std::uint8_t> bytes = {1, 2};
  Decoder decoder(bytes);
  EXPECT_THROW(decoder.read_u32(), CorruptData);
}

}  // namespace
}  // namespace emap::mdb
