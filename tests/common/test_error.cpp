#include "emap/common/error.hpp"

#include <gtest/gtest.h>

namespace emap {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(require(true, "should not throw"));
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "boom"), InvalidArgument);
}

TEST(Error, RequireMessagePropagates) {
  try {
    require(false, "specific message");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& error) {
    EXPECT_STREQ(error.what(), "specific message");
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw IoError("io"), Error);
  EXPECT_THROW(throw CorruptData("corrupt"), Error);
  EXPECT_THROW(throw InvalidArgument("bad"), Error);
}

TEST(Error, HierarchyIsCatchableAsRuntimeError) {
  EXPECT_THROW(throw CorruptData("corrupt"), std::runtime_error);
}

}  // namespace
}  // namespace emap
