#include "emap/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace emap {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<long long> parallel_sum{0};
  pool.parallel_for(data.size(), [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      local += data[i];
    }
    parallel_sum.fetch_add(local);
  });
  const long long serial = std::accumulate(data.begin(), data.end(), 0LL);
  EXPECT_EQ(parallel_sum.load(), serial);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace emap
