#include "emap/common/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace emap {
namespace {

TEST(Crc32, StandardCheckValue) {
  const std::string message = "123456789";
  EXPECT_EQ(crc32(message.data(), message.size()), 0xCBF43926u);
}

TEST(Crc32, EmptyMessage) {
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string message = "the quick brown fox jumps over the lazy dog";
  Crc32 incremental;
  incremental.update(message.data(), 10);
  incremental.update(message.data() + 10, message.size() - 10);
  EXPECT_EQ(incremental.value(), crc32(message.data(), message.size()));
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  std::string a = "hello world";
  std::string b = a;
  b[4] ^= 0x01;
  EXPECT_NE(crc32(a.data(), a.size()), crc32(b.data(), b.size()));
}

TEST(Crc32, SensitiveToReordering) {
  const std::string a = "abcd";
  const std::string b = "dcba";
  EXPECT_NE(crc32(a.data(), a.size()), crc32(b.data(), b.size()));
}

}  // namespace
}  // namespace emap
