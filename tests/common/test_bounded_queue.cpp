// BoundedQueue: capacity invariants, FIFO order, close/drain semantics,
// and no-lost/no-duplicated-item property tests under concurrent produce
// and consume.  The concurrent suites are part of the TSan CI job — they
// are the race detector's view of the streaming stage graph's spine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "emap/common/bounded_queue.hpp"

namespace emap {
namespace {

TEST(BoundedQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BoundedQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(BoundedQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(BoundedQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(BoundedQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(BoundedQueue<int>(9).capacity(), 16u);
}

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue.push(i));
  }
  for (int i = 0; i < 8; ++i) {
    auto value = queue.try_pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BoundedQueue, TryPushFailsWhenFullWithoutConsumingTheValue) {
  BoundedQueue<std::vector<int>> queue(2);
  std::vector<int> a{1}, b{2};
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  std::vector<int> c{3, 4, 5};
  EXPECT_FALSE(queue.try_push(c));
  // A failed push must leave the value intact so the caller can retry.
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(BoundedQueue, ShedOldestDiscardsTheStalestItem) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push_shed_oldest(3));
  EXPECT_EQ(queue.shed(), 1u);
  auto first = queue.try_pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 2);  // 1 was shed
  auto second = queue.try_pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 3);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenSignalsShutdown) {
  BoundedQueue<int> queue(8);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_TRUE(queue.closed());
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
  EXPECT_FALSE(queue.pop().has_value());  // closed + drained
}

TEST(BoundedQueue, DepthAccountingStaysWithinCapacity) {
  BoundedQueue<int> queue(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(queue.push(i));
    }
    EXPECT_EQ(queue.depth(), 4u);
    EXPECT_FALSE(queue.try_push(99));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(queue.try_pop().has_value());
    }
    EXPECT_EQ(queue.depth(), 0u);
  }
  EXPECT_LE(queue.max_depth(), queue.capacity());
  EXPECT_EQ(queue.pushed(), 12u);
  EXPECT_EQ(queue.popped(), 12u);
}

// SPSC property: with one producer and one consumer, every pushed value
// arrives exactly once and in push order (the stage-graph FIFO contract
// the FIR stream and the window sequence rely on).
TEST(BoundedQueueConcurrency, SpscPreservesOrderLosesNothing) {
  constexpr std::uint64_t kItems = 200000;
  BoundedQueue<std::uint64_t> queue(8);
  std::vector<std::uint64_t> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    while (auto value = queue.pop()) {
      received.push_back(*value);
    }
  });
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      ASSERT_TRUE(queue.push(i));
    }
    queue.close();
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i) << "out of order at " << i;
  }
  EXPECT_LE(queue.max_depth(), queue.capacity());
}

// MPMC property: N producers x M consumers, every value tagged with its
// producer, no item lost or duplicated (the uplink-worker pool case).
TEST(BoundedQueueConcurrency, MpmcLosesNothingDuplicatesNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  BoundedQueue<std::uint64_t> queue(16);

  std::vector<std::vector<std::uint64_t>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (auto value = queue.pop()) {
        received[c].push_back(*value);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<std::size_t> live_producers{kProducers};
  for (std::size_t producer = 0; producer < kProducers; ++producer) {
    producers.emplace_back([&, producer] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(producer * kPerProducer + i));
      }
      if (live_producers.fetch_sub(1) == 1) {
        queue.close();
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  for (auto& t : consumers) {
    t.join();
  }

  std::vector<std::uint64_t> all;
  for (const auto& chunk : received) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i) << "lost or duplicated item near " << i;
  }
  // Per-producer order is preserved even across competing consumers.
  for (std::size_t c = 0; c < kConsumers; ++c) {
    std::vector<std::uint64_t> last(kProducers, 0);
    std::vector<bool> seen(kProducers, false);
    for (const std::uint64_t value : received[c]) {
      const std::size_t producer = value / kPerProducer;
      if (seen[producer]) {
        EXPECT_GT(value, last[producer]);
      }
      seen[producer] = true;
      last[producer] = value;
    }
  }
  EXPECT_LE(queue.max_depth(), queue.capacity());
  EXPECT_EQ(queue.shed(), 0u);
}

// Shed-oldest under concurrency: the producer never blocks, nothing is
// duplicated, and pushed == popped + shed at the end.
TEST(BoundedQueueConcurrency, ShedOldestConservesItems) {
  constexpr std::uint64_t kItems = 50000;
  BoundedQueue<std::uint64_t> queue(4);
  std::vector<std::uint64_t> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    while (auto value = queue.pop()) {
      received.push_back(*value);
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.push_shed_oldest(i));
  }
  queue.close();
  consumer.join();

  EXPECT_EQ(received.size() + queue.shed(), kItems);
  // Delivered values are strictly increasing: shedding drops the oldest,
  // never reorders or duplicates.
  for (std::size_t i = 1; i < received.size(); ++i) {
    ASSERT_GT(received[i], received[i - 1]);
  }
}

}  // namespace
}  // namespace emap
