#include "emap/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "emap/common/error.hpp"

namespace emap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(5.0, -3.0), InvalidArgument);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(31);
  Rng child1 = parent.fork(5);
  Rng child2 = Rng(31).fork(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace emap
