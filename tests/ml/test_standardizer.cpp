#include "emap/ml/standardizer.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::ml {
namespace {

std::vector<FeatureVector> random_rows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> rows(n);
  for (auto& row : rows) {
    for (std::size_t j = 0; j < kFeatureCount; ++j) {
      row[j] = rng.normal(5.0 * static_cast<double>(j), 2.0);
    }
  }
  return rows;
}

TEST(Standardizer, FitRejectsEmpty) {
  Standardizer standardizer;
  EXPECT_THROW(standardizer.fit({}), InvalidArgument);
}

TEST(Standardizer, TransformBeforeFitThrows) {
  Standardizer standardizer;
  EXPECT_THROW(standardizer.transform(FeatureVector{}), InvalidArgument);
}

TEST(Standardizer, TransformedColumnsAreStandard) {
  const auto rows = random_rows(5000, 1);
  Standardizer standardizer;
  standardizer.fit(rows);
  const auto transformed = standardizer.transform(rows);
  for (std::size_t j = 0; j < kFeatureCount; ++j) {
    double mean = 0.0;
    for (const auto& row : transformed) {
      mean += row[j];
    }
    mean /= static_cast<double>(transformed.size());
    double var = 0.0;
    for (const auto& row : transformed) {
      var += (row[j] - mean) * (row[j] - mean);
    }
    var /= static_cast<double>(transformed.size());
    EXPECT_NEAR(mean, 0.0, 1e-9) << "column " << j;
    EXPECT_NEAR(var, 1.0, 1e-9) << "column " << j;
  }
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  std::vector<FeatureVector> rows(10);
  for (auto& row : rows) {
    row.fill(7.0);
  }
  Standardizer standardizer;
  standardizer.fit(rows);
  const auto transformed = standardizer.transform(rows[0]);
  for (double v : transformed) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Standardizer, ExposesFittedMoments) {
  const auto rows = random_rows(10000, 2);
  Standardizer standardizer;
  standardizer.fit(rows);
  EXPECT_TRUE(standardizer.fitted());
  EXPECT_NEAR(standardizer.means()[2], 10.0, 0.2);
  EXPECT_NEAR(standardizer.stddevs()[2], 2.0, 0.1);
}

}  // namespace
}  // namespace emap::ml
