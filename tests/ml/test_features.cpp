#include "emap/ml/features.hpp"

#include <gtest/gtest.h>

#include "emap/dsp/stats.hpp"
#include "support/test_util.hpp"

namespace emap::ml {
namespace {

TEST(Features, NamesAlignWithCount) {
  EXPECT_EQ(feature_names().size(), kFeatureCount);
}

TEST(Features, ShortWindowYieldsZeros) {
  const std::vector<double> tiny = {1.0, 2.0, 3.0};
  const auto features = extract_features(tiny, 256.0);
  for (double f : features) {
    EXPECT_DOUBLE_EQ(f, 0.0);
  }
}

TEST(Features, AlphaToneLandsInAlphaBand) {
  const auto window = testing::sine(10.0, 256.0, 256, 2.0);
  const auto features = extract_features(window, 256.0);
  EXPECT_GT(features[1], 5.0 * features[0]);  // alpha >> delta/theta
  EXPECT_GT(features[1], 5.0 * features[3]);  // alpha >> high beta
}

TEST(Features, BetaToneLandsInBetaBands) {
  const auto window = testing::sine(20.0, 256.0, 256, 2.0);
  const auto features = extract_features(window, 256.0);
  EXPECT_GT(features[2], 5.0 * features[1]);
}

TEST(Features, StatisticalFeaturesMatchDspHelpers) {
  const auto window = testing::noise(1, 256, 3.0);
  const auto features = extract_features(window, 256.0);
  EXPECT_DOUBLE_EQ(features[4], dsp::line_length(window));
  EXPECT_DOUBLE_EQ(features[5], dsp::variance(window));
  EXPECT_DOUBLE_EQ(features[6], dsp::hjorth_mobility(window));
  EXPECT_DOUBLE_EQ(features[7], dsp::hjorth_complexity(window));
  EXPECT_DOUBLE_EQ(features[8],
                   static_cast<double>(dsp::zero_crossings(window)));
  EXPECT_DOUBLE_EQ(features[9], dsp::rms(window));
}

TEST(Features, LineLengthTracksFrequency) {
  const auto slow = extract_features(testing::sine(5.0, 256.0, 256), 256.0);
  const auto fast = extract_features(testing::sine(40.0, 256.0, 256), 256.0);
  EXPECT_GT(fast[4], 2.0 * slow[4]);
}

TEST(Features, BatchMatchesSingle) {
  std::vector<std::vector<double>> windows = {
      testing::sine(10.0, 256.0, 256),
      testing::noise(2, 256),
  };
  const auto batch = extract_features_batch(windows, 256.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], extract_features(windows[0], 256.0));
  EXPECT_EQ(batch[1], extract_features(windows[1], 256.0));
}

TEST(Features, IctalWindowSeparableFromBackground) {
  // A crude separability check: ictal seizure content has higher line
  // length and variance than calm background at the same amplitude scale.
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.duration_sec = 220.0;
  spec.onset_sec = 200.0;
  spec.seed = 5;
  const auto recording = gen.generate(spec);
  const std::span<const double> calm(recording.samples.data() + 256 * 5, 256);
  const std::span<const double> ictal(
      recording.samples.data() + 256 * 210, 256);
  const auto calm_features = extract_features(calm, 256.0);
  const auto ictal_features = extract_features(ictal, 256.0);
  EXPECT_GT(ictal_features[5], calm_features[5]);  // variance
}

}  // namespace
}  // namespace emap::ml
