#include "emap/ml/roc.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"

namespace emap::ml {
namespace {

TEST(Roc, RejectsDegenerateInputs) {
  EXPECT_THROW(roc_curve({}, {}), InvalidArgument);
  EXPECT_THROW(roc_curve({0.5}, {1, 0}), InvalidArgument);
  EXPECT_THROW(roc_curve({0.5, 0.6}, {1, 1}), InvalidArgument);
}

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(Roc, InvertedSeparationGivesAucZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(Roc, RandomScoresGiveAucHalf) {
  Rng rng(1);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.02);
}

TEST(Roc, AucMatchesMannWhitney) {
  // Small example computed by hand: positives {0.8, 0.4}, negatives
  // {0.6, 0.2}.  Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2)
  // -> 3/4.
  const std::vector<double> scores = {0.8, 0.4, 0.6, 0.2};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.75);
}

TEST(Roc, TiesCountHalf) {
  const std::vector<double> scores = {0.5, 0.5};
  const std::vector<int> labels = {1, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(Roc, CurveIsMonotone) {
  Rng rng(2);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.bernoulli(0.4) ? 1 : 0;
    scores.push_back(rng.normal(label == 1 ? 1.0 : 0.0, 1.0));
    labels.push_back(label);
  }
  const auto curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate,
              curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(Roc, SeparatedGaussiansGiveExpectedAuc) {
  // d' = 1 -> AUC = Phi(1/sqrt(2)) ~ 0.760.
  Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 50000; ++i) {
    const int label = (i % 2);
    scores.push_back(rng.normal(label == 1 ? 1.0 : 0.0, 1.0));
    labels.push_back(label);
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.760, 0.01);
}

}  // namespace
}  // namespace emap::ml
