#include "emap/ml/metrics.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::ml {
namespace {

TEST(Metrics, ConfusionCountsAreCorrect) {
  const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
  const std::vector<int> predicted = {1, 0, 0, 1, 1, 0};
  const auto c = confusion_matrix(truth, predicted);
  EXPECT_EQ(c.true_positive, 2u);
  EXPECT_EQ(c.false_negative, 1u);
  EXPECT_EQ(c.false_positive, 1u);
  EXPECT_EQ(c.true_negative, 2u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(Metrics, AccuracySensitivitySpecificity) {
  Confusion c;
  c.true_positive = 8;
  c.false_negative = 2;
  c.true_negative = 6;
  c.false_positive = 4;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(c.sensitivity(), 0.8);
  EXPECT_DOUBLE_EQ(c.specificity(), 0.6);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.4);
}

TEST(Metrics, EmptyConfusionIsZero) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.sensitivity(), 0.0);
  EXPECT_DOUBLE_EQ(c.specificity(), 0.0);
}

TEST(Metrics, NoPositivesSensitivityIsZero) {
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<int> predicted = {0, 1, 0};
  const auto c = confusion_matrix(truth, predicted);
  EXPECT_DOUBLE_EQ(c.sensitivity(), 0.0);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 1.0 / 3.0);
}

TEST(Metrics, RejectsSizeMismatch) {
  EXPECT_THROW(confusion_matrix({1, 0}, {1}), InvalidArgument);
}

TEST(Metrics, NonBinaryValuesTreatedAsTruthy) {
  const std::vector<int> truth = {2, 0};
  const std::vector<int> predicted = {5, 0};
  const auto c = confusion_matrix(truth, predicted);
  EXPECT_EQ(c.true_positive, 1u);
  EXPECT_EQ(c.true_negative, 1u);
}

}  // namespace
}  // namespace emap::ml
