#include "emap/ml/logistic.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/ml/metrics.hpp"

namespace emap::ml {
namespace {

// Linearly separable blobs on features 0 and 1.
void make_blobs(std::size_t n, std::uint64_t seed,
                std::vector<FeatureVector>& rows, std::vector<int>& labels,
                double separation = 4.0) {
  Rng rng(seed);
  rows.assign(n, FeatureVector{});
  labels.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = (i % 2 == 0) ? 1 : 0;
    labels[i] = label;
    const double center = label == 1 ? separation / 2.0 : -separation / 2.0;
    rows[i][0] = rng.normal(center, 1.0);
    rows[i][1] = rng.normal(-center, 1.0);
  }
}

TEST(Logistic, RejectsBadConfig) {
  LogisticConfig config;
  config.learning_rate = 0.0;
  EXPECT_THROW(LogisticRegression{config}, InvalidArgument);
}

TEST(Logistic, FitRejectsEmptyOrMismatched) {
  LogisticRegression model;
  EXPECT_THROW(model.fit({}, {}), InvalidArgument);
  std::vector<FeatureVector> rows(2);
  std::vector<int> labels(3, 0);
  EXPECT_THROW(model.fit(rows, labels), InvalidArgument);
}

TEST(Logistic, PredictBeforeTrainingThrows) {
  LogisticRegression model;
  EXPECT_THROW(model.predict_proba(FeatureVector{}), InvalidArgument);
}

TEST(Logistic, SeparatesLinearlySeparableData) {
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  make_blobs(400, 3, rows, labels);
  LogisticRegression model;
  model.fit(rows, labels);

  std::vector<FeatureVector> test_rows;
  std::vector<int> test_labels;
  make_blobs(200, 99, test_rows, test_labels);
  std::vector<int> predicted;
  for (const auto& row : test_rows) {
    predicted.push_back(model.predict(row));
  }
  const auto confusion = confusion_matrix(test_labels, predicted);
  EXPECT_GT(confusion.accuracy(), 0.95);
}

TEST(Logistic, ProbabilitiesAreCalibratedDirectionally) {
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  make_blobs(400, 5, rows, labels);
  LogisticRegression model;
  model.fit(rows, labels);
  FeatureVector strongly_positive{};
  strongly_positive[0] = 5.0;
  strongly_positive[1] = -5.0;
  FeatureVector strongly_negative{};
  strongly_negative[0] = -5.0;
  strongly_negative[1] = 5.0;
  EXPECT_GT(model.predict_proba(strongly_positive), 0.9);
  EXPECT_LT(model.predict_proba(strongly_negative), 0.1);
}

TEST(Logistic, DeterministicGivenSeed) {
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  make_blobs(100, 7, rows, labels);
  LogisticRegression a;
  LogisticRegression b;
  a.fit(rows, labels);
  b.fit(rows, labels);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(Logistic, L2ShrinksWeights) {
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  make_blobs(200, 9, rows, labels);
  LogisticConfig weak;
  weak.l2 = 1e-6;
  LogisticConfig strong;
  strong.l2 = 1.0;
  LogisticRegression a{weak};
  LogisticRegression b{strong};
  a.fit(rows, labels);
  b.fit(rows, labels);
  EXPECT_GT(std::abs(a.weights()[0]), std::abs(b.weights()[0]));
}

TEST(Logistic, HandlesSingleClassGracefully) {
  std::vector<FeatureVector> rows(50, FeatureVector{});
  std::vector<int> labels(50, 1);
  LogisticRegression model;
  model.fit(rows, labels);
  EXPECT_GT(model.predict_proba(FeatureVector{}), 0.5);
}

TEST(Logistic, OverlappingClassesStayNearChanceButBounded) {
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  make_blobs(400, 11, rows, labels, /*separation=*/0.2);
  LogisticRegression model;
  model.fit(rows, labels);
  std::vector<int> predicted;
  for (const auto& row : rows) {
    predicted.push_back(model.predict(row));
  }
  const auto confusion = confusion_matrix(labels, predicted);
  EXPECT_GT(confusion.accuracy(), 0.4);
}

}  // namespace
}  // namespace emap::ml
