#include "emap/ml/mlp.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/ml/logistic.hpp"
#include "emap/ml/metrics.hpp"

namespace emap::ml {
namespace {

TEST(Mlp, RejectsBadConfig) {
  MlpConfig config;
  config.hidden_units = 0;
  EXPECT_THROW(Mlp{config}, InvalidArgument);
  config = MlpConfig{};
  config.learning_rate = 0.0;
  EXPECT_THROW(Mlp{config}, InvalidArgument);
}

TEST(Mlp, FitRejectsEmptyOrMismatched) {
  Mlp model;
  EXPECT_THROW(model.fit({}, {}), InvalidArgument);
  std::vector<FeatureVector> rows(2);
  std::vector<int> labels(1, 0);
  EXPECT_THROW(model.fit(rows, labels), InvalidArgument);
}

TEST(Mlp, PredictBeforeTrainingThrows) {
  Mlp model;
  EXPECT_THROW(model.predict_proba(FeatureVector{}), InvalidArgument);
}

TEST(Mlp, SolvesXorUnlikeLogistic) {
  // XOR on features 0/1: the canonical problem a linear model cannot
  // solve and a one-hidden-layer net can.
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    FeatureVector row{};
    const int a = static_cast<int>(rng.bernoulli(0.5));
    const int b = static_cast<int>(rng.bernoulli(0.5));
    row[0] = a ? 1.0 : -1.0;
    row[1] = b ? 1.0 : -1.0;
    // tiny jitter so the dataset isn't 4 exact points
    row[0] += rng.normal(0.0, 0.1);
    row[1] += rng.normal(0.0, 0.1);
    rows.push_back(row);
    labels.push_back(a ^ b);
  }
  MlpConfig config;
  config.hidden_units = 8;
  config.epochs = 800;
  Mlp mlp(config);
  mlp.fit(rows, labels);
  std::vector<int> mlp_pred;
  for (const auto& row : rows) {
    mlp_pred.push_back(mlp.predict(row));
  }
  EXPECT_GT(confusion_matrix(labels, mlp_pred).accuracy(), 0.95);

  LogisticRegression logistic;
  logistic.fit(rows, labels);
  std::vector<int> lin_pred;
  for (const auto& row : rows) {
    lin_pred.push_back(logistic.predict(row));
  }
  EXPECT_LT(confusion_matrix(labels, lin_pred).accuracy(), 0.7);
}

TEST(Mlp, SeparatesLinearBlobsToo) {
  std::vector<FeatureVector> rows;
  std::vector<int> labels;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    FeatureVector row{};
    const int label = i % 2;
    row[0] = rng.normal(label ? 2.0 : -2.0, 1.0);
    row[1] = rng.normal(label ? -2.0 : 2.0, 1.0);
    rows.push_back(row);
    labels.push_back(label);
  }
  Mlp model;
  model.fit(rows, labels);
  std::vector<int> predicted;
  for (const auto& row : rows) {
    predicted.push_back(model.predict(row));
  }
  EXPECT_GT(confusion_matrix(labels, predicted).accuracy(), 0.95);
}

TEST(Mlp, DeterministicGivenSeed) {
  std::vector<FeatureVector> rows(50, FeatureVector{});
  std::vector<int> labels(50);
  Rng rng(9);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i][0] = rng.normal();
    labels[i] = static_cast<int>(rng.bernoulli(0.5));
  }
  Mlp a;
  Mlp b;
  a.fit(rows, labels);
  b.fit(rows, labels);
  FeatureVector probe{};
  probe[0] = 0.3;
  EXPECT_DOUBLE_EQ(a.predict_proba(probe), b.predict_proba(probe));
}

TEST(Mlp, ProbabilitiesAreBounded) {
  std::vector<FeatureVector> rows(20, FeatureVector{});
  std::vector<int> labels(20, 1);
  labels[0] = 0;
  rows[0][0] = -5.0;
  Mlp model;
  model.fit(rows, labels);
  FeatureVector probe{};
  probe.fill(100.0);
  const double p = model.predict_proba(probe);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace emap::ml
