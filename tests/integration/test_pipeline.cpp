// Integration tests of the full EmapPipeline loop.
#include "emap/core/pipeline.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static mdb::MdbStore shared_store() { return testing::small_mdb(6); }

  static synth::Recording seizure_input(std::uint64_t seed,
                                        double duration = 150.0,
                                        double onset = 120.0) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = seed;
    spec.duration_sec = duration;
    spec.onset_sec = onset;
    return synth::make_eval_input(spec);
  }
};

TEST_F(PipelineTest, ColdStartIssuesInitialCloudCall) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(1, 20.0, 15.0);
  const auto result = pipeline.run(input);
  ASSERT_FALSE(result.iterations.empty());
  EXPECT_TRUE(result.iterations.front().cloud_call_issued);
  EXPECT_GE(result.cloud_calls, 1u);
}

TEST_F(PipelineTest, Eq4TimingDecomposition) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(2, 30.0, 25.0);
  const auto result = pipeline.run(input);
  const auto& t = result.timings;
  EXPECT_GT(t.delta_ec_sec, 0.0);
  EXPECT_GT(t.delta_cs_sec, 0.0);
  EXPECT_GT(t.delta_ce_sec, 0.0);
  EXPECT_NEAR(t.delta_initial_sec,
              t.delta_ec_sec + t.delta_cs_sec + t.delta_ce_sec, 1e-12);
  // Search dominates the initial latency (paper Fig. 9).
  EXPECT_GT(t.delta_cs_sec, t.delta_ec_sec);
  EXPECT_GT(t.delta_cs_sec, t.delta_ce_sec);
}

TEST_F(PipelineTest, TrackingBeginsAfterSetArrives) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(3, 30.0, 25.0);
  const auto result = pipeline.run(input);
  bool seen_load = false;
  for (const auto& record : result.iterations) {
    if (record.set_loaded) {
      seen_load = true;
    }
    if (record.tracked) {
      EXPECT_TRUE(seen_load) << "tracking before any correlation set";
    }
  }
  EXPECT_TRUE(seen_load);
}

TEST_F(PipelineTest, RunsAreDeterministic) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(4, 60.0, 50.0);
  const auto a = pipeline.run(input);
  const auto b = pipeline.run(input);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iterations[i].anomaly_probability,
                     b.iterations[i].anomaly_probability);
    EXPECT_EQ(a.iterations[i].tracked_after, b.iterations[i].tracked_after);
  }
  EXPECT_EQ(a.cloud_calls, b.cloud_calls);
}

TEST_F(PipelineTest, StopAtSecTruncatesRun) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(5, 60.0, 50.0);
  const auto result = pipeline.run(input, /*stop_at_sec=*/10.0);
  ASSERT_FALSE(result.iterations.empty());
  EXPECT_LE(result.iterations.back().t_sec, 10.0);
}

TEST_F(PipelineTest, RejectsWrongRateInput) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.fs = 100.0;
  spec.duration_sec = 10.0;
  EXPECT_THROW(pipeline.run(gen.generate(spec)), InvalidArgument);
}

TEST_F(PipelineTest, RejectsTooShortInput) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.duration_sec = 0.5;
  EXPECT_THROW(pipeline.run(gen.generate(spec)), InvalidArgument);
}

TEST_F(PipelineTest, TraceContainsAllPhases) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(6, 30.0, 25.0);
  const auto result = pipeline.run(input);
  EXPECT_GT(result.trace.total_seconds(sim::ActivityKind::kSample), 0.0);
  EXPECT_GT(result.trace.total_seconds(sim::ActivityKind::kUpload), 0.0);
  EXPECT_GT(result.trace.total_seconds(sim::ActivityKind::kCloudSearch), 0.0);
  EXPECT_GT(result.trace.total_seconds(sim::ActivityKind::kDownload), 0.0);
  EXPECT_GT(result.trace.total_seconds(sim::ActivityKind::kEdgeTrack), 0.0);
}

TEST_F(PipelineTest, TransportPathMatchesDirectPathApproximately) {
  // 16-bit wire quantization must not change the qualitative outcome.
  auto input = seizure_input(7, 40.0, 35.0);
  PipelineOptions direct;
  direct.use_transport = false;
  EmapPipeline with_transport(shared_store(), EmapConfig{});
  EmapPipeline without_transport(shared_store(), EmapConfig{}, direct);
  const auto a = with_transport.run(input);
  const auto b = without_transport.run(input);
  EXPECT_EQ(a.iterations.size(), b.iterations.size());
  // Tracked counts may differ slightly; they must be in the same ballpark.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    max_diff = std::max(
        max_diff,
        std::abs(static_cast<double>(a.iterations[i].tracked_after) -
                 static_cast<double>(b.iterations[i].tracked_after)));
  }
  EXPECT_LE(max_diff, 25.0);
}

TEST_F(PipelineTest, EdgeIterationIsRealTimeOnDeviceModel) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(8, 60.0, 50.0);
  const auto result = pipeline.run(input);
  // The paper's constraint: each tracking iteration under 1 s on the edge.
  EXPECT_GT(result.timings.mean_track_sec, 0.0);
  EXPECT_LT(result.timings.mean_track_sec, 1.0);
}

TEST_F(PipelineTest, StopOnAlarmEndsRunEarly) {
  PipelineOptions options;
  options.stop_on_alarm = true;
  EmapPipeline pipeline(shared_store(), EmapConfig{}, options);
  auto input = seizure_input(9, 150.0, 120.0);
  const auto result = pipeline.run(input);
  if (result.anomaly_predicted) {
    EXPECT_NEAR(result.iterations.back().t_sec, result.first_alarm_sec, 1.5);
  }
}

TEST_F(PipelineTest, CloudRecallHappensWithinPaperCadence) {
  EmapPipeline pipeline(shared_store(), EmapConfig{});
  auto input = seizure_input(10, 120.0, 100.0);
  const auto result = pipeline.run(input);
  // The paper observes a cloud call roughly every 5 iterations; allow a
  // generous band but require recalls to happen repeatedly.
  EXPECT_GE(result.cloud_calls, 3u);
}

}  // namespace
}  // namespace emap::core
