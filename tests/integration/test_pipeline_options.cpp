// Coverage of the PipelineOptions switches.
#include <gtest/gtest.h>

#include "emap/core/pipeline.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

synth::Recording input_recording(std::uint64_t seed) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = 40.0;
  spec.onset_sec = 35.0;
  return synth::make_eval_input(spec);
}

TEST(PipelineOptions, MaxWindowsLimitsRunLength) {
  PipelineOptions options;
  options.max_windows = 7;
  EmapPipeline pipeline(testing::small_mdb(2), EmapConfig{}, options);
  const auto result = pipeline.run(input_recording(1));
  EXPECT_EQ(result.iterations.size(), 7u);
}

TEST(PipelineOptions, TraceCollectionCanBeDisabled) {
  PipelineOptions options;
  options.collect_trace = false;
  EmapPipeline pipeline(testing::small_mdb(2), EmapConfig{}, options);
  const auto result = pipeline.run(input_recording(2));
  EXPECT_TRUE(result.trace.activities().empty());
  // Timings still computed (they don't depend on the trace).
  EXPECT_GT(result.timings.delta_initial_sec, 0.0);
}

TEST(PipelineOptions, SlowerPlatformIncreasesTransferTimes) {
  PipelineOptions lte_a;
  lte_a.platform = net::CommPlatform::kLteAdvanced;
  PipelineOptions hspa;
  hspa.platform = net::CommPlatform::kHspa;
  auto input = input_recording(3);
  EmapPipeline fast_pipeline(testing::small_mdb(2), EmapConfig{}, lte_a);
  EmapPipeline slow_pipeline(testing::small_mdb(2), EmapConfig{}, hspa);
  const auto fast = fast_pipeline.run(input);
  const auto slow = slow_pipeline.run(input);
  EXPECT_GT(slow.timings.delta_ec_sec, fast.timings.delta_ec_sec);
  EXPECT_GT(slow.timings.delta_ce_sec, fast.timings.delta_ce_sec);
  // The search itself is platform independent.
  EXPECT_NEAR(slow.timings.delta_cs_sec, fast.timings.delta_cs_sec, 1e-9);
}

TEST(PipelineOptions, StopAtOverrideDoesNotStickAcrossRuns) {
  EmapPipeline pipeline(testing::small_mdb(2), EmapConfig{});
  auto input = input_recording(4);
  const auto truncated = pipeline.run(input, 5.0);
  const auto full = pipeline.run(input);
  EXPECT_LT(truncated.iterations.size(), full.iterations.size());
  // A second full run matches the first: the override did not persist.
  const auto full_again = pipeline.run(input);
  EXPECT_EQ(full.iterations.size(), full_again.iterations.size());
}

TEST(PipelineOptions, FilterAcceleratorTimeAppearsInTrace) {
  PipelineOptions options;
  options.filter_accelerator_sec = 0.01;
  EmapPipeline pipeline(testing::small_mdb(2), EmapConfig{}, options);
  const auto result = pipeline.run(input_recording(5), 5.0);
  const double filter_time =
      result.trace.total_seconds(sim::ActivityKind::kFilter);
  EXPECT_NEAR(filter_time,
              0.01 * static_cast<double>(result.iterations.size()), 1e-9);
}

}  // namespace
}  // namespace emap::core
