// End-to-end telemetry: the span log, the Fig. 9 projection, and the
// exporters must all agree with the pipeline's own RunTimings.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "emap/core/cloud_service.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/obs/export.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

synth::Recording seizure_input(std::uint64_t seed, double duration = 30.0,
                               double onset = 25.0) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Telemetry, FirstCloudCallSpansMatchRunTimings) {
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.metrics = &registry;
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(11, 20.0, 15.0));
  ASSERT_NE(result.tracer, nullptr);
  ASSERT_GE(result.cloud_calls, 1u);

  // RunTimings records the first delivered round trip; calls are issued
  // one at a time, so that is the first "cloud-call" span in the log.
  // Its Eq. 4 legs nest under it as upload / cloud-search / download.
  const auto spans = result.tracer->spans();
  const obs::SpanRecord* call = nullptr;
  for (const auto& span : spans) {
    if (span.category == "cloud-call") {
      call = &span;
      break;
    }
  }
  ASSERT_NE(call, nullptr);
  double ec = -1.0;
  double cs = -1.0;
  double ce = -1.0;
  for (const auto& span : spans) {
    if (span.parent != call->id) {
      continue;
    }
    if (span.category == "upload") {
      ec = span.sim_dur_sec;
    } else if (span.category == "cloud-search") {
      cs = span.sim_dur_sec;
    } else if (span.category == "download") {
      ce = span.sim_dur_sec;
    }
  }

  const auto& timings = result.timings;
  ASSERT_GT(timings.delta_initial_sec, 0.0);
  EXPECT_NEAR(ec, timings.delta_ec_sec, 1e-9);
  EXPECT_NEAR(cs, timings.delta_cs_sec, 1e-9);
  EXPECT_NEAR(ce, timings.delta_ce_sec, 1e-9);
  EXPECT_NEAR(ec + cs + ce, timings.delta_initial_sec, 1e-9);
  // The parent span covers the whole round trip.
  EXPECT_NEAR(call->sim_dur_sec, timings.delta_initial_sec, 1e-9);

  // One issued call per span; the Eq. 4 histograms saw every one, the
  // first being the RunTimings round trip.
  std::size_t issued = 0;
  for (const auto& record : result.iterations) {
    issued += record.cloud_call_issued ? 1 : 0;
  }
  EXPECT_EQ(registry.counter("emap_pipeline_cloud_calls_total").value(),
            issued);
  EXPECT_EQ(registry.histogram("emap_delta_initial_seconds").count(), issued);
}

TEST(Telemetry, TimelineTraceIsAProjectionOfTheSpanLog) {
  PipelineOptions options;
  options.max_windows = 6;
  EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(12, 20.0, 15.0));
  ASSERT_NE(result.tracer, nullptr);
  const auto view = obs::timeline_view(*result.tracer);
  for (sim::ActivityKind kind :
       {sim::ActivityKind::kSample, sim::ActivityKind::kFilter,
        sim::ActivityKind::kUpload, sim::ActivityKind::kCloudSearch,
        sim::ActivityKind::kDownload, sim::ActivityKind::kEdgeTrack,
        sim::ActivityKind::kPrediction}) {
    EXPECT_DOUBLE_EQ(view.total_seconds(kind), result.trace.total_seconds(kind))
        << sim::activity_name(kind);
  }
  EXPECT_GT(result.trace.total_seconds(sim::ActivityKind::kSample), 0.0);
}

TEST(Telemetry, DisablingTraceCollectionLeavesNoTracer) {
  PipelineOptions options;
  options.collect_trace = false;
  options.max_windows = 3;
  EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(13, 20.0, 15.0));
  EXPECT_EQ(result.tracer, nullptr);
  EXPECT_TRUE(result.trace.activities().empty());
}

TEST(Telemetry, ChromeTraceExportCoversTheRun) {
  testing::TempDir dir("telemetry_trace");
  PipelineOptions options;
  options.max_windows = 4;
  EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(14, 20.0, 15.0));
  ASSERT_NE(result.tracer, nullptr);
  obs::write_chrome_trace(dir.path() / "trace.json", *result.tracer);
  const std::string json = obs::to_chrome_trace(*result.tracer);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  for (const char* name : {"delta_EC", "delta_CS", "delta_CE", "sample",
                           "filter", "edge-track", "prediction"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
}

TEST(Telemetry, PrometheusExportCoversEveryInstrumentedLayer) {
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.metrics = &registry;
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  (void)pipeline.run(seizure_input(15, 20.0, 15.0));

  // The queued-service model shares the registry (a deployment would run
  // both), populating the cloud wait/service histograms.
  CloudService service(testing::small_mdb(1), EmapConfig{}, 1);
  service.set_metrics(&registry);
  for (std::uint32_t i = 0; i < 2; ++i) {
    net::SignalUploadMessage upload;
    upload.sequence = i;
    upload.samples = testing::sine(16.0, 256.0, 256, 7.0);
    service.submit(ServiceRequest{i, std::move(upload), 0.0});
  }
  (void)service.process_all();

  EXPECT_GE(registry.family_count(), 12u);
  const std::string text = obs::to_prometheus(registry);
  EXPECT_GE(count_occurrences(text, "# TYPE "), 12u);
  for (const char* family :
       {"emap_pipeline_windows_total", "emap_pipeline_cloud_calls_total",
        "emap_delta_ec_seconds", "emap_delta_cs_seconds",
        "emap_delta_ce_seconds", "emap_delta_initial_seconds",
        "emap_track_step_seconds", "emap_search_requests_total",
        "emap_search_skip_ratio", "emap_tracker_steps_total",
        "emap_net_bytes_total", "emap_cloud_wait_seconds",
        "emap_cloud_utilization"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family), std::string::npos)
        << family;
  }
  // The skip-ratio histogram actually observed the exponential search's
  // behaviour (Algorithm 1 skips most offsets).
  EXPECT_GT(registry.histogram("emap_search_skip_ratio",
                               {},
                               obs::Histogram::linear_bounds(0.0, 1.0, 50))
                .count(),
            0u);
  EXPECT_NE(text.find("emap_cloud_wait_seconds_count"), std::string::npos);
}

}  // namespace
}  // namespace emap::core
