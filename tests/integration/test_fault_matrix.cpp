// Deterministic fault-matrix harness: drive the full pipeline through every
// {fault kind} x {direction} cell with fixed seeds and assert the recovery
// invariants hold in each one — no crash, `degraded` flagged exactly when a
// call exhausted its retries, every injected fault visible in the exported
// metrics, and bit-identical replays.  Faults and retry jitter come from
// seeded streams, so each cell's outcome is exactly reproducible.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "emap/core/pipeline.hpp"
#include "emap/core/report.hpp"
#include "emap/obs/metrics.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

enum class FaultKind { kDrop, kCorrupt, kDelay };
enum class Leg { kUpload, kDownload };

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
  }
  return "?";
}

struct MatrixCell {
  FaultKind kind;
  Leg leg;

  std::string name() const {
    return std::string(kind_name(kind)) +
           (leg == Leg::kUpload ? "/upload" : "/download");
  }
};

class FaultMatrixTest : public ::testing::Test {
 protected:
  static synth::Recording input() {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 21;
    spec.duration_sec = 60.0;
    spec.onset_sec = 50.0;
    return synth::make_eval_input(spec);
  }

  static PipelineOptions cell_options(const MatrixCell& cell, double p,
                                      obs::MetricsRegistry* registry) {
    PipelineOptions options;
    options.collect_trace = false;
    options.metrics = registry;
    net::FaultSpec& spec =
        cell.leg == Leg::kUpload ? options.fault.up : options.fault.down;
    switch (cell.kind) {
      case FaultKind::kDrop:
        spec.drop = p;
        break;
      case FaultKind::kCorrupt:
        spec.corrupt = p;
        break;
      case FaultKind::kDelay:
        spec.delay = p;
        break;
    }
    options.fault.seed = 0xfau;
    // A short, deterministic retry schedule keeps each failed call to a few
    // simulated seconds so degraded cells still track plenty of windows.
    options.retry.max_attempts = 2;
    options.retry.max_timeout_sec = 1.0;
    options.retry.deadline_sec = 6.0;
    return options;
  }

  static RunResult run_cell(const MatrixCell& cell, double p,
                            obs::MetricsRegistry* registry) {
    EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{},
                          cell_options(cell, p, registry));
    return pipeline.run(input());
  }

  /// Cross-checks the invariants every cell must satisfy, whatever the
  /// fault schedule did.
  static void check_invariants(const RunResult& result) {
    ASSERT_FALSE(result.iterations.empty());
    std::size_t loads = 0;
    std::size_t degraded_windows = 0;
    for (const auto& record : result.iterations) {
      loads += record.set_loaded ? 1 : 0;
      degraded_windows += record.degraded ? 1 : 0;
      // A window can resolve one pending call at most one way.
      EXPECT_FALSE(record.set_loaded && record.degraded);
    }
    // `degraded` is flagged exactly when a call exhausted its retries.
    EXPECT_EQ(loads, result.cloud_calls);
    EXPECT_EQ(degraded_windows, result.failed_cloud_calls);
    EXPECT_EQ(result.degraded, result.failed_cloud_calls > 0);
  }

  static void expect_identical(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
      const auto& x = a.iterations[i];
      const auto& y = b.iterations[i];
      EXPECT_EQ(x.set_loaded, y.set_loaded) << "window " << i;
      EXPECT_EQ(x.degraded, y.degraded) << "window " << i;
      EXPECT_EQ(x.tracked_after, y.tracked_after) << "window " << i;
      EXPECT_DOUBLE_EQ(x.anomaly_probability, y.anomaly_probability)
          << "window " << i;
    }
    EXPECT_EQ(a.cloud_calls, b.cloud_calls);
    EXPECT_EQ(a.failed_cloud_calls, b.failed_cloud_calls);
    EXPECT_EQ(a.retry_attempts, b.retry_attempts);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_DOUBLE_EQ(a.first_alarm_sec, b.first_alarm_sec);
  }

  static std::vector<MatrixCell> all_cells() {
    std::vector<MatrixCell> cells;
    for (FaultKind kind :
         {FaultKind::kDrop, FaultKind::kCorrupt, FaultKind::kDelay}) {
      for (Leg leg : {Leg::kUpload, Leg::kDownload}) {
        cells.push_back({kind, leg});
      }
    }
    return cells;
  }
};

TEST_F(FaultMatrixTest, EveryCellSurvivesAndKeepsItsInvariants) {
  for (const MatrixCell& cell : all_cells()) {
    SCOPED_TRACE(cell.name());
    obs::MetricsRegistry registry;
    const RunResult result = run_cell(cell, 0.35, &registry);
    check_invariants(result);
    // The cloud stayed reachable often enough to deliver at least one set.
    EXPECT_GE(result.cloud_calls, 1u);

    // Every injected fault of the cell's kind/direction shows up in the
    // exported counters.
    const char* dir = cell.leg == Leg::kUpload ? "up" : "down";
    const std::uint64_t injected =
        registry
            .counter("emap_net_faults_total",
                     {{"direction", dir}, {"kind", kind_name(cell.kind)}})
            .value();
    EXPECT_GT(injected, 0u) << "cell injected no faults — seed too benign";

    if (cell.kind == FaultKind::kDelay) {
      // Timeouts guard message loss, not lateness: delayed responses are
      // accepted late and never degrade the edge.
      EXPECT_FALSE(result.degraded);
      EXPECT_EQ(result.failed_cloud_calls, 0u);
      EXPECT_EQ(registry.counter("emap_edge_retry_timeouts_total").value(),
                0u);
    } else if (cell.kind == FaultKind::kCorrupt && cell.leg == Leg::kDownload) {
      // Download corruption is CRC-detected at the edge decoder: a typed
      // `corrupt` reject (fast-fail), not a silent timeout.
      EXPECT_GT(registry
                    .counter("emap_edge_rejects_total",
                             {{"reason", "corrupt"}})
                    .value(),
                0u);
      EXPECT_GT(result.retry_attempts, 0u);
    } else {
      // Other lossy cells look like silence from the edge: a timeout.
      // (Corrupted uploads never reach the cloud intact, so no response
      // comes back — indistinguishable from a drop.)
      EXPECT_GT(registry.counter("emap_edge_retry_timeouts_total").value(),
                0u);
      EXPECT_GT(registry
                    .counter("emap_edge_rejects_total",
                             {{"reason", "timeout"}})
                    .value(),
                0u);
      EXPECT_GT(result.retry_attempts, 0u);
    }
  }
}

TEST_F(FaultMatrixTest, LossyCellsAreDeterministicUnderReplay) {
  for (const MatrixCell& cell :
       {MatrixCell{FaultKind::kDrop, Leg::kUpload},
        MatrixCell{FaultKind::kCorrupt, Leg::kDownload}}) {
    SCOPED_TRACE(cell.name());
    const RunResult a = run_cell(cell, 0.35, nullptr);
    const RunResult b = run_cell(cell, 0.35, nullptr);
    expect_identical(a, b);
  }
}

TEST_F(FaultMatrixTest, ZeroProbabilityMatchesFaultFreeRunBitForBit) {
  // The injector is always attached; with every probability at zero it must
  // be unobservable — including across different injector seeds, which
  // would diverge immediately if any draw leaked into the run.
  PipelineOptions baseline;
  baseline.collect_trace = false;
  PipelineOptions zeroed = baseline;
  zeroed.fault.seed = 0x1234u;   // different seed, still p = 0
  zeroed.retry.seed = 0x5678u;   // never consulted without a retry
  EmapPipeline a(testing::small_mdb(6), EmapConfig{}, baseline);
  EmapPipeline b(testing::small_mdb(6), EmapConfig{}, zeroed);
  const RunResult ra = a.run(input());
  const RunResult rb = b.run(input());
  expect_identical(ra, rb);
  EXPECT_FALSE(ra.degraded);
  EXPECT_EQ(ra.failed_cloud_calls, 0u);
  EXPECT_EQ(ra.retry_attempts, 0u);
  EXPECT_EQ(ra.duplicates_discarded, 0u);
}

TEST_F(FaultMatrixTest, ChaosCellSurvivesEverythingAtOnce) {
  // All five faults on both legs simultaneously; the run must still
  // complete with its invariants intact and the report must serialize.
  PipelineOptions options;
  options.collect_trace = true;
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  for (net::FaultSpec* spec : {&options.fault.up, &options.fault.down}) {
    spec->drop = 0.15;
    spec->corrupt = 0.15;
    spec->duplicate = 0.25;
    spec->reorder = 0.10;
    spec->delay = 0.25;
  }
  options.fault.seed = 0xc4a05u;
  options.retry.max_attempts = 3;
  options.retry.max_timeout_sec = 1.0;
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const RunResult result = pipeline.run(input());
  check_invariants(result);
  EXPECT_GE(result.cloud_calls, 1u);
  EXPECT_GT(result.retry_attempts, 0u);

  // Sequence dedup: duplicated downloads on successful calls are counted
  // and discarded, and the metric agrees with the run counter.
  EXPECT_EQ(registry.counter("emap_edge_duplicates_discarded_total").value(),
            result.duplicates_discarded);

  // The degraded flag survives serialization in both report formats.
  const std::string json = run_summary_json(result);
  EXPECT_NE(json.find("\"degraded\":"), std::string::npos);
  EXPECT_NE(json.find("\"failed_cloud_calls\":"), std::string::npos);
  const testing::TempDir dir("fault_matrix");
  write_iterations_csv(result, dir.path() / "iterations.csv");
}

TEST_F(FaultMatrixTest, PermanentOutageDegradesEveryCallButKeepsTracking) {
  // A fully dead downlink: every call must fail after its retries, the edge
  // must keep tracking the stale set it never got, i.e. never load one.
  PipelineOptions options;
  options.collect_trace = false;
  options.fault.down.drop = 1.0;
  options.retry.max_attempts = 2;
  options.retry.max_timeout_sec = 0.5;
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const RunResult result = pipeline.run(input());
  check_invariants(result);
  EXPECT_EQ(result.cloud_calls, 0u);
  EXPECT_GT(result.failed_cloud_calls, 0u);
  EXPECT_TRUE(result.degraded);
  // With no set ever loaded, no window can have tracked.
  for (const auto& record : result.iterations) {
    EXPECT_FALSE(record.tracked);
  }
  // The edge keeps re-attempting: each failure is followed by a fresh call.
  EXPECT_GE(result.failed_cloud_calls, 2u);
}

}  // namespace
}  // namespace emap::core
