// End-to-end causal tracing acceptance tests: one deterministic trace id
// per pipeline window, propagated over the V2 wire header into the cloud
// and back, so edge- and cloud-side spans of one window share a trace.
// Covers the ISSUE acceptance criteria: complete cross-boundary traces on
// a fault-free run, the tracecat Eq. 4 decomposition agreeing with the
// pipeline's measured delta_initial, retries/sheds attaching to the
// originating window's trace, flight dumps ending on the tripped crash
// point, trace lineage surviving checkpoint/resume, and bit-identical
// results with tracing disabled.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "emap/core/pipeline.hpp"
#include "emap/obs/export.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/trace_context.hpp"
#include "emap/obs/tracecat.hpp"
#include "emap/robust/crashpoint.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

class TracingTest : public ::testing::Test {
 protected:
  static synth::Recording input(std::uint64_t seed = 33) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = seed;
    spec.duration_sec = 30.0;
    spec.onset_sec = 22.0;
    return synth::make_eval_input(spec);
  }

  static RunResult run_with(const PipelineOptions& options) {
    EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
    return pipeline.run(input());
  }

  /// Categories recorded only by the edge side of the pipeline.
  static bool edge_category(const std::string& category) {
    return category == "window" || category == "edge-track" ||
           category == "prediction" || category == "upload" ||
           category == "download";
  }
};

TEST_F(TracingTest, FaultFreeRunLinksEdgeAndCloudSpansUnderOneTrace) {
  const RunResult result = run_with(PipelineOptions{});
  ASSERT_NE(result.tracer, nullptr);
  const auto spans = result.tracer->spans();

  // Every window span carries the deterministic id minted from the default
  // seed, so a re-run (or the cloud side) can re-derive the same ids.
  std::map<std::uint64_t, std::set<std::string>> categories_by_trace;
  std::size_t window_spans = 0;
  for (const auto& span : spans) {
    if (span.trace_id != 0) {
      categories_by_trace[span.trace_id].insert(span.category);
    }
    if (span.category == "window") {
      ++window_spans;
      const std::uint64_t window =
          static_cast<std::uint64_t>(span.sim_start_sec);
      EXPECT_EQ(span.trace_id,
                obs::mint_trace_id(obs::kDefaultTraceSeed, window))
          << span.name;
    }
  }
  ASSERT_GT(window_spans, 0u);

  // At least one complete cross-boundary trace: the "cloud-search" span's
  // trace id comes from decoding the V2 upload on the cloud side, so its
  // presence next to edge categories proves the id survived the wire.
  std::size_t complete = 0;
  for (const auto& [trace_id, categories] : categories_by_trace) {
    const bool has_edge = categories.count("window") > 0;
    const bool has_cloud = categories.count("cloud-search") > 0;
    if (has_edge && has_cloud) {
      ++complete;
    }
  }
  EXPECT_GE(complete, 1u);
}

TEST_F(TracingTest, TracecatDecompositionMatchesMeasuredDeltaInitial) {
  testing::TempDir dir("tracing_tracecat");
  const RunResult result = run_with(PipelineOptions{});
  ASSERT_NE(result.tracer, nullptr);
  ASSERT_GT(result.timings.delta_initial_sec, 0.0);

  const auto spans_path = dir.path() / "spans.jsonl";
  obs::write_spans_jsonl(spans_path, *result.tracer);
  const auto loaded = obs::load_spans_jsonl(spans_path);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  ASSERT_EQ(loaded.spans.size(), result.tracer->spans().size());

  const auto paths = obs::build_critical_paths(loaded.spans);
  ASSERT_FALSE(paths.empty());
  // The first window that loaded a correlation set is the round trip the
  // pipeline's delta_initial (Eq. 4) measured; its reconstructed
  // uplink + queue + scan + downlink must agree within 1%.
  std::int64_t first_issuing_window = -1;
  for (const IterationRecord& record : result.iterations) {
    if (record.cloud_call_issued) {
      first_issuing_window = static_cast<std::int64_t>(record.window_index);
      break;
    }
  }
  ASSERT_GE(first_issuing_window, 0);
  const obs::TraceCriticalPath* first = nullptr;
  for (const auto& path : paths) {
    if (path.window_index == first_issuing_window) {
      first = &path;
      break;
    }
  }
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->complete());
  EXPECT_NEAR(first->initial_response_sec(),
              result.timings.delta_initial_sec,
              0.01 * result.timings.delta_initial_sec);
}

TEST_F(TracingTest, RetriesAttachToTheOriginatingWindowsTrace) {
  PipelineOptions options;
  options.fault.up.drop = 0.35;
  options.fault.seed = 77;
  options.retry.max_attempts = 3;
  const RunResult result = run_with(options);
  ASSERT_NE(result.tracer, nullptr);
  ASSERT_GT(result.retry_attempts, 0u)
      << "fault schedule produced no retries; raise the drop rate";

  std::set<std::uint64_t> window_traces;
  for (const auto& span : result.tracer->spans()) {
    if (span.category == "window") {
      window_traces.insert(span.trace_id);
    }
  }
  std::size_t retry_spans = 0;
  for (const auto& span : result.tracer->spans()) {
    if (span.category != "retry") {
      continue;
    }
    ++retry_spans;
    // Every retry interval names the causal chain of the window whose
    // cloud call it belongs to — never an orphan id.
    EXPECT_NE(span.trace_id, 0u) << span.name;
    EXPECT_TRUE(window_traces.count(span.trace_id) > 0) << span.name;
  }
  EXPECT_GT(retry_spans, 0u);
}

TEST_F(TracingTest, CrashPointTripDumpsFlightWithTheCrashPointLast) {
  testing::TempDir dir("tracing_crash_dump");
  const auto dump_path = dir.path() / "flight.jsonl";
  obs::FlightRecorder recorder;
  recorder.set_dump_path(dump_path);

  robust::CrashPointRegistry registry;
  PipelineOptions options;
  options.flight = &recorder;
  options.crashpoints = &registry;
  {
    robust::ScopedCrashSchedule guard(registry,
                                      {"pipeline_post_cloud_call", 2});
    EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
    EXPECT_THROW(pipeline.run(input()), robust::InjectedCrash);
  }
  ASSERT_GE(recorder.dumps_written(), 1u);

  const auto dump = obs::load_flight_jsonl(dump_path);
  EXPECT_EQ(dump.dump_reason, "crash_point");
  ASSERT_FALSE(dump.events.empty());
  // The tripped point is the dump's final event — the ring was flushed at
  // the moment of death, with the history leading up to it intact.
  EXPECT_EQ(dump.events.back().type, "crash_point");
  EXPECT_EQ(dump.events.back().label, "pipeline_post_cloud_call");
  std::size_t traced_events = 0;
  for (const auto& event : dump.events) {
    if (event.trace_id != 0) {
      ++traced_events;
    }
  }
  EXPECT_GT(traced_events, 0u);
}

TEST_F(TracingTest, CheckpointResumeContinuesTheTraceLineage) {
  // The crashed run mints ids from a non-default seed; the resumed run is
  // configured with the default.  Lineage requires the snapshot's seed to
  // win — the resumed windows keep the ids the crashed run would have
  // minted, so one logical session stays one set of traces.
  constexpr std::uint64_t kRunSeed = 0x5eed5eed5eed5eedull;
  testing::TempDir dir("tracing_resume");

  robust::CrashPointRegistry registry;
  PipelineOptions crash_options;
  crash_options.trace_seed = kRunSeed;
  crash_options.recovery.checkpoint_dir = dir.path();
  crash_options.crashpoints = &registry;
  {
    robust::ScopedCrashSchedule guard(registry, {"pipeline_window_start", 7});
    EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, crash_options);
    EXPECT_THROW(pipeline.run(input()), robust::InjectedCrash);
  }

  PipelineOptions resume_options;
  resume_options.recovery.checkpoint_dir = dir.path();
  resume_options.recovery.resume = true;
  resume_options.recovery.strict = true;
  const RunResult resumed = run_with(resume_options);
  ASSERT_TRUE(resumed.robust.recovery.resumed);
  ASSERT_NE(resumed.tracer, nullptr);

  std::size_t window_spans = 0;
  for (const auto& span : resumed.tracer->spans()) {
    if (span.category == "window") {
      ++window_spans;
      const std::uint64_t window =
          static_cast<std::uint64_t>(span.sim_start_sec);
      EXPECT_EQ(span.trace_id, obs::mint_trace_id(kRunSeed, window))
          << "window " << window << " re-minted under the wrong seed";
    } else if (span.category == "recovery") {
      EXPECT_EQ(span.trace_id,
                obs::mint_trace_id(kRunSeed,
                                   resumed.robust.recovery.resume_window));
    }
  }
  EXPECT_GT(window_spans, 0u);
}

TEST_F(TracingTest, DisablingTracingKeepsResultsBitIdentical) {
  PipelineOptions traced;  // default: collect_trace on, default seed
  PipelineOptions untraced;
  untraced.collect_trace = false;
  PipelineOptions null_seed;
  null_seed.trace_seed = 0;  // spans still collected, wire stays V1

  const RunResult a = run_with(traced);
  const RunResult b = run_with(untraced);
  const RunResult c = run_with(null_seed);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  ASSERT_EQ(a.iterations.size(), c.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].anomaly_probability,
              b.iterations[i].anomaly_probability)
        << "window " << i;
    EXPECT_EQ(a.iterations[i].anomaly_probability,
              c.iterations[i].anomaly_probability)
        << "window " << i;
  }
  EXPECT_EQ(a.first_alarm_sec, b.first_alarm_sec);
  EXPECT_EQ(a.first_alarm_sec, c.first_alarm_sec);
  EXPECT_EQ(a.cloud_calls, b.cloud_calls);
  EXPECT_EQ(a.cloud_calls, c.cloud_calls);
  // The two untraced variants ride the identical V1 wire: their transfer
  // timings are bit-identical.  (The traced run's V2 header adds 16 bytes
  // per message, so its delta_initial is allowed to differ by the extra
  // transfer time — the P_A trajectory above proves behavior is unchanged.)
  EXPECT_EQ(b.timings.delta_initial_sec, c.timings.delta_initial_sec);
  EXPECT_NEAR(a.timings.delta_initial_sec, b.timings.delta_initial_sec,
              1e-3);
  // And the null-seed run indeed produced no traced spans.
  ASSERT_NE(c.tracer, nullptr);
  for (const auto& span : c.tracer->spans()) {
    EXPECT_EQ(span.trace_id, 0u) << span.name;
  }
}

}  // namespace
}  // namespace emap::core
