// Crash-recovery integration harness: for EVERY registered crash point,
// kill the pipeline mid-run (InjectedCrash), resume a fresh pipeline from
// the surviving snapshot, and assert the resumed run's P_A trajectory,
// alarm, and counters are bit-identical to an uninterrupted reference run
// on the same clean link.  Also covers the fingerprint guards (wrong
// config / wrong input), strict-vs-fallback semantics, and the checkpoint
// cadence.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "emap/core/pipeline.hpp"
#include "emap/core/report.hpp"
#include "emap/robust/checkpoint.hpp"
#include "emap/robust/crashpoint.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  static synth::Recording input(std::uint64_t seed = 21) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = seed;
    spec.duration_sec = 40.0;
    spec.onset_sec = 30.0;
    return synth::make_eval_input(spec);
  }

  static PipelineOptions base_options() {
    PipelineOptions options;
    options.collect_trace = false;
    return options;
  }

  static RunResult run_with(const PipelineOptions& options,
                            std::uint64_t input_seed = 21) {
    EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
    return pipeline.run(input(input_seed));
  }

  /// The resumed run must reproduce the reference run exactly on every
  /// window it executed, and land on the same final verdict and counters.
  static void expect_equivalent(const RunResult& resumed,
                                const RunResult& reference,
                                const std::string& label) {
    ASSERT_TRUE(resumed.robust.recovery.resumed) << label;
    ASSERT_FALSE(resumed.iterations.empty()) << label;
    EXPECT_EQ(resumed.iterations.front().window_index,
              resumed.robust.recovery.resume_window)
        << label;
    for (const IterationRecord& record : resumed.iterations) {
      ASSERT_LT(record.window_index, reference.iterations.size()) << label;
      const IterationRecord& ref = reference.iterations[record.window_index];
      ASSERT_EQ(ref.window_index, record.window_index) << label;
      EXPECT_TRUE(record.recovered) << label;
      // Bit-identical, not approximately equal: the snapshot restores the
      // exact doubles and RNG streams the crashed run held.
      EXPECT_EQ(record.anomaly_probability, ref.anomaly_probability)
          << label << " window " << record.window_index;
      EXPECT_EQ(record.t_sec, ref.t_sec)
          << label << " window " << record.window_index;
      EXPECT_EQ(record.tracked, ref.tracked) << label;
      EXPECT_EQ(record.set_loaded, ref.set_loaded) << label;
      EXPECT_EQ(record.tracked_after, ref.tracked_after) << label;
      EXPECT_EQ(record.cloud_call_issued, ref.cloud_call_issued) << label;
      EXPECT_EQ(record.degraded, ref.degraded) << label;
    }
    EXPECT_EQ(resumed.anomaly_predicted, reference.anomaly_predicted)
        << label;
    EXPECT_EQ(resumed.first_alarm_sec, reference.first_alarm_sec) << label;
    EXPECT_EQ(resumed.cloud_calls, reference.cloud_calls) << label;
    EXPECT_EQ(resumed.failed_cloud_calls, reference.failed_cloud_calls)
        << label;
    EXPECT_EQ(resumed.retry_attempts, reference.retry_attempts) << label;
    EXPECT_EQ(resumed.duplicates_discarded, reference.duplicates_discarded)
        << label;
    ASSERT_FALSE(resumed.pa_history().empty()) << label;
    EXPECT_EQ(resumed.pa_history().back(), reference.pa_history().back())
        << label;
  }
};

// Checkpointing reads state and writes files; it must not perturb the
// simulation itself.
TEST_F(RecoveryTest, CheckpointingIsBehaviorNeutral) {
  const RunResult plain = run_with(base_options());
  testing::TempDir dir("recovery_neutral");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  const RunResult checkpointed = run_with(options);
  ASSERT_EQ(checkpointed.iterations.size(), plain.iterations.size());
  for (std::size_t i = 0; i < plain.iterations.size(); ++i) {
    EXPECT_EQ(checkpointed.iterations[i].anomaly_probability,
              plain.iterations[i].anomaly_probability)
        << "window " << i;
  }
  EXPECT_EQ(checkpointed.first_alarm_sec, plain.first_alarm_sec);
  EXPECT_TRUE(checkpointed.robust.recovery.enabled);
  EXPECT_GT(checkpointed.robust.recovery.checkpoints_written, 0u);
  EXPECT_FALSE(checkpointed.robust.recovery.resumed);
}

// The acceptance criterion: crash at every registered point, resume, and
// land bit-identical to the uninterrupted run.
TEST_F(RecoveryTest, CrashAtEveryPointThenResumeMatchesUninterrupted) {
  const RunResult reference = run_with(base_options());
  ASSERT_GE(reference.cloud_calls, 2u)
      << "need a mid-run cloud call for the *_cloud_call points";
  for (const std::string& point : robust::crash_point_catalog()) {
    if (point.rfind("stream_", 0) == 0) {
      // Threaded-only points: the batch loop never reaches them (the
      // threaded matrix lives in test_stream_recovery.cpp).
      continue;
    }
    testing::TempDir dir("recovery_" + point);
    // Cloud-call points fire once per round trip (hit 2 = the first
    // re-call, mid-run); per-window and per-checkpoint points fire every
    // window (hit 7 = mid-run with checkpoints already on disk).
    const std::uint64_t hit =
        point.find("cloud_call") != std::string::npos ? 2 : 7;

    robust::CrashPointRegistry registry;
    PipelineOptions crash_options = base_options();
    crash_options.recovery.checkpoint_dir = dir.path();
    crash_options.crashpoints = &registry;
    {
      robust::ScopedCrashSchedule guard(registry, {point, hit});
      EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{},
                            crash_options);
      EXPECT_THROW(pipeline.run(input()), robust::InjectedCrash) << point;
    }
    ASSERT_TRUE(
        std::filesystem::exists(robust::checkpoint_path(dir.path())))
        << point;

    // A fresh pipeline (as a restarted process would build) resumes from
    // whatever snapshot survived the crash.
    PipelineOptions resume_options = base_options();
    resume_options.recovery.checkpoint_dir = dir.path();
    resume_options.recovery.resume = true;
    resume_options.recovery.strict = true;
    const RunResult resumed = run_with(resume_options);
    expect_equivalent(resumed, reference, point);
  }
}

TEST_F(RecoveryTest, ResumeAfterCleanCompletionReplaysOnlyTheLastWindowMark) {
  testing::TempDir dir("recovery_complete");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  const RunResult first = run_with(options);
  // The final snapshot says every window is done: the resumed run has
  // nothing to replay and reports the reference totals unchanged.
  options.recovery.resume = true;
  const RunResult resumed = run_with(options);
  EXPECT_TRUE(resumed.robust.recovery.resumed);
  EXPECT_EQ(resumed.robust.recovery.resume_window, first.iterations.size());
  EXPECT_TRUE(resumed.iterations.empty());
  EXPECT_EQ(resumed.anomaly_predicted, first.anomaly_predicted);
  EXPECT_EQ(resumed.first_alarm_sec, first.first_alarm_sec);
  EXPECT_EQ(resumed.cloud_calls, first.cloud_calls);
}

TEST_F(RecoveryTest, IntervalWindowsControlsTheCheckpointCadence) {
  testing::TempDir dir("recovery_interval");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  options.recovery.interval_windows = 5;
  const RunResult result = run_with(options);
  EXPECT_EQ(result.robust.recovery.checkpoints_written,
            result.iterations.size() / 5);
  // The surviving snapshot sits on a multiple of the interval.
  const auto snapshot = robust::read_checkpoint(dir.path());
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->next_window % 5, 0u);
  EXPECT_GT(snapshot->next_window, 0u);
}

TEST_F(RecoveryTest, MissingSnapshotFallsBackToColdStart) {
  testing::TempDir dir("recovery_cold");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  options.recovery.resume = true;
  const RunResult result = run_with(options);
  EXPECT_FALSE(result.robust.recovery.resumed);
  EXPECT_TRUE(result.robust.recovery.cold_start_fallback);
  EXPECT_FALSE(result.robust.recovery.reject_reason.empty());
  // The cold-started run is simply a full run.
  const RunResult reference = run_with(base_options());
  EXPECT_EQ(result.iterations.size(), reference.iterations.size());
  EXPECT_EQ(result.first_alarm_sec, reference.first_alarm_sec);
}

TEST_F(RecoveryTest, StrictResumeThrowsWithoutASnapshot) {
  testing::TempDir dir("recovery_strict");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  options.recovery.resume = true;
  options.recovery.strict = true;
  EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
  EXPECT_THROW(pipeline.run(input()), robust::CheckpointError);
}

TEST_F(RecoveryTest, ResumeUnderADifferentConfigIsRejected) {
  testing::TempDir dir("recovery_config");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  run_with(options);

  EmapConfig changed;
  changed.top_k = 50;  // different fingerprint, same pipeline shape
  PipelineOptions resume_options = base_options();
  resume_options.recovery.checkpoint_dir = dir.path();
  resume_options.recovery.resume = true;

  // Strict first: the rejection throws before anything is replayed (and
  // before the fallback run below overwrites the snapshot).
  resume_options.recovery.strict = true;
  EmapPipeline strict(testing::small_mdb(4), EmapConfig{changed},
                      resume_options);
  EXPECT_THROW(strict.run(input()), robust::CheckpointError);

  resume_options.recovery.strict = false;
  EmapPipeline fallback(testing::small_mdb(4), EmapConfig{changed},
                        resume_options);
  const RunResult result = fallback.run(input());
  EXPECT_FALSE(result.robust.recovery.resumed);
  EXPECT_TRUE(result.robust.recovery.cold_start_fallback);
  EXPECT_NE(result.robust.recovery.reject_reason.find("config"),
            std::string::npos);
}

TEST_F(RecoveryTest, ResumeAgainstADifferentInputIsRejected) {
  testing::TempDir dir("recovery_input");
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  run_with(options);

  PipelineOptions resume_options = base_options();
  resume_options.recovery.checkpoint_dir = dir.path();
  resume_options.recovery.resume = true;

  // Strict first: the fallback run below overwrites the snapshot with the
  // new input's fingerprint.
  resume_options.recovery.strict = true;
  EmapPipeline strict(testing::small_mdb(4), EmapConfig{}, resume_options);
  EXPECT_THROW(strict.run(input(22)), robust::CheckpointError);

  resume_options.recovery.strict = false;
  const RunResult result = run_with(resume_options, /*input_seed=*/22);
  EXPECT_FALSE(result.robust.recovery.resumed);
  EXPECT_TRUE(result.robust.recovery.cold_start_fallback);
  EXPECT_NE(result.robust.recovery.reject_reason.find("input"),
            std::string::npos);
}

TEST_F(RecoveryTest, RecoveryMetricsAndReportFieldsAreWired) {
  testing::TempDir dir("recovery_metrics");
  obs::MetricsRegistry registry;
  robust::CrashPointRegistry crashpoints;
  PipelineOptions options = base_options();
  options.recovery.checkpoint_dir = dir.path();
  options.metrics = &registry;
  options.crashpoints = &crashpoints;
  {
    robust::ScopedCrashSchedule guard(crashpoints,
                                      {"pipeline_window_start", 10});
    EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
    EXPECT_THROW(pipeline.run(input()), robust::InjectedCrash);
  }
  options.crashpoints = nullptr;
  options.recovery.resume = true;
  const RunResult resumed = run_with(options);
  ASSERT_TRUE(resumed.robust.recovery.resumed);
  const std::string summary = run_summary_json(resumed);
  EXPECT_NE(summary.find("\"robust_recovered\":true"), std::string::npos);
  EXPECT_NE(summary.find("\"recovery_checkpoints_written\":"),
            std::string::npos);
  // Every resumed window is flagged in the CSV column source field.
  for (const IterationRecord& record : resumed.iterations) {
    EXPECT_TRUE(record.recovered);
  }
}

}  // namespace
}  // namespace emap::core
