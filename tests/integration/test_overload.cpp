// Chaos integration suite for the adaptive overload control loop.
//
// The centerpiece drives the full pipeline through an engineered overload:
// an edge device whose per-signal bookkeeping makes the full top-100
// tracked set blow the 1 s budget (but a shed top-50 fit comfortably), a
// lossy cloud link, and an electrode-pop artifact burst.  The run must
// degrade, shed, exclude the artifacts, and return to NOMINAL with zero
// deadline misses after stabilization.  Satellite scenarios cover the
// clean-run bit-identity contract, the watchdog's CRITICAL escape hatch,
// per-run counter reset on a reused pipeline, the breaker under permanent
// outage, and cloud-side admission shedding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "emap/core/cloud_service.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/obs/export.hpp"
#include "emap/sim/device.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

constexpr std::size_t kWindow = 256;

synth::Recording seizure_input(std::uint64_t seed, double duration,
                               double onset) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

/// Calibrated overload: with delta = -0.5 every scanned offset is a search
/// candidate, so the cloud delivers the full top-100 correlation set, and
/// with delta_area relaxed the set never decays — tracking cost is pure,
/// deterministic per-signal overhead.  At 12 ms per signal the full set
/// costs 1.2 s (a hard miss) while the level-1 shed set of 50 costs 0.6 s,
/// safely below the 0.8 s near-miss band.
EmapConfig overload_config() {
  EmapConfig config;
  config.delta = -0.5;
  config.delta_area = 50000.0;
  return config;
}

sim::DeviceProfile overload_edge() {
  sim::DeviceProfile profile = sim::edge_raspberry_pi();
  profile.name = "overload-edge";
  profile.per_signal_overhead_sec = 0.012;
  return profile;
}

/// ~1000x slower than the calibrated Pi: one track step exceeds the
/// watchdog's stuck threshold (5x the 1 s budget), not just the budget.
sim::DeviceProfile glacial_edge() {
  sim::DeviceProfile profile = sim::edge_raspberry_pi();
  profile.name = "glacial";
  profile.mac_ops_per_sec /= 1000.0;
  profile.abs_ops_per_sec /= 1000.0;
  profile.per_signal_overhead_sec *= 1000.0;
  return profile;
}

/// Electrode pops (+60 uV on every 4th sample) across windows [30, 33):
/// the quality gate must classify these as artifacts and exclude them.
void inject_artifact_burst(synth::Recording& input) {
  for (std::size_t w = 30; w < 33; ++w) {
    for (std::size_t i = 0; i < 16; ++i) {
      input.samples[w * kWindow + i * 4] += 60.0;
    }
  }
}

PipelineOptions chaos_options() {
  PipelineOptions options;
  options.robust.enabled = true;
  options.fault.up.drop = 0.3;
  options.fault.down.drop = 0.3;
  options.fault.seed = 4;  // first cloud call needs a retry with this seed
  options.edge_device = overload_edge();
  return options;
}

TEST(Overload, ChaosRunDegradesShedsAndRecoversToNominal) {
  synth::Recording input = seizure_input(11, 60.0, 50.0);
  inject_artifact_burst(input);

  obs::MetricsRegistry registry;
  PipelineOptions options = chaos_options();
  options.metrics = &registry;
  EmapPipeline pipeline(testing::small_mdb(6), overload_config(), options);
  const RunResult result = pipeline.run(input);

  // The full top-100 set missed the budget, the controller entered
  // DEGRADED and shed, and the lighter set carried the rest of the run
  // back to (and through) NOMINAL.
  ASSERT_TRUE(result.robust.enabled);
  EXPECT_TRUE(result.robust.degrade.entered_degraded);
  EXPECT_GE(result.robust.degrade.max_shed_level, 1u);
  EXPECT_EQ(result.robust.degrade.final_state,
            robust::DegradeState::kNominal);
  EXPECT_EQ(result.robust.critical_windows, 0u);
  EXPECT_EQ(result.robust.watchdog_trips, 0u);

  // The lossy link was really exercised and survived.
  EXPECT_GE(result.cloud_calls, 1u);
  EXPECT_GE(result.retry_attempts, 1u);
  EXPECT_EQ(result.failed_cloud_calls, 0u);

  // The artifact burst was gated: those windows ran no tracking step and
  // the quality summary attributes them.
  EXPECT_EQ(result.robust.quality.artifact, 3u);
  for (std::size_t w = 30; w < 33; ++w) {
    const IterationRecord& record = result.iterations[w];
    EXPECT_EQ(record.quality, robust::QualityVerdict::kArtifact) << w;
    EXPECT_FALSE(record.tracked) << w;
  }

  // Stability after the incident: once the shed set is in place (a few
  // windows after the single overload miss) every tracked window stays
  // inside the budget, P_A is always finite and in range, and the run
  // ends NOMINAL.
  std::size_t misses_after_stabilization = 0;
  for (const IterationRecord& record : result.iterations) {
    EXPECT_TRUE(std::isfinite(record.anomaly_probability));
    EXPECT_GE(record.anomaly_probability, 0.0);
    EXPECT_LE(record.anomaly_probability, 1.0);
    if (record.window_index >= 5 && record.tracked &&
        record.track_device_sec > 1.0) {
      ++misses_after_stabilization;
    }
  }
  EXPECT_EQ(misses_after_stabilization, 0u);
  const IterationRecord& last = result.iterations.back();
  EXPECT_EQ(last.robust_state, robust::DegradeState::kNominal);

  // Observability: state gauge back at 0, every transition recorded, and
  // the deferred telemetry flushed by run end.
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_robust_state 0"), std::string::npos);
  EXPECT_NE(text.find("emap_robust_transitions_total{from=\"nominal\","
                      "to=\"degraded\"} 1"),
            std::string::npos);
  EXPECT_GE(result.robust.deferred_flushes, 1u);
}

TEST(Overload, CleanRunWithRobustOnIsBitIdenticalToRobustOff) {
  const synth::Recording input = seizure_input(11, 25.0, 20.0);

  PipelineOptions robust_on;
  robust_on.robust.enabled = true;
  EmapPipeline with(testing::small_mdb(6), EmapConfig{}, robust_on);
  const RunResult on = with.run(input);

  PipelineOptions robust_off;
  robust_off.robust.enabled = false;
  EmapPipeline without(testing::small_mdb(6), EmapConfig{}, robust_off);
  const RunResult off = without.run(input);

  // A clean default run never leaves NOMINAL: nothing is shed, gated, or
  // rejected, so the P_A trajectory and the alarm are bit-identical.
  EXPECT_FALSE(on.robust.degrade.entered_degraded);
  EXPECT_EQ(on.robust.quality.bad(), 0u);
  EXPECT_EQ(on.robust.breaker.opens, 0u);
  ASSERT_EQ(on.iterations.size(), off.iterations.size());
  for (std::size_t i = 0; i < on.iterations.size(); ++i) {
    EXPECT_EQ(on.iterations[i].anomaly_probability,
              off.iterations[i].anomaly_probability)
        << "window " << i;
    EXPECT_EQ(on.iterations[i].tracked, off.iterations[i].tracked);
    EXPECT_EQ(on.iterations[i].set_loaded, off.iterations[i].set_loaded);
  }
  EXPECT_EQ(on.anomaly_predicted, off.anomaly_predicted);
  EXPECT_EQ(on.first_alarm_sec, off.first_alarm_sec);
}

TEST(Overload, WatchdogForcesCriticalOnGlacialEdge) {
  PipelineOptions options;
  options.robust.enabled = true;
  options.edge_device = glacial_edge();
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const RunResult result = pipeline.run(seizure_input(11, 25.0, 20.0));

  // One glacial track step crosses 5x budget: the watchdog trips and the
  // controller jumps straight to CRITICAL, after which windows serve the
  // last-known P_A without tracking.
  EXPECT_GE(result.robust.watchdog_trips, 1u);
  EXPECT_GT(result.robust.critical_windows, 0u);
  bool saw_critical_serving = false;
  double last_pa = 0.0;
  for (const IterationRecord& record : result.iterations) {
    if (record.robust_critical) {
      saw_critical_serving = true;
      EXPECT_FALSE(record.tracked);
      EXPECT_EQ(record.anomaly_probability, last_pa);
    }
    last_pa = record.anomaly_probability;
  }
  EXPECT_TRUE(saw_critical_serving);
}

TEST(Overload, RobustCountersResetBetweenRunsOnReusedPipeline) {
  synth::Recording input = seizure_input(11, 60.0, 50.0);
  inject_artifact_burst(input);
  EmapPipeline pipeline(testing::small_mdb(6), overload_config(),
                        chaos_options());

  const RunResult first = pipeline.run(input);
  const RunResult second = pipeline.run(input);

  // Runs are independent: the second run re-degrades from scratch and its
  // robust summary matches the first bit for bit instead of accumulating.
  EXPECT_TRUE(first.robust.degrade.entered_degraded);
  EXPECT_EQ(first.robust.degrade.transitions,
            second.robust.degrade.transitions);
  EXPECT_EQ(first.robust.degrade.max_shed_level,
            second.robust.degrade.max_shed_level);
  EXPECT_EQ(first.robust.degrade.windows_nominal,
            second.robust.degrade.windows_nominal);
  EXPECT_EQ(first.robust.degrade.windows_degraded,
            second.robust.degrade.windows_degraded);
  EXPECT_EQ(first.robust.quality.artifact, second.robust.quality.artifact);
  EXPECT_EQ(first.robust.breaker.opens, second.robust.breaker.opens);
  EXPECT_EQ(first.robust.deferred_flushes, second.robust.deferred_flushes);
  EXPECT_EQ(first.robust.shed_loads, second.robust.shed_loads);
  ASSERT_EQ(first.iterations.size(), second.iterations.size());
  for (std::size_t i = 0; i < first.iterations.size(); ++i) {
    EXPECT_EQ(first.iterations[i].robust_state,
              second.iterations[i].robust_state)
        << "window " << i;
    EXPECT_EQ(first.iterations[i].anomaly_probability,
              second.iterations[i].anomaly_probability)
        << "window " << i;
  }
}

TEST(Overload, BreakerOpensUnderPermanentOutageAndRunSurvives) {
  PipelineOptions options;
  options.robust.enabled = true;
  options.fault.down.drop = 1.0;  // no response ever arrives
  options.retry.max_attempts = 2;
  options.retry.max_timeout_sec = 1.5;
  options.retry.deadline_sec = 3.0;
  EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
  const RunResult result = pipeline.run(seizure_input(3, 20.0, 15.0));

  // Every cloud call fails, the breaker opens, and subsequent windows are
  // short-circuited instead of burning retry budget.
  EXPECT_GT(result.failed_cloud_calls, 0u);
  EXPECT_GE(result.robust.breaker.opens, 1u);
  EXPECT_GT(result.robust.breaker.rejected, 0u);
  bool saw_rejected_window = false;
  for (const IterationRecord& record : result.iterations) {
    saw_rejected_window |= record.breaker_rejected;
    EXPECT_TRUE(std::isfinite(record.anomaly_probability));
  }
  EXPECT_TRUE(saw_rejected_window);
  EXPECT_EQ(result.iterations.size(), 20u);  // the run completed
}

TEST(Overload, CloudAdmissionShedsBurstBeyondCapacity) {
  CloudService service(testing::small_mdb(2), EmapConfig{}, 1);
  robust::AdmissionOptions admission;
  admission.max_queue_depth = 4;
  service.enable_admission(admission);

  net::SignalUploadMessage upload;
  upload.samples = testing::sine(16.0, 256.0, kWindow, 7.0);
  std::size_t shed = 0;
  double max_hint = 0.0;
  for (std::uint32_t i = 0; i < 12; ++i) {
    upload.sequence = i;
    ServiceRequest request{i, upload, 0.0};
    const robust::AdmissionDecision decision = service.submit(request);
    if (!decision.accepted) {
      ++shed;
      EXPECT_EQ(decision.reason, robust::ShedReason::kQueueFull);
      max_hint = std::max(max_hint, decision.retry_after_sec);
    }
  }
  EXPECT_EQ(shed, 8u);
  EXPECT_GT(max_hint, 0.0);

  const auto responses = service.process_all();
  EXPECT_EQ(responses.size(), 4u);
  EXPECT_EQ(service.stats().shed_requests, 8u);
  EXPECT_EQ(service.stats().requests, 4u);
}

TEST(Overload, AdmissionShedsOnExpiredDeadline) {
  CloudService service(testing::small_mdb(2), EmapConfig{}, 1);
  service.enable_admission();

  net::SignalUploadMessage upload;
  upload.sequence = 1;
  upload.samples = testing::sine(16.0, 256.0, kWindow, 7.0);
  // No remaining budget at all: shed for deadline, never queued.
  ServiceRequest hopeless{1, upload, 10.0};
  hopeless.deadline_sec = 10.0;
  const robust::AdmissionDecision decision = service.submit(hopeless);
  EXPECT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, robust::ShedReason::kDeadline);
  EXPECT_EQ(service.pending(), 0u);

  // A request with an open deadline sails through.
  ServiceRequest fine{2, upload, 10.0};
  EXPECT_TRUE(service.submit(fine).accepted);
  EXPECT_EQ(service.process_all().size(), 1u);
  EXPECT_EQ(service.stats().shed_requests, 1u);
}

}  // namespace
}  // namespace emap::core
