// Property tests relating Algorithm 1 to the exhaustive baseline.
#include <gtest/gtest.h>

#include <set>

#include "emap/baselines/exhaustive.hpp"
#include "emap/core/search.hpp"
#include "support/test_util.hpp"

namespace emap {
namespace {

class SearchPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static const mdb::MdbStore& store() {
    static const mdb::MdbStore s = testing::small_mdb(2);
    return s;
  }

  std::vector<double> probe() const {
    // Window drawn from a synthetic recording, filtered like the edge does.
    synth::EvalInputSpec spec;
    spec.cls = (GetParam() % 2 == 0) ? synth::AnomalyClass::kSeizure
                                     : synth::AnomalyClass::kNormal;
    spec.seed = GetParam();
    spec.duration_sec = 130.0;
    spec.onset_sec = 120.0;
    const auto input = synth::make_eval_input(spec);
    dsp::FirFilter filter{core::EmapConfig{}.filter};
    const auto filtered = filter.apply(input.samples);
    return {filtered.begin() + 110 * 256, filtered.begin() + 111 * 256};
  }
};

TEST_P(SearchPropertyTest, Algorithm1CandidatesSubsetOfExhaustive) {
  core::EmapConfig config;
  config.top_k = 1000000;  // disable truncation: compare full candidate sets
  const auto window = probe();
  const auto fast = core::CrossCorrelationSearch(config).search(window,
                                                                store());
  const auto full =
      baselines::ExhaustiveSearch(config).search(window, store());
  std::set<std::pair<std::uint64_t, std::size_t>> exhaustive_keys;
  for (const auto& match : full.matches) {
    exhaustive_keys.insert({match.set_id, match.beta});
  }
  for (const auto& match : fast.matches) {
    EXPECT_TRUE(exhaustive_keys.count({match.set_id, match.beta}))
        << "Algorithm 1 produced a candidate the exhaustive search missed";
  }
}

TEST_P(SearchPropertyTest, Algorithm1EvaluatesFarFewerOffsets) {
  core::EmapConfig config;
  const auto window = probe();
  const auto fast = core::CrossCorrelationSearch(config).search(window,
                                                                store());
  const auto full =
      baselines::ExhaustiveSearch(config).search(window, store());
  ASSERT_GT(full.stats.correlation_evals, 0u);
  EXPECT_LT(fast.stats.correlation_evals,
            full.stats.correlation_evals / 3);
}

TEST_P(SearchPropertyTest, BestExhaustiveOmegaIsUpperBound) {
  core::EmapConfig config;
  const auto window = probe();
  const auto fast = core::CrossCorrelationSearch(config).search(window,
                                                                store());
  const auto full =
      baselines::ExhaustiveSearch(config).search(window, store());
  if (!fast.matches.empty()) {
    ASSERT_FALSE(full.matches.empty());
    EXPECT_LE(fast.matches.front().omega,
              full.matches.front().omega + 1e-12);
  }
}

TEST_P(SearchPropertyTest, LowerDeltaNeverShrinksCandidateCount) {
  const auto window = probe();
  core::EmapConfig strict;
  strict.delta = 0.9;
  core::EmapConfig loose;
  loose.delta = 0.6;
  const auto strict_result =
      core::CrossCorrelationSearch(strict).search(window, store());
  const auto loose_result =
      core::CrossCorrelationSearch(loose).search(window, store());
  EXPECT_GE(loose_result.stats.candidates, strict_result.stats.candidates);
}

TEST_P(SearchPropertyTest, AllMatchesExceedDelta) {
  core::EmapConfig config;
  const auto window = probe();
  const auto result =
      core::CrossCorrelationSearch(config).search(window, store());
  for (const auto& match : result.matches) {
    EXPECT_GT(match.omega, config.delta);
    EXPECT_LE(match.omega, 1.0);
    EXPECT_LT(match.beta, mdb::kSignalSetLength - config.window_length);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace emap
