// Durable streaming: crash-consistent checkpoint/restore for the threaded
// scheduler (docs/robustness.md "Durable streaming").
//
// The headline is the threaded analogue of the batch kill-at-every-point
// matrix (test_recovery.cpp): for every armed crash point the process is
// killed for real (std::_Exit(42) inside a gtest death-test child) while
// the live stage graph is running, and the parent then resumes from
// whatever snapshot the dead run last published.  The resumed run must
// start exactly at the snapshot's next_window, re-deliver at most one
// in-flight call per uplink worker as a failed replay entry, and settle
// the issued/applied ledger (the clean-shutdown snapshot it leaves behind
// carries no replay entries).
//
// Around the matrix: quiesce-cadence + clean-shutdown snapshot accounting,
// a supervisor restart racing the quiesce (the snapshot aborts cleanly and
// the next cadence succeeds), shed-oldest backpressure interacting with
// checkpoints (shed windows are never resurrected, nothing is counted
// twice), and the stream-topology fingerprint (mismatched resume is a
// typed reject — strict throws, non-strict cold-starts with a reason).
//
// This suite runs real threads; it is part of the ASan/TSan CI jobs and
// the threaded crash-matrix legs re-run the same kill/resume cycle
// through emapctl.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "emap/core/pipeline.hpp"
#include "emap/core/stream.hpp"
#include "emap/robust/checkpoint.hpp"
#include "emap/robust/crashpoint.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

synth::Recording seizure_input(std::uint64_t seed, double duration,
                               double onset) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

/// Threaded scheduler for the tests.  The stall timeout must exceed one
/// wall-clock cloud search (sanitizer builds slow it 10-20x); the drain
/// budget sits above it so a healthy quiesce never times out and the
/// replay ledger stays empty unless a test wedges a stage on purpose.
StreamOptions threaded_options() {
  StreamOptions options;
  options.mode = SchedulerMode::kThreaded;
  options.supervisor.poll_interval_sec = 0.01;
  options.supervisor.stall_timeout_sec = 2.0;
  options.drain_timeout_sec = 5.0;
  return options;
}

PipelineOptions durable_options(const std::filesystem::path& dir,
                                std::size_t interval) {
  PipelineOptions options;
  options.robust.enabled = true;
  options.recovery.checkpoint_dir = dir;
  options.recovery.interval_windows = interval;
  return options;
}

const robust::StageQueueSummary* find_stage(const RunResult& result,
                                            const std::string& name) {
  for (const robust::StageQueueSummary& row : result.robust.stages) {
    if (row.stage == name) {
      return &row;
    }
  }
  return nullptr;
}

std::set<std::size_t> window_set(const RunResult& result) {
  std::set<std::size_t> windows;
  for (const IterationRecord& record : result.iterations) {
    windows.insert(record.window_index);
  }
  return windows;
}

// Every cadence publishes a snapshot through the quiesce barrier, the
// clean shutdown publishes one more, and resuming from the end-of-run
// snapshot is a no-op continuation (zero new windows, no hang).
TEST(StreamRecovery, CadenceAndShutdownSnapshotsPublishDurably) {
  emap::testing::TempDir dir("stream_ckpt_cadence");
  const synth::Recording input = seizure_input(31, 20.0, 15.0);

  PipelineOptions options = durable_options(dir.path(), 5);
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
  StreamPipeline stream(engine, threaded_options());
  const RunResult result = stream.run(input);

  ASSERT_TRUE(result.robust.streamed);
  const robust::RecoverySummary& recovery = result.robust.recovery;
  EXPECT_TRUE(recovery.enabled);
  EXPECT_FALSE(recovery.resumed);
  // Cadence snapshots after windows 5/10/15/20 plus the clean-shutdown
  // snapshot (the window-20 cadence and the shutdown snapshot are
  // distinct writes over the same state).
  EXPECT_EQ(recovery.checkpoints_written, 5u);
  EXPECT_EQ(recovery.snapshot_aborts, 0u);
  EXPECT_FALSE(recovery.emergency_snapshot);
  EXPECT_EQ(recovery.last_snapshot_window, 20u);
  EXPECT_EQ(result.iterations.size(), 20u);

  const std::optional<robust::SessionState> snapshot =
      robust::read_checkpoint(dir.path());
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->next_window, 20u);
  EXPECT_EQ(snapshot->stream_fingerprint,
            stream.options().fingerprint());
  EXPECT_TRUE(snapshot->replay.empty());  // clean shutdown: ledger settled

  // Resume from the end-of-run snapshot: nothing left to do.
  PipelineOptions resume_options = durable_options(dir.path(), 5);
  resume_options.recovery.resume = true;
  resume_options.recovery.strict = true;
  EmapPipeline engine2(testing::small_mdb(4), EmapConfig{}, resume_options);
  StreamPipeline stream2(engine2, threaded_options());
  const RunResult resumed = stream2.run(input);
  EXPECT_TRUE(resumed.robust.recovery.resumed);
  EXPECT_EQ(resumed.robust.recovery.resume_window, 20u);
  EXPECT_TRUE(resumed.iterations.empty());
}

// ---------------------------------------------------------------------------
// The threaded kill matrix.  One death test per catalog point: the child
// process runs the stage graph with the point armed kExit and dies with
// exit code 42 mid-run; the parent resumes from the snapshot the child
// left behind and proves the ledger settles.
// ---------------------------------------------------------------------------

class StreamCrashMatrix : public ::testing::TestWithParam<std::string> {};

// Cloud-call points fire rarely (one hit per issued search); everything
// else fires at least once per window or per cadence, so a deeper hit
// exercises richer state (loaded tracker, in-flight calls).  With a
// one-window cadence the first snapshot commits before any second hit of
// any point, so the parent always has a snapshot to resume from.
std::uint64_t hit_for(const std::string& point) {
  return point.find("cloud_call") != std::string::npos ? 2 : 5;
}

TEST_P(StreamCrashMatrix, KillThenResumeSettlesLedger) {
  const std::string point = GetParam();
  constexpr std::size_t kWindows = 20;
  // Deterministic path shared between the death-test child (which re-runs
  // this body up to the EXPECT_EXIT) and the parent: no pid component.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("emap_stream_crash_matrix_" + point);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const synth::Recording input =
      seizure_input(37, static_cast<double>(kWindows), 15.0);

  // threadsafe style re-executes the binary for the child, so the armed
  // run starts from a clean single-threaded process before it spawns the
  // stage graph.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        robust::CrashPointRegistry registry;
        registry.arm({point, hit_for(point)}, robust::CrashAction::kExit);
        PipelineOptions options = durable_options(dir, 1);
        options.crashpoints = &registry;
        EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
        StreamPipeline stream(engine, threaded_options());
        stream.run(input);
        std::_Exit(0);  // reached only if the armed point never fired
      },
      ::testing::ExitedWithCode(robust::kCrashExitCode), "");

  // The dead run left a committed snapshot (for checkpoint_pre_rename the
  // torn write left a .tmp next to it; the previous snapshot must load).
  const std::optional<robust::SessionState> snapshot =
      robust::read_checkpoint(dir);
  ASSERT_TRUE(snapshot.has_value()) << point;
  EXPECT_LT(snapshot->next_window, kWindows) << point;
  // At most one in-flight call per uplink worker falls back to replay.
  EXPECT_LE(snapshot->replay.size(), threaded_options().stage_threads)
      << point;

  PipelineOptions options = durable_options(dir, 1);
  options.recovery.resume = true;
  options.recovery.strict = true;
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
  StreamPipeline stream(engine, threaded_options());
  const RunResult resumed = stream.run(input);

  const robust::RecoverySummary& recovery = resumed.robust.recovery;
  EXPECT_TRUE(recovery.resumed) << point;
  EXPECT_EQ(recovery.resume_window, snapshot->next_window) << point;
  EXPECT_EQ(recovery.replay_redelivered, snapshot->replay.size()) << point;
  // Exactly the remaining windows, in order, each exactly once.
  ASSERT_EQ(resumed.iterations.size(), kWindows - snapshot->next_window)
      << point;
  std::size_t expected = snapshot->next_window;
  for (const IterationRecord& record : resumed.iterations) {
    EXPECT_EQ(record.window_index, expected) << point;
    EXPECT_TRUE(record.recovered) << point;
    ++expected;
  }

  // The ledger settled: the resumed run's clean-shutdown snapshot carries
  // no unsettled replay entries and sits at the end of the input.
  const std::optional<robust::SessionState> final_snapshot =
      robust::read_checkpoint(dir);
  ASSERT_TRUE(final_snapshot.has_value()) << point;
  EXPECT_EQ(final_snapshot->next_window, kWindows) << point;
  EXPECT_TRUE(final_snapshot->replay.empty()) << point;

  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllArmedPoints, StreamCrashMatrix,
    ::testing::ValuesIn(robust::crash_point_catalog()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Supervisor restart racing a checkpoint (the quiesce-barrier abort path).
// ---------------------------------------------------------------------------

// A stage crash mid-drain (the coordinator itself dies between draining
// the ledger and publishing the file) abandons the snapshot cleanly: the
// abort is counted, no torn file is published, the supervisor restarts
// the acquire stage, and the next cadence succeeds.
TEST(StreamRecovery, CrashDuringDrainAbortsSnapshotAndNextCadenceSucceeds) {
  emap::testing::TempDir dir("stream_ckpt_drain_abort");
  const synth::Recording input = seizure_input(41, 20.0, 15.0);

  robust::CrashPointRegistry registry;
  robust::ScopedCrashSchedule schedule(registry, {"stream_drain", 1},
                                       robust::CrashAction::kThrow);
  PipelineOptions options = durable_options(dir.path(), 5);
  options.crashpoints = &registry;
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
  StreamPipeline stream(engine, threaded_options());
  const RunResult result = stream.run(input);

  // First cadence (after window 5) died mid-quiesce; cadences 10/15/20
  // and the shutdown snapshot went through.
  const robust::RecoverySummary& recovery = result.robust.recovery;
  EXPECT_EQ(recovery.snapshot_aborts, 1u);
  EXPECT_EQ(recovery.checkpoints_written, 4u);
  EXPECT_EQ(recovery.last_snapshot_window, 20u);
  EXPECT_FALSE(recovery.emergency_snapshot);

  // The acquire stage crashed once and was restarted without losing a
  // window: the heartbeat precedes the quiesce, so the restarted
  // incarnation resumes right after the already-admitted window.
  const robust::StageQueueSummary* acquire = find_stage(result, "acquire");
  ASSERT_NE(acquire, nullptr);
  EXPECT_GE(acquire->crashes, 1u);
  EXPECT_FALSE(acquire->failed);
  EXPECT_EQ(result.iterations.size(), 20u);

  // No torn file: the committed snapshot parses and is the end-of-run one.
  const std::optional<robust::SessionState> snapshot =
      robust::read_checkpoint(dir.path());
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->next_window, 20u);
}

// A crash between the temp write and the rename, under the live stage
// graph: the abandoned .tmp never shadows the committed snapshot, and the
// following cadences overwrite it with good state.
TEST(StreamRecovery, TornRenameUnderLiveGraphKeepsCommittedSnapshot) {
  emap::testing::TempDir dir("stream_ckpt_torn_rename");
  const synth::Recording input = seizure_input(43, 20.0, 15.0);

  robust::CrashPointRegistry registry;
  robust::ScopedCrashSchedule schedule(registry, {"checkpoint_pre_rename", 2},
                                       robust::CrashAction::kThrow);
  PipelineOptions options = durable_options(dir.path(), 5);
  options.crashpoints = &registry;
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
  StreamPipeline stream(engine, threaded_options());
  const RunResult result = stream.run(input);

  const robust::RecoverySummary& recovery = result.robust.recovery;
  EXPECT_EQ(recovery.snapshot_aborts, 1u);
  EXPECT_EQ(recovery.checkpoints_written, 4u);
  EXPECT_EQ(result.iterations.size(), 20u);

  // The final write renamed its temp over the snapshot; nothing torn
  // remains and the committed file carries the end-of-run state.
  EXPECT_FALSE(std::filesystem::exists(
      robust::checkpoint_path(dir.path()).string() + ".tmp"));
  const std::optional<robust::SessionState> snapshot =
      robust::read_checkpoint(dir.path());
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->next_window, 20u);
}

// ---------------------------------------------------------------------------
// Shed-oldest backpressure × checkpoints: exactly-once, never resurrected.
// ---------------------------------------------------------------------------

// A wedged predict stage under kShedOldest sheds the stalest outcome
// records; a second wedge exhausts the restart budget, the supervisor
// gives up, and the forced shutdown publishes the emergency snapshot.
// The resumed run continues from the snapshot cursor: windows the dead
// run already emitted are not re-emitted (no double-count) and windows
// shed before the snapshot stay shed (no resurrection).
TEST(StreamRecovery, ShedWindowsAreNeverResurrectedAcrossResume) {
  emap::testing::TempDir dir("stream_ckpt_shed");
  // Sized with headroom on purpose: under kShedOldest the acquire stage
  // never blocks on a downstream queue, so its admission cursor is paced
  // only by the quiesce cadences.  The give-up lands within a cadence or
  // two of the second wedge; 120 windows of input guarantee the emergency
  // snapshot's cursor sits well short of end-of-input, so the resumed run
  // always has work left to prove exactly-once delivery on.
  constexpr std::size_t kWindows = 120;
  const synth::Recording input =
      seizure_input(47, static_cast<double>(kWindows), 50.0);

  PipelineOptions options = durable_options(dir.path(), 20);
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
  StreamOptions stream_options = threaded_options();
  stream_options.policy = QueueFullPolicy::kShedOldest;
  stream_options.queue_capacity = 4;
  stream_options.supervisor.max_restarts = 1;
  // Both wedges target predict so the give-up is per-stage-budget exact.
  // The second cursor sits just past the first: shed-oldest discards
  // records *upstream* of predict, so a deep second cursor might never be
  // reached when the machine is loaded and shedding is heavy — item 12
  // arrives as soon as the restarted stage drains a handful of records.
  stream_options.faults.push_back(
      {"predict", 8, StageFaultSpec::Kind::kStall, 10.0});
  stream_options.faults.push_back(
      {"predict", 12, StageFaultSpec::Kind::kStall, 10.0});
  StreamPipeline stream(engine, stream_options);
  const RunResult crashed = stream.run(input);

  // The first wedge backed q_outcome up past its bound and shed records;
  // the second one exhausted the budget and forced the emergency snapshot.
  const robust::StageQueueSummary* outcome = find_stage(crashed, "q_outcome");
  ASSERT_NE(outcome, nullptr);
  EXPECT_GE(outcome->queue_shed, 1u);
  EXPECT_GE(crashed.robust.supervisor_stalls, 2u);
  const robust::StageQueueSummary* predict = find_stage(crashed, "predict");
  ASSERT_NE(predict, nullptr);
  EXPECT_TRUE(predict->failed);
  EXPECT_TRUE(crashed.robust.recovery.emergency_snapshot);
  EXPECT_GE(crashed.robust.recovery.checkpoints_written, 1u);

  const std::optional<robust::SessionState> snapshot =
      robust::read_checkpoint(dir.path());
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_LT(snapshot->next_window, kWindows);
  // The snapshot ledger itself is exactly-once: completed calls and
  // replay entries carry disjoint, duplicate-free sequence numbers.
  std::set<std::uint32_t> sequences;
  for (const robust::PendingCallCheckpoint& call : snapshot->completed_calls) {
    EXPECT_TRUE(sequences.insert(call.sequence).second)
        << "duplicate completed sequence " << call.sequence;
  }
  for (const robust::ReplayEntryCheckpoint& entry : snapshot->replay) {
    EXPECT_TRUE(sequences.insert(entry.sequence).second)
        << "replay sequence " << entry.sequence
        << " also recorded as completed";
  }

  PipelineOptions resume_options = durable_options(dir.path(), 20);
  resume_options.recovery.resume = true;
  resume_options.recovery.strict = true;
  EmapPipeline engine2(testing::small_mdb(4), EmapConfig{}, resume_options);
  StreamOptions resumed_options = stream_options;
  resumed_options.faults.clear();
  StreamPipeline stream2(engine2, resumed_options);
  const RunResult resumed = stream2.run(input);
  EXPECT_TRUE(resumed.robust.recovery.resumed);
  EXPECT_EQ(resumed.robust.recovery.resume_window, snapshot->next_window);

  // Exactly once: the dead run only emitted windows below the snapshot
  // cursor, the resumed run only windows at or above it — no overlap.
  const std::set<std::size_t> before = window_set(crashed);
  const std::set<std::size_t> after = window_set(resumed);
  for (std::size_t window : before) {
    EXPECT_LT(window, snapshot->next_window);
    EXPECT_EQ(after.count(window), 0u) << "window " << window
                                       << " delivered twice";
  }
  // No resurrection: windows shed (or lost to the forced shutdown) below
  // the cursor stay absent; the resumed run starts at the cursor.
  for (std::size_t window : after) {
    EXPECT_GE(window, snapshot->next_window);
  }
  EXPECT_FALSE(after.empty());
}

// ---------------------------------------------------------------------------
// Stream-topology fingerprint: mismatch is a typed reject, never silent.
// ---------------------------------------------------------------------------

TEST(StreamRecovery, TopologyMismatchIsTypedRejectNeverSilent) {
  emap::testing::TempDir dir("stream_ckpt_topology");
  const synth::Recording input = seizure_input(53, 10.0, 8.0);

  // Publish a threaded snapshot (2 workers).
  {
    PipelineOptions options = durable_options(dir.path(), 5);
    EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
    StreamPipeline stream(engine, threaded_options());
    stream.run(input);
  }

  // Strict resume under a different worker count: typed CheckpointError.
  {
    PipelineOptions options = durable_options(dir.path(), 5);
    options.recovery.resume = true;
    options.recovery.strict = true;
    EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
    StreamOptions wider = threaded_options();
    wider.stage_threads = 3;
    StreamPipeline stream(engine, wider);
    try {
      stream.run(input);
      FAIL() << "topology mismatch must throw under strict resume";
    } catch (const robust::CheckpointError& error) {
      EXPECT_NE(std::string(error.what()).find("stream topology mismatch"),
                std::string::npos)
          << error.what();
    }
  }

  // Non-strict resume: explicit cold start with the typed reason — the
  // snapshot is never silently re-shaped onto the new topology.
  {
    PipelineOptions options = durable_options(dir.path(), 5);
    options.recovery.resume = true;
    EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
    StreamOptions wider = threaded_options();
    wider.stage_threads = 3;
    StreamPipeline stream(engine, wider);
    const RunResult result = stream.run(input);
    EXPECT_FALSE(result.robust.recovery.resumed);
    EXPECT_TRUE(result.robust.recovery.cold_start_fallback);
    EXPECT_NE(result.robust.recovery.reject_reason.find(
                  "stream topology mismatch"),
              std::string::npos)
        << result.robust.recovery.reject_reason;
    EXPECT_EQ(result.iterations.size(), 10u);  // ran cold from window 0
  }

  // The batch loop rejects a threaded snapshot the same way (strict).
  {
    PipelineOptions options = durable_options(dir.path(), 5);
    options.recovery.resume = true;
    options.recovery.strict = true;
    EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
    EXPECT_THROW(engine.run(input), robust::CheckpointError);
  }

  // And the threaded scheduler rejects a batch snapshot: publish one with
  // the batch loop, then resume threaded.
  emap::testing::TempDir batch_dir("stream_ckpt_topology_batch");
  {
    PipelineOptions options = durable_options(batch_dir.path(), 5);
    EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
    engine.run(input);
  }
  {
    PipelineOptions options = durable_options(batch_dir.path(), 5);
    options.recovery.resume = true;
    options.recovery.strict = true;
    EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);
    StreamPipeline stream(engine, threaded_options());
    try {
      stream.run(input);
      FAIL() << "batch snapshot must not resume onto the threaded graph";
    } catch (const robust::CheckpointError& error) {
      EXPECT_NE(std::string(error.what()).find("stream topology mismatch"),
                std::string::npos)
          << error.what();
    }
  }
}

}  // namespace
}  // namespace emap::core
