// Soak: hours of virtual time under the time-series/alerting stack.
//
// The engine-level soak drives the exact series and rules the pipeline
// installs (default_alert_rules over emap_track_step_seconds:mean and the
// two SLO burn gauges) through 2+ simulated hours with a latency step
// injected late in the run, then asserts the whole closed loop: bounded
// series memory, the EWMA and burn rules firing with a correlated flight
// dump, and the offline CUSUM report reconstructing the changepoint
// within ±2 scrape intervals.  The pipeline-level soak runs the real
// EmapPipeline under the fault injector and pins down determinism
// (bit-identical JSONL across identical seeded runs) and the off-switch
// (timeseries disabled changes nothing about the run).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "emap/core/pipeline.hpp"
#include "emap/obs/alert.hpp"
#include "emap/obs/dashboard.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/obs/span.hpp"
#include "emap/obs/timeseries.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

constexpr double kSoakSeconds = 7200.0;  // two simulated hours
constexpr double kStepAtSec = 7000.0;    // latency regression near the end
constexpr double kBaselineTrack = 0.12;
constexpr double kSteppedTrack = 0.45;

synth::Recording seizure_input(std::uint64_t seed, double duration = 40.0,
                               double onset = 35.0) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

TEST(Soak, TwoVirtualHoursWithLateLatencyStep) {
  emap::testing::TempDir dir("soak");

  obs::MetricsRegistry registry;
  obs::Histogram& track = registry.histogram(
      "emap_track_step_seconds", {}, obs::Histogram::default_latency_bounds());
  obs::Gauge& edge_burn = registry.gauge("emap_slo_burn_rate",
                                         {{"slo", "edge_iteration"}});
  obs::Gauge& initial_burn = registry.gauge("emap_slo_burn_rate",
                                            {{"slo", "initial_response"}});

  obs::TimeSeriesOptions ts_options;
  ts_options.enabled = true;
  obs::TimeSeriesStore store(ts_options);
  obs::TimeSeriesScraper scraper(&registry, &store);

  obs::Tracer tracer;
  obs::FlightRecorder flight(256);
  flight.set_dump_path(dir.path() / "flight.jsonl");

  obs::AlertEngine::Hooks hooks;
  hooks.registry = &registry;
  hooks.tracer = &tracer;
  hooks.flight = &flight;
  obs::AlertEngine engine(obs::default_alert_rules(), hooks);

  // One virtual second per iteration, exactly like the pipeline's window
  // cadence.  Deterministic wobble keeps the EWMA variance finite.
  for (double t = 1.0; t <= kSoakSeconds; t += 1.0) {
    const double wobble = 0.001 * std::sin(0.37 * t);
    const bool stepped = t >= kStepAtSec;
    track.observe((stepped ? kSteppedTrack : kBaselineTrack) + wobble);
    edge_burn.set(stepped ? 3.0 : 0.2 + 0.05 * std::sin(0.11 * t));
    initial_burn.set(0.1);
    if (scraper.maybe_scrape(t)) {
      engine.evaluate(store, t, static_cast<std::uint64_t>(t));
    }
  }

  // Memory stayed bounded: the retention policy's hard cap held through
  // 7200 scrapes, with the raw tier long since compacting into coarser
  // ones for every series.
  EXPECT_EQ(store.scrapes(), static_cast<std::uint64_t>(kSoakSeconds));
  EXPECT_LE(store.total_buckets(), store.bucket_capacity());
  const obs::Series* mean_series = store.find("emap_track_step_seconds:mean");
  ASSERT_NE(mean_series, nullptr);
  EXPECT_LE(mean_series->total_buckets(), 3 * ts_options.tier_capacity);
  EXPECT_GT(mean_series->tier_size(1), 0u);  // compaction actually ran

  // The injected step tripped both default watchdogs...
  EXPECT_TRUE(engine.ever_fired("track_latency_step"));
  EXPECT_TRUE(engine.ever_fired("edge_iteration_burn"));
  EXPECT_FALSE(engine.ever_fired("initial_response_burn"));  // healthy SLO

  // ...at the right instants: both within a debounce of the step.
  double ewma_fired_at = -1.0;
  double burn_fired_at = -1.0;
  for (const obs::AlertTransition& transition : engine.transitions()) {
    if (!transition.firing) {
      continue;
    }
    if (transition.rule == "track_latency_step" && ewma_fired_at < 0.0) {
      ewma_fired_at = transition.t_sec;
    }
    if (transition.rule == "edge_iteration_burn" && burn_fired_at < 0.0) {
      burn_fired_at = transition.t_sec;
    }
  }
  EXPECT_GE(ewma_fired_at, kStepAtSec);
  EXPECT_LE(ewma_fired_at, kStepAtSec + 10.0);
  EXPECT_GE(burn_fired_at, kStepAtSec);
  EXPECT_LE(burn_fired_at, kStepAtSec + 10.0);
  // The EWMA alert self-resolves once the step becomes the new normal.
  EXPECT_FALSE(engine.transitions().back().firing &&
               engine.transitions().back().rule == "track_latency_step");

  // Firing left a correlated flight dump: kAlert events in the ring, a
  // dump on disk, and alert counters in the registry.
  EXPECT_GE(flight.dumps_written(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "flight.jsonl"));
  std::size_t alert_events = 0;
  for (const obs::FlightEvent& event : flight.snapshot()) {
    alert_events += event.type == obs::FlightEventType::kAlert ? 1 : 0;
  }
  EXPECT_GE(alert_events, 2u);
  EXPECT_GE(registry.counter("emap_alerts_fired_total",
                             {{"rule", "track_latency_step"}})
                .value(),
            1u);
  EXPECT_GE(tracer.size(), 2u);

  // Offline reconstruction: export, reload, and the CUSUM pass finds the
  // changepoint within ±2 scrape intervals of the injected step.
  store.write_jsonl(dir.path() / "series.jsonl");
  engine.write_jsonl(dir.path() / "alerts.jsonl");
  const obs::SeriesLoadResult loaded =
      obs::load_series_jsonl(dir.path() / "series.jsonl");
  EXPECT_EQ(loaded.skipped_lines, 0u);
  const obs::LoadedSeries* loaded_mean = nullptr;
  for (const obs::LoadedSeries& series : loaded.series) {
    if (series.key == "emap_track_step_seconds:mean") {
      loaded_mean = &series;
    }
  }
  ASSERT_NE(loaded_mean, nullptr);
  const obs::Changepoint cp = obs::cusum_changepoint(loaded_mean->buckets);
  ASSERT_TRUE(cp.found);
  EXPECT_GE(cp.t_sec, kStepAtSec - 2.0 * ts_options.scrape_interval_sec);
  EXPECT_LE(cp.t_sec, kStepAtSec + 2.0 * ts_options.scrape_interval_sec);
  EXPECT_NEAR(cp.shift, kSteppedTrack - kBaselineTrack, 0.1);

  // The rendered report ties it together (rule names + changepoint rows).
  const obs::AlertLoadResult alerts =
      obs::load_alerts_jsonl(dir.path() / "alerts.jsonl");
  EXPECT_GE(alerts.transitions.size(), 3u);
  obs::ReportOptions report_options;
  report_options.series_filter = "track_step";
  const std::string report =
      obs::render_ascii_report(loaded, alerts, report_options);
  EXPECT_NE(report.find("changepoint"), std::string::npos);
  EXPECT_NE(report.find("track_latency_step"), std::string::npos);
}

TEST(Soak, PipelineScrapesUnderFaultsWithBoundedSeries) {
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.metrics = &registry;
  options.timeseries.enabled = true;
  options.fault.up.drop = 0.2;
  options.fault.seed = 99;
  const auto result =
      EmapPipeline(emap::testing::small_mdb(4), EmapConfig{}, options)
          .run(seizure_input(21));

  ASSERT_NE(result.series, nullptr);
  ASSERT_NE(result.alerts, nullptr);
  EXPECT_GT(result.series->scrapes(), 0u);
  EXPECT_LE(result.series->total_buckets(), result.series->bucket_capacity());
  // The pipeline's own window-latency series got scraped.
  EXPECT_NE(result.series->find("emap_track_step_seconds:mean"), nullptr);
  EXPECT_EQ(result.alerts->evaluations(), result.series->scrapes());
  // A healthy short run fires nothing.
  EXPECT_EQ(result.alerts->firing_count(), 0u);
}

TEST(Soak, IdenticalSeededRunsExportBitIdenticalTelemetry) {
  auto run_once = [] {
    obs::MetricsRegistry registry;
    PipelineOptions options;
    options.metrics = &registry;
    options.timeseries.enabled = true;
    options.fault.up.drop = 0.1;
    options.fault.seed = 7;
    const auto result =
        EmapPipeline(emap::testing::small_mdb(4), EmapConfig{}, options)
            .run(seizure_input(31));
    return std::pair<std::string, std::string>(result.series->to_jsonl(),
                                               result.alerts->to_jsonl());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);    // series JSONL bit-identical
  EXPECT_EQ(first.second, second.second);  // alert JSONL bit-identical
  EXPECT_FALSE(first.first.empty());
}

TEST(Soak, ScrapingIsAPureObserverOfTheRun) {
  auto run_with = [](bool timeseries_enabled) {
    obs::MetricsRegistry registry;
    PipelineOptions options;
    options.metrics = &registry;
    options.timeseries.enabled = timeseries_enabled;
    return EmapPipeline(emap::testing::small_mdb(4), EmapConfig{}, options)
        .run(seizure_input(41));
  };
  const auto with_scraping = run_with(true);
  const auto without_scraping = run_with(false);

  // Off = no store, no engine, and — the off-switch contract — the run
  // itself is untouched by the observer.
  EXPECT_EQ(without_scraping.series, nullptr);
  EXPECT_EQ(without_scraping.alerts, nullptr);
  ASSERT_NE(with_scraping.series, nullptr);
  EXPECT_EQ(with_scraping.pa_history(), without_scraping.pa_history());
  EXPECT_EQ(with_scraping.iterations.size(),
            without_scraping.iterations.size());
  EXPECT_EQ(with_scraping.first_alarm_sec, without_scraping.first_alarm_sec);
  EXPECT_EQ(with_scraping.timings.delta_initial_sec,
            without_scraping.timings.delta_initial_sec);
}

}  // namespace
}  // namespace emap::core
