// Crash-point fuzzer: a seeded schedule of random (crash point, hit
// count) pairs driven through robust/crashpoint, asserting that every
// kill+resume replays bit-identically to the uninterrupted reference run.
// Where the recovery matrix (test_recovery.cpp) pins one curated hit per
// point, this soak samples the whole (point x hit) space — including
// first-hit crashes that land before any snapshot exists, which must fall
// back to a cold start that still matches the reference.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "emap/common/rng.hpp"
#include "emap/core/pipeline.hpp"
#include "emap/robust/checkpoint.hpp"
#include "emap/robust/crashpoint.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

constexpr std::uint64_t kFuzzSeed = 0xF422;
constexpr std::size_t kFuzzTrials = 10;

class CrashFuzzTest : public ::testing::Test {
 protected:
  static synth::Recording input() {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kSeizure;
    spec.seed = 21;
    spec.duration_sec = 40.0;
    spec.onset_sec = 30.0;
    return synth::make_eval_input(spec);
  }

  static PipelineOptions base_options() {
    PipelineOptions options;
    options.collect_trace = false;
    return options;
  }

  static RunResult run_with(const PipelineOptions& options) {
    EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{}, options);
    return pipeline.run(input());
  }

  /// Per-point total hit counts of one full (uncrashed) run with
  /// checkpointing on — the sample space the fuzzer draws hits from.
  static std::map<std::string, std::uint64_t> count_hits(
      const std::filesystem::path& checkpoint_dir) {
    robust::CrashPointRegistry registry;  // attached but never armed
    PipelineOptions options = base_options();
    options.recovery.checkpoint_dir = checkpoint_dir;
    options.crashpoints = &registry;
    run_with(options);
    std::map<std::string, std::uint64_t> counts;
    for (const std::string& point : robust::crash_point_catalog()) {
      counts[point] = registry.hits(point);
    }
    return counts;
  }

  /// Same bit-identity contract as the recovery matrix.
  static void expect_equivalent(const RunResult& resumed,
                                const RunResult& reference,
                                const std::string& label) {
    ASSERT_TRUE(resumed.robust.recovery.resumed) << label;
    ASSERT_FALSE(resumed.iterations.empty()) << label;
    for (const IterationRecord& record : resumed.iterations) {
      ASSERT_LT(record.window_index, reference.iterations.size()) << label;
      const IterationRecord& ref = reference.iterations[record.window_index];
      EXPECT_EQ(record.anomaly_probability, ref.anomaly_probability)
          << label << " window " << record.window_index;
      EXPECT_EQ(record.t_sec, ref.t_sec) << label;
      EXPECT_EQ(record.tracked, ref.tracked) << label;
      EXPECT_EQ(record.tracked_after, ref.tracked_after) << label;
      EXPECT_EQ(record.cloud_call_issued, ref.cloud_call_issued) << label;
    }
    EXPECT_EQ(resumed.anomaly_predicted, reference.anomaly_predicted)
        << label;
    EXPECT_EQ(resumed.first_alarm_sec, reference.first_alarm_sec) << label;
    EXPECT_EQ(resumed.cloud_calls, reference.cloud_calls) << label;
    EXPECT_EQ(resumed.failed_cloud_calls, reference.failed_cloud_calls)
        << label;
  }

  /// A crash before the first snapshot leaves nothing to resume; the
  /// cold-started rerun must still be a full, reference-identical run.
  static void expect_cold_start_matches(const RunResult& rerun,
                                        const RunResult& reference,
                                        const std::string& label) {
    EXPECT_FALSE(rerun.robust.recovery.resumed) << label;
    EXPECT_TRUE(rerun.robust.recovery.cold_start_fallback) << label;
    ASSERT_EQ(rerun.iterations.size(), reference.iterations.size()) << label;
    for (std::size_t i = 0; i < reference.iterations.size(); ++i) {
      EXPECT_EQ(rerun.iterations[i].anomaly_probability,
                reference.iterations[i].anomaly_probability)
          << label << " window " << i;
    }
    EXPECT_EQ(rerun.anomaly_predicted, reference.anomaly_predicted) << label;
    EXPECT_EQ(rerun.first_alarm_sec, reference.first_alarm_sec) << label;
  }
};

TEST_F(CrashFuzzTest, SeededRandomCrashSchedulesResumeBitIdentically) {
  const RunResult reference = run_with(base_options());
  ASSERT_FALSE(reference.iterations.empty());

  testing::TempDir counting_dir("crash_fuzz_count");
  const auto totals = count_hits(counting_dir.path());
  const auto& catalog = robust::crash_point_catalog();
  ASSERT_FALSE(catalog.empty());

  Rng rng(kFuzzSeed);
  std::size_t resumed_trials = 0;
  std::size_t cold_start_trials = 0;
  for (std::size_t trial = 0; trial < kFuzzTrials; ++trial) {
    const std::string& point =
        catalog[rng.uniform_index(catalog.size())];
    const std::uint64_t total = totals.at(point);
    if (total == 0) {
      continue;  // point unreachable under this workload
    }
    const std::uint64_t hit = 1 + rng.uniform_index(total);
    const std::string label = "trial " + std::to_string(trial) + ": " +
                              point + "@" + std::to_string(hit);

    testing::TempDir dir("crash_fuzz_" + std::to_string(trial));
    robust::CrashPointRegistry registry;
    PipelineOptions crash_options = base_options();
    crash_options.recovery.checkpoint_dir = dir.path();
    crash_options.crashpoints = &registry;
    {
      robust::ScopedCrashSchedule guard(registry, {point, hit});
      EmapPipeline pipeline(testing::small_mdb(4), EmapConfig{},
                            crash_options);
      EXPECT_THROW(pipeline.run(input()), robust::InjectedCrash) << label;
    }

    PipelineOptions resume_options = base_options();
    resume_options.recovery.checkpoint_dir = dir.path();
    resume_options.recovery.resume = true;
    if (std::filesystem::exists(robust::checkpoint_path(dir.path()))) {
      resume_options.recovery.strict = true;
      expect_equivalent(run_with(resume_options), reference, label);
      ++resumed_trials;
    } else {
      resume_options.recovery.strict = false;
      expect_cold_start_matches(run_with(resume_options), reference, label);
      ++cold_start_trials;
    }
  }
  // The seed is pinned, so the split below is deterministic; both recovery
  // paths must actually be exercised for the soak to mean anything.
  EXPECT_GT(resumed_trials, 0u);
  EXPECT_GT(resumed_trials + cold_start_trials, kFuzzTrials / 2);
}

// The same seed must produce the same schedule — the fuzzer is replayable
// from its log line alone.
TEST_F(CrashFuzzTest, ScheduleDerivationIsDeterministic) {
  const auto& catalog = robust::crash_point_catalog();
  Rng first(kFuzzSeed);
  Rng second(kFuzzSeed);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(first.uniform_index(catalog.size()),
              second.uniform_index(catalog.size()));
    EXPECT_EQ(first.uniform_index(1000), second.uniform_index(1000));
  }
}

}  // namespace
}  // namespace emap::core
