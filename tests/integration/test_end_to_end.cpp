// Full-path integration: synthetic corpora -> EDF files -> MDB build ->
// search -> tracking -> prediction.
#include <gtest/gtest.h>

#include "emap/core/pipeline.hpp"
#include "emap/edf/edf.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/artifacts.hpp"
#include "support/test_util.hpp"

namespace emap {
namespace {

TEST(EndToEnd, EdfIngestPathBuildsEquivalentMdb) {
  // Write one corpus through EDF and ingest it back; labels applied via the
  // recording's annotations must survive the round trip.
  testing::TempDir dir("e2e");
  auto corpora = synth::standard_corpora(2);
  const auto recordings = synth::generate_corpus(corpora[0]);

  mdb::MdbBuilder direct;
  mdb::MdbBuilder via_edf;
  for (std::size_t i = 0; i < recordings.size(); ++i) {
    const auto& recording = recordings[i];
    direct.add_recording(recording, "direct", static_cast<std::uint32_t>(i));

    const auto path = dir.path() / ("rec" + std::to_string(i) + ".edf");
    edf::EdfFile file;
    file.sample_rate_hz = recording.fs();
    edf::EdfChannel channel;
    channel.physical_min = -400.0;
    channel.physical_max = 400.0;
    channel.samples = recording.samples;
    file.channels.push_back(std::move(channel));
    edf::write_edf(path, file);
    via_edf.add_edf(
        path, "edf", static_cast<std::uint32_t>(i),
        [&recording](double t) { return recording.anomalous_at(t); },
        static_cast<std::uint8_t>(recording.spec.cls));
  }

  const auto& a = direct.store();
  const auto& b = via_edf.store();
  // EDF rounds the duration to whole records, so slice counts may differ by
  // one per recording; labels and the bulk of the content must agree.
  EXPECT_NEAR(static_cast<double>(a.size()), static_cast<double>(b.size()),
              static_cast<double>(recordings.size()));
  EXPECT_NEAR(static_cast<double>(a.count_anomalous()),
              static_cast<double>(b.count_anomalous()),
              static_cast<double>(recordings.size()));
  // Sample values survive the 16-bit EDF quantization.
  for (std::size_t k = 0; k < 100; ++k) {
    EXPECT_NEAR(a.at(0).samples[k], b.at(0).samples[k], 0.2);
  }
}

TEST(EndToEnd, MdbPersistenceRoundTripPreservesSearchResults) {
  testing::TempDir dir("persist");
  auto store = testing::small_mdb(3);
  const auto path = dir.path() / "mdb.bin";
  store.save(path);
  const auto loaded = mdb::MdbStore::load(path);

  core::EmapConfig config;
  core::CrossCorrelationSearch search(config);
  synth::EvalInputSpec spec;
  spec.duration_sec = 130.0;
  spec.onset_sec = 120.0;
  const auto input = synth::make_eval_input(spec);
  dsp::FirFilter filter(config.filter);
  const auto filtered = filter.apply(input.samples);
  const std::span<const double> window(filtered.data() + 115 * 256, 256);

  const auto a = search.search(window, store);
  const auto b = search.search(window, loaded);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].set_id, b.matches[i].set_id);
    EXPECT_EQ(a.matches[i].beta, b.matches[i].beta);
    // f32 storage rounds omega in the 7th digit.
    EXPECT_NEAR(a.matches[i].omega, b.matches[i].omega, 1e-5);
  }
}

TEST(EndToEnd, SeizureInputAlarmsBeforeOnset) {
  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(testing::small_mdb(8), core::EmapConfig{},
                              options);
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 12;
  const auto input = synth::make_eval_input(spec);
  const auto result = pipeline.run(input, spec.onset_sec);
  EXPECT_TRUE(result.anomaly_predicted);
  EXPECT_GT(result.first_alarm_sec, 0.0);
  EXPECT_LE(result.first_alarm_sec, spec.onset_sec);
}

TEST(EndToEnd, AnomalyProbabilityRisesThroughProdrome) {
  // The Fig. 2 mechanism: P_A must be higher near onset than during clean
  // background for an anomalous input.
  core::EmapPipeline pipeline(testing::small_mdb(8), core::EmapConfig{});
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 21;
  const auto input = synth::make_eval_input(spec);
  const auto result = pipeline.run(input, spec.onset_sec);

  double early_max = 0.0;
  double late_max = 0.0;
  for (const auto& record : result.iterations) {
    if (!record.tracked || record.tracked_after < 6) {
      continue;
    }
    if (record.t_sec < 50.0) {
      early_max = std::max(early_max, record.anomaly_probability);
    } else if (record.t_sec > spec.onset_sec - 60.0) {
      late_max = std::max(late_max, record.anomaly_probability);
    }
  }
  EXPECT_GT(late_max, early_max);
}

TEST(EndToEnd, PredictionSurvivesArtifactContamination) {
  // Section III's rationale for the 11-40 Hz bandpass: blinks, EMG bursts
  // and electrode pops must not break the prediction path.  The MDB is
  // built from clean recordings; only the monitored input is contaminated.
  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(testing::small_mdb(8), core::EmapConfig{},
                              options);
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 12;  // a seed known to alarm on the clean path (test above)
  const auto clean = synth::make_eval_input(spec);
  synth::ArtifactInjector injector;
  const auto dirty = injector.apply(clean);
  const auto result = pipeline.run(dirty, spec.onset_sec);
  EXPECT_TRUE(result.anomaly_predicted);
  EXPECT_LE(result.first_alarm_sec, spec.onset_sec);
}

TEST(EndToEnd, NormalInputsMostlyQuiet) {
  core::PipelineOptions options;
  options.stop_on_alarm = true;
  core::EmapPipeline pipeline(testing::small_mdb(8), core::EmapConfig{},
                              options);
  int alarms = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    synth::EvalInputSpec spec;
    spec.cls = synth::AnomalyClass::kNormal;
    spec.seed = 3000 + seed;
    spec.duration_sec = 120.0;
    const auto result = pipeline.run(synth::make_eval_input(spec));
    if (result.anomaly_predicted) {
      ++alarms;
    }
  }
  EXPECT_LE(alarms, 2);  // FPR well below half
}

}  // namespace
}  // namespace emap
