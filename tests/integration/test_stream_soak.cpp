// Streaming soak: two simulated hours on the threaded scheduler with the
// network fault injector, deterministic stage faults (stalls + crashes),
// and an armed crash point all active at once.  The run must complete with
// every injected fault recovered by the supervisor, queue depths bounded
// by their configured capacities, and the telemetry/flight artifacts
// intact.  A second scenario pins the shed-oldest backpressure policy:
// a stalled consumer bounds the queue by shedding instead of blocking,
// and the backlog registers as queue pressure in the degrade controller.
//
// This suite runs real threads; it is part of the ASan/TSan CI jobs and
// the streaming soak-smoke job (which re-runs it with artifact export).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "emap/core/pipeline.hpp"
#include "emap/core/stream.hpp"
#include "emap/obs/flight.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/robust/crashpoint.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

constexpr double kSoakSeconds = 7200.0;  // two simulated hours

synth::Recording seizure_input(std::uint64_t seed, double duration,
                               double onset) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

const robust::StageQueueSummary* find_stage(const RunResult& result,
                                            const std::string& name) {
  for (const robust::StageQueueSummary& row : result.robust.stages) {
    if (row.stage == name) {
      return &row;
    }
  }
  return nullptr;
}

TEST(StreamSoak, TwoVirtualHoursThreadedUnderFaultsAndStageFailures) {
  emap::testing::TempDir dir("stream_soak");
  const synth::Recording input = seizure_input(17, kSoakSeconds, 7150.0);

  obs::MetricsRegistry registry;
  // The ring must outlive two hours of per-window events, or the
  // supervisor's kStageStall entries (injected around windows 1000-2500)
  // would be evicted long before the end-of-run snapshot.
  obs::FlightRecorder flight(65536);
  flight.set_dump_path(dir.path() / "flight.jsonl");
  robust::CrashPointRegistry crashpoints;
  // One in-process crash mid-run, on top of the stage faults below: the
  // supervisor must treat an InjectedCrash like any other stage death.
  robust::ScopedCrashSchedule crash_guard(
      crashpoints, {"pipeline_tracker_step", 5000},
      robust::CrashAction::kThrow);

  PipelineOptions options;
  options.robust.enabled = true;
  options.metrics = &registry;
  options.flight = &flight;
  options.crashpoints = &crashpoints;
  options.timeseries.enabled = true;
  options.fault.up.drop = 0.05;
  options.fault.down.drop = 0.05;
  options.fault.seed = 23;
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);

  StreamOptions stream_options;
  stream_options.mode = SchedulerMode::kThreaded;
  stream_options.stage_threads = 2;
  stream_options.queue_capacity = 8;
  // Stall timeout must exceed one wall-clock cloud search (no heartbeat is
  // possible inside the search, and sanitizers slow it 10-20x).
  stream_options.supervisor.poll_interval_sec = 0.01;
  stream_options.supervisor.stall_timeout_sec = 2.0;
  stream_options.supervisor.max_restarts = 6;
  stream_options.faults.push_back(
      {"filter", 1000, StageFaultSpec::Kind::kStall, 10.0});
  stream_options.faults.push_back(
      {"track", 2500, StageFaultSpec::Kind::kCrash, 10.0});
  stream_options.faults.push_back(
      {"uplink0", 2, StageFaultSpec::Kind::kCrash, 10.0});
  StreamPipeline stream(engine, stream_options);
  const RunResult result = stream.run(input);

  // The run survived to the end of the input: every injected fault was
  // recovered, losing at most the in-flight item per stall/crash.
  EXPECT_TRUE(result.robust.streamed);
  EXPECT_GE(result.iterations.size(),
            static_cast<std::size_t>(kSoakSeconds) - 5);
  EXPECT_LE(result.iterations.size(), static_cast<std::size_t>(kSoakSeconds));
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    ASSERT_GT(result.iterations[i].window_index,
              result.iterations[i - 1].window_index);
  }

  // Supervisor scoreboard: the stall was detected and aborted, both
  // crashes (stage fault + crash point) restarted, and no stage ran out
  // of restart budget.
  EXPECT_GE(result.robust.supervisor_stalls, 1u);
  EXPECT_GE(result.robust.supervisor_crashes, 2u);
  EXPECT_GE(result.robust.supervisor_restarts, 3u);
  for (const char* stage :
       {"acquire", "filter", "track", "predict", "uplink0", "uplink1"}) {
    const robust::StageQueueSummary* row = find_stage(result, stage);
    ASSERT_NE(row, nullptr) << stage;
    EXPECT_FALSE(row->failed) << stage;
  }
  const robust::StageQueueSummary* filter = find_stage(result, "filter");
  EXPECT_GE(filter->stalls, 1u);
  EXPECT_GE(find_stage(result, "track")->crashes, 1u);
  EXPECT_GE(find_stage(result, "uplink0")->crashes, 1u);

  // Bounded queues: two hours of sustained load never pushed any queue
  // past its configured bound, and nothing was shed under kBlock.
  for (const char* queue :
       {"q_raw", "q_filtered", "q_uplink", "q_deliver", "q_outcome"}) {
    const robust::StageQueueSummary* row = find_stage(result, queue);
    ASSERT_NE(row, nullptr) << queue;
    EXPECT_LE(row->queue_max_depth, row->queue_capacity) << queue;
    EXPECT_EQ(row->queue_shed, 0u) << queue;
  }

  // The lossy link was really exercised and the cloud loop still closed.
  EXPECT_GE(result.cloud_calls, 1u);
  EXPECT_GE(result.retry_attempts, 1u);

  // Telemetry survived the soak bounded, and the supervisor's
  // interventions are in the flight ring.
  ASSERT_NE(result.series, nullptr);
  EXPECT_LE(result.series->total_buckets(), result.series->bucket_capacity());
  std::size_t stall_events = 0;
  for (const obs::FlightEvent& event : flight.snapshot()) {
    stall_events += event.type == obs::FlightEventType::kStageStall ? 1 : 0;
  }
  EXPECT_GE(stall_events, 1u);
}

TEST(StreamSoak, ShedOldestPolicyBoundsBacklogWhenConsumerStalls) {
  const synth::Recording input = seizure_input(29, 600.0, 550.0);

  PipelineOptions options;
  options.robust.enabled = true;
  EmapPipeline engine(testing::small_mdb(4), EmapConfig{}, options);

  StreamOptions stream_options;
  stream_options.mode = SchedulerMode::kThreaded;
  stream_options.policy = QueueFullPolicy::kShedOldest;
  stream_options.supervisor.poll_interval_sec = 0.01;
  stream_options.supervisor.stall_timeout_sec = 2.0;
  // Predict wedges mid-run: with shed-oldest, the producer side never
  // blocks — q_outcome stays bounded by discarding the stalest records
  // while the supervisor deals with the wedged consumer.
  stream_options.faults.push_back(
      {"predict", 100, StageFaultSpec::Kind::kStall, 10.0});
  StreamPipeline stream(engine, stream_options);
  const RunResult result = stream.run(input);

  EXPECT_GE(result.robust.supervisor_stalls, 1u);
  const robust::StageQueueSummary* predict = find_stage(result, "predict");
  ASSERT_NE(predict, nullptr);
  EXPECT_GE(predict->stalls, 1u);
  EXPECT_FALSE(predict->failed);

  // The backlog was shed, not grown: records were lost (that is the
  // policy's contract) but the queue never exceeded its bound.
  const robust::StageQueueSummary* outcome = find_stage(result, "q_outcome");
  ASSERT_NE(outcome, nullptr);
  EXPECT_GE(outcome->queue_shed, 1u);
  EXPECT_LE(outcome->queue_max_depth, outcome->queue_capacity);
  EXPECT_LT(result.iterations.size(), 600u);

  // The stage backlog registered as queue pressure in the controller —
  // the streaming-mode shed signal (docs/streaming.md).
  EXPECT_TRUE(result.robust.degrade.entered_degraded);
}

}  // namespace
}  // namespace emap::core
