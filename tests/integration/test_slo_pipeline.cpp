// SLO monitoring through the pipeline: a default run meets the paper's
// budgets (zero deadline misses); the same run on a deliberately slowed
// edge device pushes every track step past the 1 s window and the misses
// surface in RunResult, the metrics registry, and the exported reports.
#include <gtest/gtest.h>

#include <string>

#include "emap/core/pipeline.hpp"
#include "emap/core/report.hpp"
#include "emap/obs/export.hpp"
#include "emap/sim/device.hpp"
#include "support/test_util.hpp"

namespace emap::core {
namespace {

synth::Recording seizure_input(std::uint64_t seed, double duration = 25.0,
                               double onset = 20.0) {
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = seed;
  spec.duration_sec = duration;
  spec.onset_sec = onset;
  return synth::make_eval_input(spec);
}

/// An edge profile ~1000x slower than the calibrated Pi: every tracking
/// step blows the 1 s budget.
sim::DeviceProfile glacial_edge() {
  sim::DeviceProfile profile = sim::edge_raspberry_pi();
  profile.name = "glacial";
  profile.mac_ops_per_sec /= 1000.0;
  profile.abs_ops_per_sec /= 1000.0;
  profile.per_signal_overhead_sec *= 1000.0;
  return profile;
}

const obs::SloSummary* find_slo(const RunResult& result,
                                const std::string& name) {
  for (const auto& slo : result.slo) {
    if (slo.name == name) {
      return &slo;
    }
  }
  return nullptr;
}

TEST(SloPipeline, DefaultRunMeetsBothPaperBudgets) {
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.metrics = &registry;
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(11));

  const auto* edge = find_slo(result, "edge_iteration");
  const auto* initial = find_slo(result, "initial_response");
  ASSERT_NE(edge, nullptr);
  ASSERT_NE(initial, nullptr);
  EXPECT_GT(edge->observations, 0u);
  EXPECT_EQ(edge->deadline_misses, 0u);
  EXPECT_GT(initial->observations, 0u);
  EXPECT_EQ(initial->deadline_misses, 0u);

  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(
      text.find("emap_slo_deadline_miss_total{slo=\"edge_iteration\"} 0"),
      std::string::npos);
  EXPECT_NE(
      text.find("emap_slo_deadline_miss_total{slo=\"initial_response\"} 0"),
      std::string::npos);
}

TEST(SloPipeline, SlowedEdgeDeviceMissesTheIterationDeadline) {
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.metrics = &registry;
  options.edge_device = glacial_edge();
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(11));

  const auto* edge = find_slo(result, "edge_iteration");
  ASSERT_NE(edge, nullptr);
  EXPECT_GT(edge->observations, 0u);
  EXPECT_GT(edge->deadline_misses, 0u);
  EXPECT_GT(edge->miss_rate, 0.0);
  EXPECT_GT(edge->max_latency_sec, 1.0);

  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_slo_deadline_miss_total{slo=\"edge_iteration\"}"),
            std::string::npos);
  EXPECT_EQ(
      text.find("emap_slo_deadline_miss_total{slo=\"edge_iteration\"} 0\n"),
      std::string::npos);
}

TEST(SloPipeline, SummariesLandInRunReportJson) {
  PipelineOptions options;
  options.edge_device = glacial_edge();
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const auto result = pipeline.run(seizure_input(11));
  const std::string json = run_summary_json(result);
  EXPECT_NE(json.find("\"slo_edge_iteration_deadline_misses\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"slo_initial_response_deadline_misses\":"),
            std::string::npos);
  // The slowed run must report a nonzero edge miss count.
  EXPECT_EQ(json.find("\"slo_edge_iteration_deadline_misses\":0,"),
            std::string::npos);
}

TEST(SloPipeline, MonitorsResetBetweenRuns) {
  PipelineOptions options;
  options.edge_device = glacial_edge();
  EmapPipeline pipeline(testing::small_mdb(6), EmapConfig{}, options);
  const auto first = pipeline.run(seizure_input(11, 12.0, 10.0));
  const auto second = pipeline.run(seizure_input(11, 12.0, 10.0));
  const auto* a = find_slo(first, "edge_iteration");
  const auto* b = find_slo(second, "edge_iteration");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Fresh monitors per run: an identical second run reports identical
  // counts, not a continuation of the first run's.
  EXPECT_GT(b->observations, 0u);
  EXPECT_EQ(b->observations, a->observations);
  EXPECT_EQ(b->deadline_misses, a->deadline_misses);
}

}  // namespace
}  // namespace emap::core
