// CrashPointRegistry unit tests: catalog stability, deterministic Nth-hit
// firing, disarm/RAII semantics, and the seeded-random mode's replayability.
#include "emap/robust/crashpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "emap/common/error.hpp"

namespace emap::robust {
namespace {

TEST(CrashPoint, CatalogListsEveryInstrumentedPointInPipelineOrder) {
  const std::vector<std::string> expected = {
      "pipeline_window_start",  "pipeline_tracker_step",
      "pipeline_pre_cloud_call", "pipeline_post_cloud_call",
      "pipeline_window_end",     "checkpoint_pre_write",
      "checkpoint_pre_rename",   "checkpoint_post_write",
      "stream_quiesce",          "stream_drain",
  };
  EXPECT_EQ(crash_point_catalog(), expected);
}

TEST(CrashPoint, UnarmedRegistryOnlyCounts) {
  CrashPointRegistry registry;
  EXPECT_FALSE(registry.armed());
  for (int i = 0; i < 5; ++i) {
    registry.hit("pipeline_window_start");
  }
  registry.hit("pipeline_tracker_step");
  EXPECT_EQ(registry.hits("pipeline_window_start"), 5u);
  EXPECT_EQ(registry.hits("pipeline_tracker_step"), 1u);
  EXPECT_EQ(registry.hits("never_hit"), 0u);
  const std::vector<std::string> seen = registry.seen();
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_NE(std::find(seen.begin(), seen.end(), "pipeline_window_start"),
            seen.end());
}

TEST(CrashPoint, ArmedScheduleFiresAtExactlyTheNthHit) {
  CrashPointRegistry registry;
  registry.arm({"pipeline_window_end", 3});
  EXPECT_TRUE(registry.armed());
  registry.hit("pipeline_window_end");
  registry.hit("pipeline_window_end");
  try {
    registry.hit("pipeline_window_end");
    FAIL() << "third hit should have thrown";
  } catch (const InjectedCrash& crash) {
    EXPECT_EQ(crash.point(), "pipeline_window_end");
    EXPECT_NE(std::string(crash.what()).find("pipeline_window_end"),
              std::string::npos);
  }
  // The schedule fires once: hit 4 is past the scheduled index.
  registry.hit("pipeline_window_end");
  EXPECT_EQ(registry.hits("pipeline_window_end"), 4u);
}

TEST(CrashPoint, OtherPointsDoNotTriggerAnArmedSchedule) {
  CrashPointRegistry registry;
  registry.arm({"pipeline_pre_cloud_call", 1});
  for (int i = 0; i < 10; ++i) {
    registry.hit("pipeline_window_start");
    registry.hit("checkpoint_pre_rename");
  }
  EXPECT_THROW(registry.hit("pipeline_pre_cloud_call"), InjectedCrash);
}

TEST(CrashPoint, DisarmRevertsToPureCounting) {
  CrashPointRegistry registry;
  registry.arm({"pipeline_window_start", 1});
  registry.disarm();
  EXPECT_FALSE(registry.armed());
  registry.hit("pipeline_window_start");  // would have fired if still armed
  EXPECT_EQ(registry.hits("pipeline_window_start"), 1u);
}

TEST(CrashPoint, ScopedScheduleDisarmsEvenAfterTheCrashFires) {
  CrashPointRegistry registry;
  {
    ScopedCrashSchedule guard(registry, {"pipeline_tracker_step", 1});
    EXPECT_THROW(registry.hit("pipeline_tracker_step"), InjectedCrash);
  }
  EXPECT_FALSE(registry.armed());
  registry.hit("pipeline_tracker_step");
  EXPECT_EQ(registry.hits("pipeline_tracker_step"), 2u);
}

TEST(CrashPoint, ArmValidatesItsSchedule) {
  CrashPointRegistry registry;
  EXPECT_THROW(registry.arm({"", 1}), InvalidArgument);
  EXPECT_THROW(registry.arm({"pipeline_window_start", 0}), InvalidArgument);
  EXPECT_THROW(registry.arm_random(1.5, 7), InvalidArgument);
  EXPECT_THROW(registry.arm_random(-0.1, 7), InvalidArgument);
}

// Seeded random mode is a pure function of (seed, hit sequence): replaying
// the same hit sequence crashes at the same index.
TEST(CrashPoint, RandomModeReplaysBitForBit) {
  const auto crash_index = [](std::uint64_t seed) {
    CrashPointRegistry registry;
    registry.arm_random(0.05, seed);
    for (std::uint64_t i = 1; i <= 10000; ++i) {
      try {
        registry.hit("pipeline_window_start");
      } catch (const InjectedCrash&) {
        return i;
      }
    }
    return std::uint64_t{0};
  };
  const std::uint64_t first = crash_index(99);
  ASSERT_GT(first, 0u) << "p=0.05 over 10k hits should crash";
  EXPECT_EQ(crash_index(99), first);
  // A different seed draws a different stream (overwhelmingly likely to
  // move the crash site; equality here would be a 1-in-20 fluke, so compare
  // a couple of seeds and require at least one difference).
  EXPECT_TRUE(crash_index(100) != first || crash_index(101) != first);
}

TEST(CrashPoint, RandomModeWithZeroProbabilityNeverFires) {
  CrashPointRegistry registry;
  registry.arm_random(0.0, 7);
  for (int i = 0; i < 1000; ++i) {
    registry.hit("pipeline_window_end");
  }
  EXPECT_EQ(registry.hits("pipeline_window_end"), 1000u);
}

}  // namespace
}  // namespace emap::robust
