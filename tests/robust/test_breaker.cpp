// CircuitBreaker unit + property tests, including the liveness property
// the header promises: the breaker can never stay OPEN forever.
#include "emap/robust/breaker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/obs/export.hpp"

namespace emap::robust {
namespace {

BreakerOptions fast_options() {
  BreakerOptions options;
  options.window = 4;
  options.open_after_failures = 2;
  options.cooldown_sec = 3.0;
  options.half_open_successes = 2;
  return options;
}

TEST(Breaker, StartsClosedAndAllowsEverything) {
  CircuitBreaker breaker;
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  for (double t = 0.0; t < 10.0; t += 1.0) {
    EXPECT_TRUE(breaker.allow(t));
    breaker.record_success(t);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.summary().opens, 0u);
}

TEST(Breaker, TripsOpenAfterWindowFailures) {
  CircuitBreaker breaker(fast_options());
  breaker.record_failure(1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure(2.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.open_until_sec(), 2.0 + 3.0);
  // Calls inside the cooldown are short-circuited and counted.
  EXPECT_FALSE(breaker.allow(3.0));
  EXPECT_FALSE(breaker.allow(4.9));
  EXPECT_EQ(breaker.summary().rejected, 2u);
}

TEST(Breaker, SuccessesInterleavedKeepItClosed) {
  CircuitBreaker breaker(fast_options());  // 2 failures in a window of 4
  for (double t = 0.0; t < 40.0; t += 4.0) {
    breaker.record_failure(t);
    breaker.record_success(t + 1.0);
    breaker.record_success(t + 2.0);
    breaker.record_success(t + 3.0);
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(Breaker, CooldownExpiryAdmitsProbeAndSuccessesClose) {
  CircuitBreaker breaker(fast_options());
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.allow(5.0));  // at open_until: probe admitted
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success(5.5);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success(6.5);  // half_open_successes reached
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // The failure window restarted: one failure no longer trips.
  breaker.record_failure(7.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(Breaker, ProbeFailureReopensWithFreshCooldown) {
  CircuitBreaker breaker(fast_options());
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  ASSERT_TRUE(breaker.allow(5.0));
  breaker.record_failure(6.0);  // the probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.open_until_sec(), 6.0 + 3.0);
  EXPECT_EQ(breaker.summary().opens, 2u);
}

TEST(Breaker, InvalidOptionsThrow) {
  BreakerOptions options;
  options.open_after_failures = 0;
  EXPECT_THROW(CircuitBreaker{options}, InvalidArgument);
  options = BreakerOptions{};
  options.open_after_failures = options.window + 1;
  EXPECT_THROW(CircuitBreaker{options}, InvalidArgument);
  options = BreakerOptions{};
  options.cooldown_sec = -1.0;
  EXPECT_THROW(CircuitBreaker{options}, InvalidArgument);
}

TEST(Breaker, MetricsExportStateOpensAndRejections) {
  obs::MetricsRegistry registry;
  CircuitBreaker breaker(fast_options(), &registry);
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  EXPECT_FALSE(breaker.allow(2.5));
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_robust_breaker_opens_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_robust_breaker_rejected_total 1"),
            std::string::npos);
}

// --- RetryAfter hint (fed into net::RetryPolicy::backoff_for) ---------

TEST(Breaker, RetryAfterHintIsZeroWhileClosed) {
  CircuitBreaker breaker(fast_options());
  EXPECT_DOUBLE_EQ(breaker.retry_after_hint(0.0), 0.0);
  breaker.record_success(1.0);
  breaker.record_failure(2.0);  // one failure: still CLOSED
  EXPECT_DOUBLE_EQ(breaker.retry_after_hint(3.0), 0.0);
}

TEST(Breaker, RetryAfterHintAdvertisesTheRemainingCooldown) {
  CircuitBreaker breaker(fast_options());  // cooldown 3 s
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.retry_after_hint(2.0), 3.0);
  // The hint shrinks as the clock advances toward the reopen instant...
  EXPECT_DOUBLE_EQ(breaker.retry_after_hint(4.0), 1.0);
  // ...and clamps at zero once the cooldown has expired.
  EXPECT_DOUBLE_EQ(breaker.retry_after_hint(6.0), 0.0);
}

TEST(Breaker, RetryAfterHintIsZeroAgainInHalfOpen) {
  CircuitBreaker breaker(fast_options());
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  ASSERT_TRUE(breaker.allow(5.0));  // probe admitted: HALF_OPEN
  EXPECT_DOUBLE_EQ(breaker.retry_after_hint(5.0), 0.0);
}

// Property (promised in the header): whatever the outcome history, time
// reaching the cooldown expiry always admits a probe — the breaker cannot
// stay OPEN forever.
TEST(BreakerProperty, NeverStaysOpenForever) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    CircuitBreaker breaker(fast_options());
    double now = 0.0;
    for (std::size_t i = 0; i < 500; ++i) {
      now += rng.uniform(0.0, 2.0);
      if (breaker.allow(now)) {
        if (rng.uniform() < 0.6) {
          breaker.record_failure(now);
        } else {
          breaker.record_success(now);
        }
      } else {
        // Rejected: the breaker is OPEN with a finite reopen instant, and
        // advancing the clock to it always admits the probe.
        const double reopen = breaker.open_until_sec();
        ASSERT_EQ(breaker.state(), BreakerState::kOpen);
        ASSERT_GE(reopen, now);
        EXPECT_TRUE(breaker.allow(reopen))
            << "seed " << seed << " iteration " << i;
        now = std::max(now, reopen);
        breaker.record_success(now);
      }
    }
  }
}

}  // namespace
}  // namespace emap::robust
