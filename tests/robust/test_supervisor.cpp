// StageSupervisor: stall detection, crash restart with cursor resume,
// idle exemption, and the give-up path after max_restarts.  Timeouts are
// kept tiny (milliseconds) — these tests run wall-clock, unlike the rest
// of the robustness suite, because the supervisor is the one robustness
// component that is deliberately not virtual-time driven.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/obs/metrics.hpp"
#include "emap/robust/supervisor.hpp"

namespace emap::robust {
namespace {

SupervisorOptions fast_supervisor() {
  SupervisorOptions options;
  options.poll_interval_sec = 0.002;
  options.stall_timeout_sec = 0.03;
  options.max_restarts = 4;
  return options;
}

TEST(Supervisor, ValidateRejectsBadOptions) {
  SupervisorOptions options;
  options.poll_interval_sec = 0.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = SupervisorOptions{};
  options.stall_timeout_sec = options.poll_interval_sec / 2.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = SupervisorOptions{};
  options.max_restarts = 0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  EXPECT_NO_THROW(SupervisorOptions{}.validate());
}

TEST(Supervisor, CleanBodyRunsOnceWithoutIntervention) {
  StageSupervisor supervisor(fast_supervisor());
  std::atomic<int> invocations{0};
  supervisor.spawn("clean", [&](StageHealth& health) {
    ++invocations;
    for (std::uint64_t i = 1; i <= 10; ++i) {
      health.set_idle(false);
      health.heartbeat(i);
      health.set_idle(true);
    }
  });
  supervisor.join_all();

  EXPECT_EQ(invocations.load(), 1);
  EXPECT_EQ(supervisor.stalls_detected(), 0u);
  EXPECT_EQ(supervisor.restarts(), 0u);
  EXPECT_EQ(supervisor.crashes(), 0u);
  EXPECT_FALSE(supervisor.any_failed());
  const std::vector<StageStats> stats = supervisor.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "clean");
  EXPECT_EQ(stats[0].processed, 10u);
  EXPECT_FALSE(stats[0].failed);
}

TEST(Supervisor, IdleStageIsExemptFromStallVerdicts) {
  SupervisorOptions options = fast_supervisor();
  StageSupervisor supervisor(options);
  supervisor.spawn("idle", [&](StageHealth& health) {
    health.set_idle(true);
    // Silent for 5x the stall timeout — but idle, so not stalled.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        5.0 * options.stall_timeout_sec));
  });
  supervisor.join_all();
  EXPECT_EQ(supervisor.stalls_detected(), 0u);
  EXPECT_EQ(supervisor.restarts(), 0u);
}

TEST(Supervisor, StallIsDetectedAbortedAndRestarted) {
  StageSupervisor supervisor(fast_supervisor());
  std::atomic<int> invocations{0};
  supervisor.spawn("wedged", [&](StageHealth& health) {
    const int attempt = ++invocations;
    health.set_idle(false);
    health.heartbeat(1);
    if (attempt == 1) {
      // Wedge: busy (not idle), no heartbeats, until the monitor aborts.
      while (!health.abort_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;  // unwind; the supervisor restarts the body
    }
    health.set_idle(true);  // second attempt completes cleanly
  });
  supervisor.join_all();

  EXPECT_EQ(invocations.load(), 2);
  EXPECT_GE(supervisor.stalls_detected(), 1u);
  EXPECT_GE(supervisor.restarts(), 1u);
  EXPECT_FALSE(supervisor.any_failed());
}

TEST(Supervisor, CrashRestartsFromLastHeartbeatCursor) {
  StageSupervisor supervisor(fast_supervisor());
  std::atomic<int> invocations{0};
  std::atomic<std::uint64_t> resumed_at{0};
  supervisor.spawn("crashy", [&](StageHealth& health) {
    const int attempt = ++invocations;
    health.set_idle(false);
    if (attempt == 1) {
      health.heartbeat(5);
      throw std::runtime_error("injected");
    }
    resumed_at = health.resume_cursor();
    health.set_idle(true);
  });
  supervisor.join_all();

  EXPECT_EQ(invocations.load(), 2);
  EXPECT_EQ(supervisor.crashes(), 1u);
  EXPECT_GE(supervisor.restarts(), 1u);
  EXPECT_EQ(resumed_at.load(), 5u);
  EXPECT_FALSE(supervisor.any_failed());
}

TEST(Supervisor, GivesUpAfterMaxRestartsAndRunsFailureHandler) {
  SupervisorOptions options = fast_supervisor();
  options.max_restarts = 2;
  obs::MetricsRegistry registry;
  StageSupervisor supervisor(options, &registry);
  std::atomic<int> handler_calls{0};
  std::string failed_stage;
  supervisor.set_failure_handler([&](const std::string& stage) {
    ++handler_calls;
    failed_stage = stage;
  });
  std::atomic<int> invocations{0};
  supervisor.spawn("doomed", [&](StageHealth& health) {
    health.set_idle(false);
    ++invocations;
    throw std::runtime_error("always");
  });
  supervisor.join_all();

  // Initial run + max_restarts re-runs, then surrender.
  EXPECT_EQ(invocations.load(), 3);
  EXPECT_TRUE(supervisor.any_failed());
  EXPECT_EQ(handler_calls.load(), 1);
  EXPECT_EQ(failed_stage, "doomed");
  const std::vector<StageStats> stats = supervisor.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].failed);
  EXPECT_EQ(stats[0].crashes, 3u);
}

TEST(Supervisor, StallMetricIsRegisteredPerStage) {
  obs::MetricsRegistry registry;
  StageSupervisor supervisor(fast_supervisor(), &registry);
  std::atomic<int> invocations{0};
  supervisor.spawn("metered", [&](StageHealth& health) {
    health.set_idle(false);
    health.heartbeat(1);
    if (++invocations == 1) {
      while (!health.abort_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
    }
    health.set_idle(true);
  });
  supervisor.join_all();

  obs::Counter& stalls = registry.counter("emap_stage_stalls_total",
                                          {{"stage", "metered"}});
  EXPECT_GE(stalls.value(), 1u);
  obs::Counter& restarts = registry.counter("emap_stage_restarts_total",
                                            {{"stage", "metered"}});
  EXPECT_GE(restarts.value(), 1u);
}

TEST(Supervisor, RequestAbortStopsAllStagesWithoutRestarts) {
  StageSupervisor supervisor(fast_supervisor());
  std::atomic<bool> entered{false};
  supervisor.spawn("looper", [&](StageHealth& health) {
    entered = true;
    std::uint64_t i = 0;
    while (!health.abort_requested()) {
      health.set_idle(false);
      health.heartbeat(++i);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!entered) {
    std::this_thread::yield();
  }
  supervisor.request_abort();
  supervisor.join_all();
  EXPECT_EQ(supervisor.restarts(), 0u);
  EXPECT_FALSE(supervisor.any_failed());
}

}  // namespace
}  // namespace emap::robust
