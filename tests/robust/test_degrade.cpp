// DegradationController unit + property tests: entry on burn/miss,
// hysteretic recovery, CRITICAL hold, and the monotone-per-window shed
// property the header promises.
#include "emap/robust/degrade.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/obs/export.hpp"

namespace emap::robust {
namespace {

WindowSignal clean_window(std::size_t index) {
  WindowSignal signal;
  signal.window_index = index;
  signal.t_sec = static_cast<double>(index + 1);
  return signal;
}

WindowSignal miss_window(std::size_t index) {
  WindowSignal signal = clean_window(index);
  signal.deadline_miss = true;
  signal.burn_rate = 16.7;  // what one miss does to a 99.9% rolling SLO
  return signal;
}

TEST(Degrade, StaysNominalOnCleanWindows) {
  DegradationController controller;
  for (std::size_t i = 0; i < 50; ++i) {
    controller.observe_window(clean_window(i));
  }
  EXPECT_EQ(controller.state(), DegradeState::kNominal);
  EXPECT_EQ(controller.shed_level(), 0u);
  const DegradeSummary summary = controller.summary();
  EXPECT_EQ(summary.windows_nominal, 50u);
  EXPECT_EQ(summary.transitions, 0u);
  EXPECT_FALSE(summary.entered_degraded);
}

TEST(Degrade, DeadlineMissEntersDegradedAtLevelOne) {
  DegradationController controller;
  controller.observe_window(miss_window(0));
  EXPECT_EQ(controller.state(), DegradeState::kDegraded);
  EXPECT_EQ(controller.shed_level(), 1u);
  EXPECT_TRUE(controller.defer_flushes());
}

TEST(Degrade, ElevatedBurnRateAloneEntersDegraded) {
  DegradationController controller;
  WindowSignal signal = clean_window(0);
  signal.burn_rate = 2.0;  // above enter_burn_rate = 1, no hard miss yet
  controller.observe_window(signal);
  EXPECT_EQ(controller.state(), DegradeState::kDegraded);
}

TEST(Degrade, StaleBurnDoesNotReenterAfterRecovery) {
  DegradeOptions options;
  options.recover_after = 1;
  options.step_up_after = 1;
  DegradationController controller(options);
  controller.observe_window(miss_window(0));  // DEGRADED level 1
  // Recover fully: clean windows still carry the rolling burn of the miss.
  std::size_t w = 1;
  while (controller.state() != DegradeState::kNominal) {
    WindowSignal signal = clean_window(w++);
    signal.burn_rate = 16.7;
    controller.observe_window(signal);
    ASSERT_LT(w, 20u);
  }
  // The stale burn echo must not re-trip the controller...
  for (std::size_t i = 0; i < 30; ++i) {
    WindowSignal signal = clean_window(w++);
    signal.burn_rate = 16.7;
    controller.observe_window(signal);
  }
  EXPECT_EQ(controller.state(), DegradeState::kNominal);
  // ...but a fresh miss enters as usual.
  controller.observe_window(miss_window(w));
  EXPECT_EQ(controller.state(), DegradeState::kDegraded);
}

TEST(Degrade, SustainedMissesEscalateOneLevelAtATime) {
  DegradeOptions options;
  options.escalate_after = 2;
  DegradationController controller(options);
  controller.observe_window(miss_window(0));  // enter, level 1
  ASSERT_EQ(controller.shed_level(), 1u);
  controller.observe_window(miss_window(1));
  EXPECT_EQ(controller.shed_level(), 1u);  // one miss into the streak
  controller.observe_window(miss_window(2));
  EXPECT_EQ(controller.shed_level(), 2u);  // escalate_after misses
  EXPECT_EQ(controller.state(), DegradeState::kDegraded);
}

TEST(Degrade, CapStrideAndRecallScaleWithLevel) {
  DegradeOptions options;
  options.escalate_after = 1;
  DegradationController controller(options);
  EXPECT_EQ(controller.tracked_cap(100), 100u);
  EXPECT_EQ(controller.stride_multiplier(), 1u);
  EXPECT_EQ(controller.recall_threshold(30, 100), 30u);

  controller.observe_window(miss_window(0));  // level 1
  EXPECT_EQ(controller.tracked_cap(100), 50u);
  EXPECT_EQ(controller.stride_multiplier(), 2u);
  EXPECT_EQ(controller.recall_threshold(30, 100), 15u);

  controller.observe_window(miss_window(1));  // level 2
  EXPECT_EQ(controller.tracked_cap(100), 25u);
  EXPECT_EQ(controller.stride_multiplier(), 4u);
  // Proportional: 30 * 25 / 100, so a shed set does not instantly retrip
  // the cloud-call threshold.
  EXPECT_EQ(controller.recall_threshold(30, 100), 7u);
}

TEST(Degrade, SustainedMissesAtMaxLevelReachCriticalThenRecover) {
  DegradeOptions options;
  options.escalate_after = 1;
  options.critical_after = 3;
  options.critical_hold = 2;
  DegradationController controller(options);
  std::size_t w = 0;
  // Enter + escalate to the deepest level.
  controller.observe_window(miss_window(w++));
  controller.observe_window(miss_window(w++));
  ASSERT_EQ(controller.shed_level(), options.max_shed_level);
  // critical_after misses at the deepest level give up tracking.
  for (std::size_t i = 0; i < options.critical_after; ++i) {
    ASSERT_NE(controller.state(), DegradeState::kCritical);
    controller.observe_window(miss_window(w++));
  }
  EXPECT_EQ(controller.state(), DegradeState::kCritical);
  EXPECT_TRUE(controller.critical());
  // CRITICAL holds (windows carry no latency observation) then attempts
  // recovery.
  WindowSignal held = clean_window(w++);
  held.no_observation = true;
  controller.observe_window(held);
  EXPECT_EQ(controller.state(), DegradeState::kCritical);
  held = clean_window(w++);
  held.no_observation = true;
  controller.observe_window(held);
  EXPECT_EQ(controller.state(), DegradeState::kRecovering);
  EXPECT_EQ(controller.shed_level(), options.max_shed_level);
}

TEST(Degrade, RecoveringStepsUpHystereticallyToNominal) {
  DegradeOptions options;
  options.recover_after = 2;
  options.step_up_after = 2;
  DegradationController controller(options);
  controller.observe_window(miss_window(0));  // DEGRADED level 1
  controller.observe_window(clean_window(1));
  controller.observe_window(clean_window(2));
  ASSERT_EQ(controller.state(), DegradeState::kRecovering);
  ASSERT_EQ(controller.shed_level(), 1u);
  // step_up_after clean windows per restored level, then NOMINAL.
  controller.observe_window(clean_window(3));
  controller.observe_window(clean_window(4));
  EXPECT_EQ(controller.state(), DegradeState::kRecovering);
  EXPECT_EQ(controller.shed_level(), 0u);
  controller.observe_window(clean_window(5));
  controller.observe_window(clean_window(6));
  EXPECT_EQ(controller.state(), DegradeState::kNominal);
  EXPECT_FALSE(controller.defer_flushes());
}

TEST(Degrade, MissDuringRecoveryFallsBackToDegraded) {
  DegradeOptions options;
  options.recover_after = 1;
  DegradationController controller(options);
  controller.observe_window(miss_window(0));
  controller.observe_window(clean_window(1));
  ASSERT_EQ(controller.state(), DegradeState::kRecovering);
  controller.observe_window(miss_window(2));
  EXPECT_EQ(controller.state(), DegradeState::kDegraded);
}

TEST(Degrade, NearMissHoldsPositionInBothDirections) {
  DegradeOptions options;
  options.recover_after = 2;
  DegradationController controller(options);
  controller.observe_window(miss_window(0));
  WindowSignal near = clean_window(1);
  near.near_miss = true;
  for (std::size_t i = 1; i < 20; ++i) {
    near.window_index = i;
    controller.observe_window(near);
  }
  // Neither escalated nor recovered: the edge is marginal, hold at level 1.
  EXPECT_EQ(controller.state(), DegradeState::kDegraded);
  EXPECT_EQ(controller.shed_level(), 1u);
}

TEST(Degrade, StageStuckForcesCriticalImmediately) {
  DegradationController controller;
  WindowSignal signal = clean_window(0);
  signal.stage_stuck = true;
  controller.observe_window(signal);
  EXPECT_EQ(controller.state(), DegradeState::kCritical);
  EXPECT_EQ(controller.shed_level(), controller.options().max_shed_level);
}

TEST(Degrade, ForceCriticalAndTransitionLog) {
  DegradationController controller;
  controller.force_critical(7, 8.0);
  EXPECT_EQ(controller.state(), DegradeState::kCritical);
  ASSERT_EQ(controller.transitions().size(), 1u);
  EXPECT_EQ(controller.transitions()[0].from, DegradeState::kNominal);
  EXPECT_EQ(controller.transitions()[0].to, DegradeState::kCritical);
  EXPECT_EQ(controller.transitions()[0].window_index, 7u);
  EXPECT_DOUBLE_EQ(controller.transitions()[0].t_sec, 8.0);
}

TEST(Degrade, InvalidOptionsThrow) {
  DegradeOptions options;
  options.max_shed_level = 0;
  EXPECT_THROW(DegradationController{options}, InvalidArgument);
  options = DegradeOptions{};
  options.enter_burn_rate = 0.0;
  EXPECT_THROW(DegradationController{options}, InvalidArgument);
}

TEST(Degrade, MetricsExportStateAndTransitions) {
  obs::MetricsRegistry registry;
  DegradationController controller({}, &registry);
  controller.observe_window(miss_window(0));
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_robust_state 1"), std::string::npos);
  EXPECT_NE(text.find("emap_robust_shed_level 1"), std::string::npos);
  EXPECT_NE(text.find("emap_robust_transitions_total{from=\"nominal\","
                      "to=\"degraded\"} 1"),
            std::string::npos);
}

// Property (promised in the header): within any single window the shed
// level moves by at most one step, whatever the signal history.
TEST(DegradeProperty, ShedLevelIsMonotonePerWindow) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    DegradationController controller;
    std::size_t previous = controller.shed_level();
    for (std::size_t w = 0; w < 400; ++w) {
      WindowSignal signal = clean_window(w);
      signal.deadline_miss = rng.uniform() < 0.3;
      signal.near_miss = !signal.deadline_miss && rng.uniform() < 0.2;
      signal.burn_rate = rng.uniform() * 3.0;
      signal.no_observation = rng.uniform() < 0.1;
      signal.stage_stuck = rng.uniform() < 0.02;
      controller.observe_window(signal);
      const std::size_t level = controller.shed_level();
      const auto delta = static_cast<long long>(level) -
                         static_cast<long long>(previous);
      // stage_stuck jumps straight to the deepest level by design; every
      // other path moves one step at a time.
      if (!signal.stage_stuck) {
        EXPECT_LE(std::llabs(delta), 1ll)
            << "seed " << seed << " window " << w;
      }
      EXPECT_LE(level, controller.options().max_shed_level);
      previous = level;
    }
  }
}

// --- Adaptive (EWMA-driven) shedding ---------------------------------

WindowSignal near_miss_window(std::size_t index) {
  WindowSignal signal = clean_window(index);
  signal.near_miss = true;
  return signal;
}

DegradeOptions adaptive_options() {
  DegradeOptions options;
  options.adaptive = true;
  options.escalate_after = 3;  // the streak rule the EWMA replaces
  return options;
}

DegradeOptions streak_options() {
  DegradeOptions options;
  options.escalate_after = 3;
  return options;
}

// The motivating workload: misses interleaved with near misses.  The
// streak counters reset on every near miss, so the fixed controller never
// escalates past level 1; the pressure EWMA accumulates and sheds deeper.
TEST(DegradeAdaptive, ShedsUnderInterleavedOverloadWhereStreaksCannot) {
  DegradationController fixed(streak_options());
  DegradationController adaptive(adaptive_options());
  for (std::size_t w = 0; w < 30; ++w) {
    const WindowSignal signal =
        (w % 2 == 0) ? miss_window(w) : near_miss_window(w);
    fixed.observe_window(signal);
    adaptive.observe_window(signal);
  }
  EXPECT_EQ(fixed.shed_level(), 1u)
      << "streaks reset on near misses; fixed controller is stuck";
  EXPECT_GT(adaptive.shed_level(), 1u)
      << "EWMA pressure must accumulate across the interleaving";
  EXPECT_GT(adaptive.pressure_ewma(),
            adaptive.options().escalate_pressure);
}

// Under a solid step overload the adaptive controller must not be slower
// than the streak rule: shed onset at least as early, same deepest level.
TEST(DegradeAdaptive, StepOverloadShedsAtLeastAsFastAsStreaks) {
  DegradationController fixed(streak_options());
  DegradationController adaptive(adaptive_options());
  std::size_t first_deep_fixed = 0;
  std::size_t first_deep_adaptive = 0;
  for (std::size_t w = 0; w < 40; ++w) {
    fixed.observe_window(miss_window(w));
    adaptive.observe_window(miss_window(w));
    if (first_deep_fixed == 0 && fixed.shed_level() >= 2) {
      first_deep_fixed = w + 1;
    }
    if (first_deep_adaptive == 0 && adaptive.shed_level() >= 2) {
      first_deep_adaptive = w + 1;
    }
  }
  ASSERT_GT(first_deep_fixed, 0u);
  ASSERT_GT(first_deep_adaptive, 0u);
  EXPECT_LE(first_deep_adaptive, first_deep_fixed);
  EXPECT_EQ(adaptive.shed_level(), adaptive.options().max_shed_level);
}

// No oscillation on a clean run: adaptive mode is behaviour-preserving
// when nothing is wrong.
TEST(DegradeAdaptive, CleanRunStaysNominalWithoutOscillation) {
  DegradationController controller(adaptive_options());
  for (std::size_t w = 0; w < 200; ++w) {
    controller.observe_window(clean_window(w));
  }
  EXPECT_EQ(controller.state(), DegradeState::kNominal);
  EXPECT_EQ(controller.shed_level(), 0u);
  EXPECT_EQ(controller.summary().transitions, 0u);
  EXPECT_DOUBLE_EQ(controller.pressure_ewma(), 0.0);
}

// After the overload clears, the EWMA decays below the (lower) recovery
// threshold and the controller walks back to NOMINAL — the hysteresis gap
// means no shed/recover flapping on the way down.
TEST(DegradeAdaptive, RecoversHystereticallyOnceTheEwmaDecays) {
  DegradationController controller(adaptive_options());
  std::size_t w = 0;
  for (; w < 20; ++w) {
    controller.observe_window(miss_window(w));
  }
  ASSERT_EQ(controller.shed_level(), controller.options().max_shed_level);
  std::size_t previous = controller.shed_level();
  for (std::size_t i = 0; i < 200 && controller.state() != DegradeState::kNominal;
       ++i, ++w) {
    controller.observe_window(clean_window(w));
    // Recovery is monotone: the level never climbs on a clean window.
    EXPECT_LE(controller.shed_level(), previous) << "window " << w;
    previous = controller.shed_level();
  }
  EXPECT_EQ(controller.state(), DegradeState::kNominal);
  EXPECT_EQ(controller.shed_level(), 0u);
}

TEST(DegradeAdaptive, InvalidPressureKnobsThrow) {
  DegradeOptions options = adaptive_options();
  options.pressure_alpha = 0.0;
  EXPECT_THROW(DegradationController{options}, InvalidArgument);
  options = adaptive_options();
  options.escalate_pressure = 1.5;
  EXPECT_THROW(DegradationController{options}, InvalidArgument);
  options = adaptive_options();
  options.recover_pressure = options.escalate_pressure;  // need strict gap
  EXPECT_THROW(DegradationController{options}, InvalidArgument);
}

// The monotone-per-window property must hold in adaptive mode too.
TEST(DegradeAdaptive, ShedLevelStaysMonotonePerWindow) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    DegradationController controller(adaptive_options());
    std::size_t previous = controller.shed_level();
    for (std::size_t w = 0; w < 400; ++w) {
      WindowSignal signal = clean_window(w);
      signal.deadline_miss = rng.uniform() < 0.3;
      signal.near_miss = !signal.deadline_miss && rng.uniform() < 0.3;
      signal.burn_rate = rng.uniform() * 3.0;
      controller.observe_window(signal);
      const std::size_t level = controller.shed_level();
      const auto delta = static_cast<long long>(level) -
                         static_cast<long long>(previous);
      EXPECT_LE(std::llabs(delta), 1ll) << "seed " << seed << " window " << w;
      previous = level;
    }
  }
}

// Property: summary window counts partition the observed windows.
TEST(DegradeProperty, SummaryWindowCountsPartitionTheRun) {
  Rng rng(42);
  DegradationController controller;
  const std::size_t windows = 500;
  for (std::size_t w = 0; w < windows; ++w) {
    WindowSignal signal = clean_window(w);
    signal.deadline_miss = rng.uniform() < 0.25;
    controller.observe_window(signal);
  }
  const DegradeSummary summary = controller.summary();
  EXPECT_EQ(summary.windows_nominal + summary.windows_degraded +
                summary.windows_critical + summary.windows_recovering,
            windows);
}

}  // namespace
}  // namespace emap::robust
