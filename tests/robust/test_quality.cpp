// SignalQualityGate unit tests: the four verdicts, their severity order,
// calibration against the synthesizer's clean output, and counters.
#include "emap/robust/quality.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/obs/export.hpp"
#include "emap/synth/corpus.hpp"
#include "support/test_util.hpp"

namespace emap::robust {
namespace {

constexpr std::size_t kWindow = 256;

TEST(Quality, CleanSineWindowPasses) {
  SignalQualityGate gate;
  const auto window = testing::sine(12.0, 256.0, kWindow, /*amp=*/10.0);
  const QualityReport report = gate.assess(window);
  EXPECT_TRUE(report.good());
  EXPECT_EQ(report.verdict, QualityVerdict::kGood);
  EXPECT_GT(report.stddev, 1.0);
}

TEST(Quality, SynthesizedRecordingNeverGatesByDefault) {
  // Calibration contract: the generator's clean output (amplitude scale
  // ~10) sits far inside every default threshold, so a default run is
  // bit-identical with the gate on.
  SignalQualityGate gate;
  synth::EvalInputSpec spec;
  spec.seed = 5;
  spec.duration_sec = 30.0;
  spec.onset_sec = 20.0;
  const auto input = synth::make_eval_input(spec);
  for (std::size_t offset = 0; offset + kWindow <= input.samples.size();
       offset += kWindow) {
    const QualityReport report = gate.assess(
        std::span<const double>(input.samples.data() + offset, kWindow));
    EXPECT_TRUE(report.good()) << "window at " << offset;
  }
  EXPECT_EQ(gate.summary().bad(), 0u);
}

TEST(Quality, NanWindowDetected) {
  SignalQualityGate gate;
  auto window = testing::sine(12.0, 256.0, kWindow, 10.0);
  window[17] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(gate.assess(window).verdict, QualityVerdict::kNan);
}

TEST(Quality, FlatlineDetected) {
  SignalQualityGate gate;
  const std::vector<double> window(kWindow, 3.0);  // DC offset, zero stddev
  const QualityReport report = gate.assess(window);
  EXPECT_EQ(report.verdict, QualityVerdict::kFlatline);
  EXPECT_LT(report.stddev, gate.options().flatline_stddev);
}

TEST(Quality, SaturationDetected) {
  SignalQualityGate gate;
  auto window = testing::sine(12.0, 256.0, kWindow, 10.0);
  // Clip 10% of samples to the rails (default threshold is 5%).
  for (std::size_t i = 0; i < kWindow / 10; ++i) {
    window[i * 10] = (i % 2 == 0) ? 150.0 : -150.0;
  }
  const QualityReport report = gate.assess(window);
  EXPECT_EQ(report.verdict, QualityVerdict::kSaturated);
  EXPECT_GT(report.saturated_fraction, gate.options().saturation_fraction);
}

TEST(Quality, HighAmplitudeArtifactDetected) {
  SignalQualityGate gate;
  auto window = testing::sine(12.0, 256.0, kWindow, 10.0);
  window[100] = 60.0;  // a single electrode-pop-sized spike
  const QualityReport report = gate.assess(window);
  EXPECT_EQ(report.verdict, QualityVerdict::kArtifact);
  EXPECT_DOUBLE_EQ(report.peak_abs, 60.0);
}

TEST(Quality, NanOutranksEveryOtherVerdict) {
  SignalQualityGate gate;
  std::vector<double> window(kWindow,
                             std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(gate.assess(window).verdict, QualityVerdict::kNan);
}

TEST(Quality, SummaryCountsPerReason) {
  SignalQualityGate gate;
  gate.assess(testing::sine(12.0, 256.0, kWindow, 10.0));
  gate.assess(std::vector<double>(kWindow, 0.0));
  auto spiky = testing::sine(12.0, 256.0, kWindow, 10.0);
  spiky[5] = 99.0;
  gate.assess(spiky);
  const QualitySummary summary = gate.summary();
  EXPECT_EQ(summary.assessed, 3u);
  EXPECT_EQ(summary.good, 1u);
  EXPECT_EQ(summary.flatline, 1u);
  EXPECT_EQ(summary.artifact, 1u);
  EXPECT_EQ(summary.bad(), 2u);
}

TEST(Quality, VerdictNamesAreStable) {
  EXPECT_STREQ(quality_verdict_name(QualityVerdict::kGood), "good");
  EXPECT_STREQ(quality_verdict_name(QualityVerdict::kNan), "nan");
  EXPECT_STREQ(quality_verdict_name(QualityVerdict::kFlatline), "flatline");
  EXPECT_STREQ(quality_verdict_name(QualityVerdict::kSaturated),
               "saturated");
  EXPECT_STREQ(quality_verdict_name(QualityVerdict::kArtifact), "artifact");
}

TEST(Quality, InvalidOptionsThrow) {
  QualityOptions options;
  options.flatline_stddev = -1.0;
  EXPECT_THROW(SignalQualityGate{options}, InvalidArgument);
  options = QualityOptions{};
  options.saturation_fraction = 1.5;
  EXPECT_THROW(SignalQualityGate{options}, InvalidArgument);
}

TEST(Quality, MetricsExportPerReasonCounts) {
  obs::MetricsRegistry registry;
  SignalQualityGate gate({}, &registry);
  gate.assess(std::vector<double>(kWindow, 0.0));
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_robust_quality_windows_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_robust_quality_bad_windows_total{"
                      "reason=\"flatline\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace emap::robust
