// Snapshot integrity tests: the round-trip property
// decode_session(encode_session(s)) == s for fuzzed session states, the
// corruption fuzz (bit flips, truncation, version skew all fail closed
// with CheckpointError — never UB; CI runs this binary under ASan/UBSan),
// and the atomic write-rename publication semantics.
#include "emap/robust/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "emap/common/error.hpp"
#include "emap/common/rng.hpp"
#include "emap/robust/crashpoint.hpp"
#include "support/test_util.hpp"

namespace emap::robust {
namespace {

RngState fuzz_rng_state(Rng& rng) {
  RngState state;
  for (auto& word : state.state) {
    word = rng.next_u64();
  }
  state.seed = rng.next_u64();
  state.spare_normal = rng.normal();
  state.has_spare_normal = rng.bernoulli(0.5);
  return state;
}

std::vector<TrackedSignalState> fuzz_signals(Rng& rng, std::size_t max_sets) {
  std::vector<TrackedSignalState> signals(
      static_cast<std::size_t>(rng.uniform_index(max_sets + 1)));
  for (auto& signal : signals) {
    signal.set_id = rng.next_u64();
    signal.omega = rng.uniform(-2.0, 2.0);
    signal.beta = rng.uniform_index(513);
    signal.anomalous = rng.bernoulli(0.5);
    signal.class_tag = static_cast<std::uint8_t>(rng.uniform_index(5));
    signal.samples.resize(static_cast<std::size_t>(rng.uniform_index(17)));
    for (auto& sample : signal.samples) {
      sample = rng.normal();
    }
  }
  return signals;
}

obs::SloMonitorState fuzz_slo(Rng& rng) {
  obs::SloMonitorState slo;
  slo.observations = rng.next_u64() % 10000;
  slo.deadline_misses = rng.next_u64() % 100;
  slo.near_misses = rng.next_u64() % 100;
  slo.max_latency_sec = rng.uniform(0.0, 5.0);
  slo.recent_miss.resize(static_cast<std::size_t>(rng.uniform_index(33)));
  for (auto& miss : slo.recent_miss) {
    miss = rng.bernoulli(0.2) ? 1 : 0;
  }
  slo.recent_next = rng.next_u64() % (slo.recent_miss.size() + 1);
  slo.recent_count = slo.recent_miss.size();
  slo.recent_misses = rng.next_u64() % (slo.recent_miss.size() + 1);
  return slo;
}

/// A fully populated, randomized session state (small vectors; the codec
/// is size-agnostic and the fuzz wants many states, not huge ones).
SessionState fuzz_state(std::uint64_t seed) {
  Rng rng(seed);
  SessionState s;
  s.config_fingerprint = "fp" + std::to_string(rng.next_u64() % 100000000);
  s.input_fingerprint = static_cast<std::uint32_t>(rng.next_u64());
  s.next_window = rng.next_u64() % 100000;
  s.last_pa = rng.uniform();
  s.last_loaded_sequence =
      rng.bernoulli(0.2) ? -1 : static_cast<std::int64_t>(rng.next_u64() % 500);
  s.counters.cloud_calls = rng.next_u64() % 1000;
  s.counters.failed_cloud_calls = rng.next_u64() % 100;
  s.counters.retry_attempts = rng.next_u64() % 100;
  s.counters.duplicates_discarded = rng.next_u64() % 100;
  s.counters.degraded = rng.bernoulli(0.5);
  s.counters.first_round_trip_recorded = rng.bernoulli(0.5);
  s.counters.delta_ec_sec = rng.uniform(0.0, 2.0);
  s.counters.delta_cs_sec = rng.uniform(0.0, 2.0);
  s.counters.delta_ce_sec = rng.uniform(0.0, 2.0);
  s.counters.delta_initial_sec = rng.uniform(0.0, 6.0);
  s.counters.total_track_sec = rng.uniform(0.0, 100.0);
  s.counters.track_steps = rng.next_u64() % 100000;
  s.counters.max_track_sec = rng.uniform(0.0, 2.0);
  s.counters.critical_windows = rng.next_u64() % 100;
  s.counters.shed_loads = rng.next_u64() % 100;
  s.counters.deferred_flushes = rng.next_u64() % 100;
  s.counters.watchdog_trips = rng.next_u64() % 10;
  s.counters.quality.assessed = 100 + rng.next_u64() % 100;
  s.counters.quality.good = rng.next_u64() % 100;
  s.counters.quality.nan = rng.next_u64() % 10;
  s.counters.quality.flatline = rng.next_u64() % 10;
  s.counters.quality.saturated = rng.next_u64() % 10;
  s.counters.quality.artifact = rng.next_u64() % 10;
  s.tracker.loaded = rng.bernoulli(0.8);
  s.tracker.steps_since_load = rng.next_u64() % 1000;
  s.tracker.tracked = fuzz_signals(rng, 6);
  s.predictor.history.resize(static_cast<std::size_t>(rng.uniform_index(33)));
  for (auto& pa : s.predictor.history) {
    pa = rng.uniform();
  }
  s.predictor.alarmed = rng.bernoulli(0.3);
  s.predictor.alarm_time_sec = s.predictor.alarmed ? rng.uniform(0.0, 60.0)
                                                   : -1.0;
  s.predictor.consecutive = rng.next_u64() % 10;
  s.fir.history.resize(1 + static_cast<std::size_t>(rng.uniform_index(64)));
  for (auto& tap : s.fir.history) {
    tap = rng.normal();
  }
  s.fir.history_pos = rng.next_u64() % s.fir.history.size();
  if (rng.bernoulli(0.5)) {
    PendingCallCheckpoint pending;
    pending.ready_at_sec = rng.uniform(0.0, 60.0);
    pending.delta_ec = rng.uniform(0.0, 2.0);
    pending.delta_cs = rng.uniform(0.0, 2.0);
    pending.delta_ce = rng.uniform(0.0, 2.0);
    pending.sequence = static_cast<std::uint32_t>(rng.next_u64());
    pending.attempts = 1 + rng.next_u64() % 3;
    pending.duplicates = rng.next_u64() % 3;
    pending.succeeded = rng.bernoulli(0.8);
    pending.correlation_set = fuzz_signals(rng, 4);
    s.pending = std::move(pending);
  }
  s.degrade.state = static_cast<DegradeState>(rng.uniform_index(4));
  s.degrade.shed_level = rng.next_u64() % 6;
  s.degrade.bad_streak = rng.next_u64() % 5;
  s.degrade.clean_streak = rng.next_u64() % 5;
  s.degrade.miss_streak = rng.next_u64() % 5;
  s.degrade.critical_left = rng.next_u64() % 5;
  s.degrade.recovered_since_miss = rng.bernoulli(0.5);
  s.degrade.pressure_ewma = rng.uniform();
  s.degrade.summary.final_state = s.degrade.state;
  s.degrade.summary.transitions = rng.next_u64() % 20;
  s.degrade.summary.windows_nominal = rng.next_u64() % 1000;
  s.degrade.summary.windows_degraded = rng.next_u64() % 1000;
  s.degrade.summary.entered_degraded = rng.bernoulli(0.5);
  s.breaker.state = static_cast<BreakerState>(rng.uniform_index(3));
  s.breaker.open_until_sec = rng.uniform(0.0, 100.0);
  s.breaker.probe_successes = rng.next_u64() % 3;
  s.breaker.recent_failure.resize(
      static_cast<std::size_t>(rng.uniform_index(17)));
  for (auto& failure : s.breaker.recent_failure) {
    failure = rng.bernoulli(0.3) ? 1 : 0;
  }
  s.breaker.recent_next = rng.next_u64() % (s.breaker.recent_failure.size() + 1);
  s.breaker.recent_count = s.breaker.recent_failure.size();
  s.breaker.summary.final_state = s.breaker.state;
  s.breaker.summary.opens = rng.next_u64() % 10;
  s.breaker.summary.rejected = rng.next_u64() % 10;
  s.breaker.summary.failures = rng.next_u64() % 100;
  s.breaker.summary.successes = rng.next_u64() % 100;
  s.edge_slo = fuzz_slo(rng);
  s.initial_slo = fuzz_slo(rng);
  s.injector.up_rng = fuzz_rng_state(rng);
  s.injector.down_rng = fuzz_rng_state(rng);
  s.injector.up_counts.messages = rng.next_u64() % 1000;
  s.injector.up_counts.dropped = rng.next_u64() % 100;
  s.injector.up_counts.corrupted = rng.next_u64() % 100;
  s.injector.down_counts.messages = rng.next_u64() % 1000;
  s.injector.down_counts.duplicated = rng.next_u64() % 100;
  s.injector.down_counts.delayed = rng.next_u64() % 100;
  s.injector.up_draws = rng.next_u64() % 100000;
  s.injector.down_draws = rng.next_u64() % 100000;
  s.channel_rng = fuzz_rng_state(rng);
  // ---- Streaming extension (v3). ----
  s.stream_fingerprint =
      rng.bernoulli(0.5)
          ? "threaded/workers=" + std::to_string(1 + rng.next_u64() % 8)
          : "";
  s.completed_calls.resize(static_cast<std::size_t>(rng.uniform_index(4)));
  for (auto& call : s.completed_calls) {
    call.ready_at_sec = rng.uniform(0.0, 60.0);
    call.delta_ec = rng.uniform(0.0, 2.0);
    call.delta_cs = rng.uniform(0.0, 2.0);
    call.delta_ce = rng.uniform(0.0, 2.0);
    call.sequence = static_cast<std::uint32_t>(rng.next_u64());
    call.attempts = 1 + rng.next_u64() % 3;
    call.duplicates = rng.next_u64() % 3;
    call.succeeded = rng.bernoulli(0.8);
    call.correlation_set = fuzz_signals(rng, 3);
  }
  s.replay.resize(static_cast<std::size_t>(rng.uniform_index(4)));
  for (auto& entry : s.replay) {
    entry.sequence = static_cast<std::uint32_t>(rng.next_u64());
    entry.t_issue_sec = rng.uniform(0.0, 60.0);
    entry.trace_id = rng.next_u64();
    entry.parent_span = rng.next_u64();
  }
  s.workers.resize(static_cast<std::size_t>(rng.uniform_index(4)));
  for (auto& worker : s.workers) {
    worker.injector.up_rng = fuzz_rng_state(rng);
    worker.injector.down_rng = fuzz_rng_state(rng);
    worker.injector.up_counts.messages = rng.next_u64() % 1000;
    worker.injector.up_counts.dropped = rng.next_u64() % 100;
    worker.injector.down_counts.messages = rng.next_u64() % 1000;
    worker.injector.down_counts.delayed = rng.next_u64() % 100;
    worker.injector.up_draws = rng.next_u64() % 100000;
    worker.injector.down_draws = rng.next_u64() % 100000;
    worker.channel_rng = fuzz_rng_state(rng);
  }
  return s;
}

void expect_state_eq(const SessionState& a, const SessionState& b) {
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.input_fingerprint, b.input_fingerprint);
  EXPECT_EQ(a.next_window, b.next_window);
  EXPECT_EQ(a.last_pa, b.last_pa);
  EXPECT_EQ(a.last_loaded_sequence, b.last_loaded_sequence);
  EXPECT_EQ(a.counters.cloud_calls, b.counters.cloud_calls);
  EXPECT_EQ(a.counters.quality.assessed, b.counters.quality.assessed);
  EXPECT_EQ(a.tracker.loaded, b.tracker.loaded);
  EXPECT_EQ(a.tracker.steps_since_load, b.tracker.steps_since_load);
  ASSERT_EQ(a.tracker.tracked.size(), b.tracker.tracked.size());
  for (std::size_t i = 0; i < a.tracker.tracked.size(); ++i) {
    EXPECT_EQ(a.tracker.tracked[i].set_id, b.tracker.tracked[i].set_id);
    EXPECT_EQ(a.tracker.tracked[i].omega, b.tracker.tracked[i].omega);
    EXPECT_EQ(a.tracker.tracked[i].beta, b.tracker.tracked[i].beta);
    EXPECT_EQ(a.tracker.tracked[i].samples, b.tracker.tracked[i].samples);
  }
  EXPECT_EQ(a.predictor.history, b.predictor.history);
  EXPECT_EQ(a.predictor.alarmed, b.predictor.alarmed);
  EXPECT_EQ(a.predictor.alarm_time_sec, b.predictor.alarm_time_sec);
  EXPECT_EQ(a.predictor.consecutive, b.predictor.consecutive);
  EXPECT_EQ(a.fir.history, b.fir.history);
  EXPECT_EQ(a.fir.history_pos, b.fir.history_pos);
  ASSERT_EQ(a.pending.has_value(), b.pending.has_value());
  if (a.pending.has_value()) {
    EXPECT_EQ(a.pending->ready_at_sec, b.pending->ready_at_sec);
    EXPECT_EQ(a.pending->sequence, b.pending->sequence);
    EXPECT_EQ(a.pending->succeeded, b.pending->succeeded);
    EXPECT_EQ(a.pending->correlation_set.size(),
              b.pending->correlation_set.size());
  }
  EXPECT_EQ(a.degrade.state, b.degrade.state);
  EXPECT_EQ(a.degrade.pressure_ewma, b.degrade.pressure_ewma);
  EXPECT_EQ(a.degrade.summary.transitions, b.degrade.summary.transitions);
  EXPECT_EQ(a.breaker.state, b.breaker.state);
  EXPECT_EQ(a.breaker.open_until_sec, b.breaker.open_until_sec);
  EXPECT_EQ(a.breaker.recent_failure, b.breaker.recent_failure);
  EXPECT_EQ(a.edge_slo.observations, b.edge_slo.observations);
  EXPECT_EQ(a.edge_slo.recent_miss, b.edge_slo.recent_miss);
  EXPECT_EQ(a.initial_slo.recent_misses, b.initial_slo.recent_misses);
  EXPECT_EQ(a.injector.up_rng.state, b.injector.up_rng.state);
  EXPECT_EQ(a.injector.down_rng.seed, b.injector.down_rng.seed);
  EXPECT_EQ(a.injector.up_counts.messages, b.injector.up_counts.messages);
  EXPECT_EQ(a.injector.up_draws, b.injector.up_draws);
  EXPECT_EQ(a.injector.down_draws, b.injector.down_draws);
  EXPECT_EQ(a.channel_rng.state, b.channel_rng.state);
  EXPECT_EQ(a.channel_rng.spare_normal, b.channel_rng.spare_normal);
  EXPECT_EQ(a.channel_rng.has_spare_normal, b.channel_rng.has_spare_normal);
  EXPECT_EQ(a.stream_fingerprint, b.stream_fingerprint);
  ASSERT_EQ(a.completed_calls.size(), b.completed_calls.size());
  for (std::size_t i = 0; i < a.completed_calls.size(); ++i) {
    EXPECT_EQ(a.completed_calls[i].ready_at_sec,
              b.completed_calls[i].ready_at_sec);
    EXPECT_EQ(a.completed_calls[i].sequence, b.completed_calls[i].sequence);
    EXPECT_EQ(a.completed_calls[i].attempts, b.completed_calls[i].attempts);
    EXPECT_EQ(a.completed_calls[i].succeeded,
              b.completed_calls[i].succeeded);
    EXPECT_EQ(a.completed_calls[i].correlation_set.size(),
              b.completed_calls[i].correlation_set.size());
  }
  ASSERT_EQ(a.replay.size(), b.replay.size());
  for (std::size_t i = 0; i < a.replay.size(); ++i) {
    EXPECT_EQ(a.replay[i].sequence, b.replay[i].sequence);
    EXPECT_EQ(a.replay[i].t_issue_sec, b.replay[i].t_issue_sec);
    EXPECT_EQ(a.replay[i].trace_id, b.replay[i].trace_id);
    EXPECT_EQ(a.replay[i].parent_span, b.replay[i].parent_span);
  }
  ASSERT_EQ(a.workers.size(), b.workers.size());
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    EXPECT_EQ(a.workers[i].injector.up_rng.state,
              b.workers[i].injector.up_rng.state);
    EXPECT_EQ(a.workers[i].injector.down_rng.seed,
              b.workers[i].injector.down_rng.seed);
    EXPECT_EQ(a.workers[i].injector.up_counts.messages,
              b.workers[i].injector.up_counts.messages);
    EXPECT_EQ(a.workers[i].injector.up_draws,
              b.workers[i].injector.up_draws);
    EXPECT_EQ(a.workers[i].injector.down_draws,
              b.workers[i].injector.down_draws);
    EXPECT_EQ(a.workers[i].channel_rng.state, b.workers[i].channel_rng.state);
  }
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  const SessionState original = fuzz_state(7);
  const SessionState decoded = decode_session(encode_session(original));
  expect_state_eq(original, decoded);
}

// Property over many fuzzed states: encode is deterministic, so byte
// equality of re-encoded decodes proves decode lost nothing encode wrote.
TEST(CheckpointProperty, EncodeDecodeEncodeIsIdentity) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const SessionState state = fuzz_state(seed);
    const std::vector<std::uint8_t> bytes = encode_session(state);
    const std::vector<std::uint8_t> again =
        encode_session(decode_session(bytes));
    EXPECT_EQ(bytes, again) << "seed " << seed;
  }
}

// Corruption fuzz: a snapshot differing from a valid one in any single bit
// must be rejected with the typed error — magic, version, and size flips
// trip the framing checks, payload and trailer flips trip the CRC.
TEST(CheckpointFuzz, EveryBitFlipFailsClosed) {
  const std::vector<std::uint8_t> bytes = encode_session(fuzz_state(11));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_THROW(decode_session(corrupt), CheckpointError)
        << "flip at byte " << i;
  }
}

TEST(CheckpointFuzz, EveryTruncationFailsClosed) {
  const std::vector<std::uint8_t> bytes = encode_session(fuzz_state(13));
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + length);
    EXPECT_THROW(decode_session(truncated), CheckpointError)
        << "truncated to " << length;
  }
}

TEST(CheckpointFuzz, TrailingGarbageFailsClosed) {
  std::vector<std::uint8_t> bytes = encode_session(fuzz_state(17));
  bytes.push_back(0x00);
  EXPECT_THROW(decode_session(bytes), CheckpointError);
}

TEST(Checkpoint, VersionSkewIsRejectedWithAClearMessage) {
  std::vector<std::uint8_t> bytes = encode_session(fuzz_state(19));
  const std::uint32_t skewed = kCheckpointVersion + 1;
  std::memcpy(bytes.data() + 4, &skewed, sizeof(skewed));
  try {
    decode_session(bytes);
    FAIL() << "version skew accepted";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(Checkpoint, RejectionIsTypedAsCorruptData) {
  // Generic integrity handling (catch CorruptData) must still apply.
  EXPECT_THROW(decode_session({}), CorruptData);
}

TEST(Checkpoint, WriteReadRoundTripOnDisk) {
  testing::TempDir dir("ckpt_roundtrip");
  const SessionState state = fuzz_state(23);
  write_checkpoint(dir.path(), state);
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(dir.path())));
  const auto loaded = read_checkpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  expect_state_eq(state, *loaded);
}

TEST(Checkpoint, LatestWriteWins) {
  testing::TempDir dir("ckpt_overwrite");
  write_checkpoint(dir.path(), fuzz_state(29));
  const SessionState second = fuzz_state(31);
  write_checkpoint(dir.path(), second);
  const auto loaded = read_checkpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  expect_state_eq(second, *loaded);
}

TEST(Checkpoint, MissingSnapshotReadsAsNullopt) {
  testing::TempDir dir("ckpt_missing");
  EXPECT_FALSE(read_checkpoint(dir.path()).has_value());
  EXPECT_FALSE(
      read_checkpoint(dir.path() / "never_created").has_value());
}

// Atomicity: a crash before the rename — whether before the temp file is
// opened or after it is fully written — leaves the previous snapshot
// intact and loadable.
TEST(Checkpoint, CrashBeforeRenameKeepsThePreviousSnapshot) {
  for (const char* point : {"checkpoint_pre_write", "checkpoint_pre_rename"}) {
    testing::TempDir dir(std::string("ckpt_atomic_") +
                         (point[11] == 'p' ? "prewrite" : "prerename"));
    const SessionState first = fuzz_state(37);
    write_checkpoint(dir.path(), first);
    CrashPointRegistry registry;
    {
      ScopedCrashSchedule guard(registry, {point, 1});
      EXPECT_THROW(write_checkpoint(dir.path(), fuzz_state(41), &registry),
                   InjectedCrash)
          << point;
    }
    const auto loaded = read_checkpoint(dir.path());
    ASSERT_TRUE(loaded.has_value()) << point;
    expect_state_eq(first, *loaded);
  }
}

TEST(Checkpoint, CrashAfterRenameKeepsTheNewSnapshot) {
  testing::TempDir dir("ckpt_postwrite");
  write_checkpoint(dir.path(), fuzz_state(43));
  const SessionState second = fuzz_state(47);
  CrashPointRegistry registry;
  {
    ScopedCrashSchedule guard(registry, {"checkpoint_post_write", 1});
    EXPECT_THROW(write_checkpoint(dir.path(), second, &registry),
                 InjectedCrash);
  }
  const auto loaded = read_checkpoint(dir.path());
  ASSERT_TRUE(loaded.has_value());
  expect_state_eq(second, *loaded);
}

TEST(Checkpoint, RecoveryOptionsValidateRejectsZeroInterval) {
  RecoveryOptions options;
  options.checkpoint_dir = "somewhere";
  options.interval_windows = 0;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options.interval_windows = 1;
  EXPECT_NO_THROW(options.validate());
  EXPECT_TRUE(options.enabled());
  options.checkpoint_dir.clear();
  EXPECT_FALSE(options.enabled());
}

}  // namespace
}  // namespace emap::robust
