// AdmissionController unit tests: bounded queue, deadline-aware shedding,
// EWMA service estimation, and the RetryAfter hint contract.
#include "emap/robust/admission.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "emap/common/error.hpp"
#include "emap/net/retry.hpp"
#include "emap/obs/export.hpp"

namespace emap::robust {
namespace {

TEST(Admission, AdmitsUnderCapacity) {
  AdmissionController controller;
  const AdmissionDecision decision = controller.try_admit();
  EXPECT_TRUE(decision.accepted);
  EXPECT_EQ(decision.reason, ShedReason::kNone);
  EXPECT_EQ(controller.queued(), 1u);
  const AdmissionSummary summary = controller.summary();
  EXPECT_EQ(summary.submitted, 1u);
  EXPECT_EQ(summary.admitted, 1u);
  EXPECT_EQ(summary.shed(), 0u);
}

TEST(Admission, BoundedQueueShedsBeyondDepth) {
  AdmissionOptions options;
  options.max_queue_depth = 2;
  AdmissionController controller(options);
  EXPECT_TRUE(controller.try_admit().accepted);
  EXPECT_TRUE(controller.try_admit().accepted);
  const AdmissionDecision shed = controller.try_admit();
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reason, ShedReason::kQueueFull);
  EXPECT_GT(shed.retry_after_sec, 0.0);
  EXPECT_EQ(controller.summary().shed_queue_full, 1u);
}

TEST(Admission, DeadlineShorterThanExpectedScanIsShedImmediately) {
  AdmissionOptions options;
  options.initial_service_sec = 0.25;
  AdmissionController controller(options);
  // Remaining budget below even one scan: shed without queueing.
  const AdmissionDecision shed = controller.try_admit(0.1);
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reason, ShedReason::kDeadline);
  EXPECT_EQ(controller.queued(), 0u);
  // A request with room is admitted.
  EXPECT_TRUE(controller.try_admit(1.0).accepted);
}

TEST(Admission, DeadlineShedAccountsForQueueAhead) {
  AdmissionOptions options;
  options.initial_service_sec = 0.25;
  options.max_queue_depth = 16;
  AdmissionController controller(options, /*workers=*/1);
  // Fill four slots: expected wait = 4 * 0.25 = 1.0 s.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(controller.try_admit().accepted);
  }
  // 1.1 s of budget cannot cover 1.0 s wait + 0.25 s scan.
  const AdmissionDecision shed = controller.try_admit(1.1);
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reason, ShedReason::kDeadline);
  // The hint reflects the backlog, not just one scan.
  EXPECT_GE(shed.retry_after_sec, 1.0);
}

TEST(Admission, EwmaTracksObservedServiceTimes) {
  AdmissionOptions options;
  options.initial_service_sec = 0.25;
  options.ewma_alpha = 0.5;
  AdmissionController controller(options);
  ASSERT_TRUE(controller.try_admit().accepted);
  controller.on_start();
  controller.on_complete(1.25);
  EXPECT_DOUBLE_EQ(controller.expected_service_sec(), 0.75);
  ASSERT_TRUE(controller.try_admit().accepted);
  controller.on_start();
  controller.on_complete(0.75);
  EXPECT_DOUBLE_EQ(controller.expected_service_sec(), 0.75);
}

TEST(Admission, ConcurrencyCapSheds) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.max_queue_depth = 2;
  AdmissionController controller(options);
  ASSERT_TRUE(controller.try_admit().accepted);
  controller.on_start();  // one request in service, none queued
  ASSERT_TRUE(controller.try_admit().accepted);  // one waiting slot
  const AdmissionDecision shed = controller.try_admit();
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.reason, ShedReason::kConcurrency);
}

TEST(Admission, RetryPolicyHonorsRetryAfterHint) {
  net::RetryOptions retry_options;
  retry_options.base_backoff_sec = 0.1;
  retry_options.jitter_fraction = 0.0;
  const net::RetryPolicy policy(retry_options);
  // A shed response's hint dominates the policy's own schedule...
  EXPECT_DOUBLE_EQ(
      policy.backoff_for(1, net::RejectReason::kShed, /*hint=*/2.5), 2.5);
  // ...but never shortens it.
  const double own = policy.backoff_for(1, net::RejectReason::kShed, 0.0);
  EXPECT_DOUBLE_EQ(own, policy.backoff_for(1, net::RejectReason::kTimeout));
  EXPECT_GE(policy.backoff_for(1, net::RejectReason::kShed, own / 2.0), own);
}

TEST(Admission, InvalidOptionsThrow) {
  AdmissionOptions options;
  options.max_queue_depth = 0;
  EXPECT_THROW(AdmissionController{options}, InvalidArgument);
  options = AdmissionOptions{};
  options.ewma_alpha = 0.0;
  EXPECT_THROW(AdmissionController{options}, InvalidArgument);
  options = AdmissionOptions{};
  options.initial_service_sec = 0.0;
  EXPECT_THROW(AdmissionController{options}, InvalidArgument);
}

TEST(Admission, MetricsExportQueueDepthAndDecisions) {
  obs::MetricsRegistry registry;
  AdmissionOptions options;
  options.max_queue_depth = 1;
  AdmissionController controller(options, 1, &registry);
  ASSERT_TRUE(controller.try_admit().accepted);
  ASSERT_FALSE(controller.try_admit().accepted);
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("emap_robust_admission_queue_depth 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_robust_admission_decisions_total{"
                      "decision=\"admitted\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("emap_robust_admission_decisions_total{"
                      "decision=\"queue_full\"} 1"),
            std::string::npos);
}

// Concurrent submitters: counters stay consistent under contention (run
// under TSan in the sanitize CI job).
TEST(Admission, ConcurrentSubmittersKeepCountsConsistent) {
  AdmissionOptions options;
  options.max_queue_depth = 64;
  AdmissionController controller(options, 4);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&controller] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const AdmissionDecision decision = controller.try_admit();
        if (decision.accepted) {
          controller.on_start();
          controller.on_complete(0.01);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const AdmissionSummary summary = controller.summary();
  EXPECT_EQ(summary.submitted, kThreads * kPerThread);
  EXPECT_EQ(summary.admitted + summary.shed(), summary.submitted);
  EXPECT_EQ(controller.in_service(), 0u);
}

}  // namespace
}  // namespace emap::robust
