// Shared helpers for the EMAP test suite.
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numbers>
#include <string>
#include <vector>

#include "emap/common/rng.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

namespace emap::testing {

/// RAII temporary directory under the system temp path.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("emap_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// Sine wave helper: amp * sin(2 pi f t + phase) sampled at fs.
inline std::vector<double> sine(double freq_hz, double fs, std::size_t count,
                                double amp = 1.0, double phase = 0.0) {
  std::vector<double> samples(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    samples[i] = amp * std::sin(2.0 * std::numbers::pi * freq_hz *
                                    static_cast<double>(i) / fs +
                                phase);
  }
  return samples;
}

/// Gaussian noise vector.
inline std::vector<double> noise(std::uint64_t seed, std::size_t count,
                                 double stddev = 1.0) {
  Rng rng(seed);
  std::vector<double> samples(count, 0.0);
  for (double& s : samples) {
    s = rng.normal(0.0, stddev);
  }
  return samples;
}

/// Small MDB for search/tracker tests: `recordings_per_corpus` recordings
/// from each of the five standard corpora.
inline mdb::MdbStore small_mdb(std::size_t recordings_per_corpus = 4) {
  mdb::MdbBuilder builder;
  for (const auto& corpus : synth::standard_corpora(recordings_per_corpus)) {
    const auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  return builder.take_store();
}

}  // namespace emap::testing
