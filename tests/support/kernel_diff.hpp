// Differential kernel-equivalence harness.
//
// Every DSP kernel now exists once per SIMD arm (dsp/kernels.hpp), and
// every future kernel PR (FFT overlap-save, quantized MDB codec) will add
// more (kernel, implementation) pairs.  This harness is the one piece of
// correctness tooling they all plug into: it drives a reference and a
// candidate implementation over the same seeded-random, adversarial
// (NaN/Inf/denormal/saturated), edge-shape, and corpus-derived inputs,
// and compares results ULP-aware.
//
// Usage sketch (see tests/dsp/test_kernel_diff.cpp for real ones):
//
//   auto cases = kdiff::random_cases(/*seed=*/1, /*count=*/10000, 1, 512);
//   kdiff::append_cases(cases, kdiff::edge_shape_cases());
//   const auto report = kdiff::run_diff(
//       cases,
//       [](const kdiff::Case& c) { return ref_kernel(c); },
//       [](const kdiff::Case& c) { return new_kernel(c); },
//       kdiff::ReductionAcceptor{/*max_ulp=*/kPinnedUlpBound});
//   EXPECT_TRUE(report.ok()) << report.summary();
//
// Comparison model: a reordered floating-point reduction (lane-split
// partial sums, FMA) differs from the sequential reference by at most
// ~n * eps * sum(|terms|).  The acceptors therefore pass when EITHER the
// ULP distance is within the pinned bound (tight for well-conditioned
// results) OR the absolute difference is within that analytic reduction
// bound (covers cancellation-heavy cases where the result is tiny
// relative to its terms and ULP distance is meaningless).  NaN matches
// NaN; equal infinities match; mismatched finiteness never passes.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "emap/common/rng.hpp"
#include "emap/dsp/simd.hpp"
#include "support/test_util.hpp"

namespace emap::testing::kdiff {

/// RAII dispatch override for public-API differential tests: forces the
/// given arm for the scope's lifetime, restores automatic dispatch after.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(dsp::simd::Level level) {
    dsp::simd::force_level(level);
  }
  ~ScopedSimdLevel() { dsp::simd::force_level(std::nullopt); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
};

/// ULP distance between two doubles over the monotonic ordered-integer
/// mapping.  NaN-vs-NaN is 0; equal values (incl. +0/-0 and equal
/// infinities) are 0; any other NaN/Inf pairing is max().
inline std::uint64_t ulp_distance(double a, double b) {
  const bool nan_a = std::isnan(a);
  const bool nan_b = std::isnan(b);
  if (nan_a || nan_b) {
    return (nan_a && nan_b) ? 0 : std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) {
    return 0;
  }
  if (std::isinf(a) || std::isinf(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const auto key = [](double x) -> std::uint64_t {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof bits);
    const std::uint64_t sign = 0x8000000000000000ULL;
    return (bits & sign) != 0 ? sign - (bits & ~sign) : sign + bits;
  };
  const std::uint64_t ka = key(a);
  const std::uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

/// Analytic bound on the absolute divergence of two differently-ordered
/// reductions of the same ~n terms whose absolute values sum to
/// `term_magnitude_sum`.  The constant is generous (arm-internal
/// unrolling and FMA contraction both stay well under it).
inline double reduction_tolerance(double term_magnitude_sum, std::size_t n) {
  return static_cast<double>(n + 8) *
         std::numeric_limits<double>::epsilon() * term_magnitude_sum;
}

/// One differential input: two equal-length windows plus a provenance tag
/// that makes a failure reproducible from the log alone.
struct Case {
  std::string tag;
  std::vector<double> a;
  std::vector<double> b;

  std::size_t size() const { return a.size(); }
  /// sum(|a[i] * b[i]|): magnitude scale for dot-like reductions.
  double product_magnitude() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::abs(a[i] * b[i]);
    }
    return std::isfinite(sum) ? sum : std::numeric_limits<double>::max();
  }
  /// sum(|a[i] - b[i]|): magnitude scale for area-like reductions.
  double difference_magnitude() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::abs(a[i] - b[i]);
    }
    return std::isfinite(sum) ? sum : std::numeric_limits<double>::max();
  }
};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// `count` seeded random cases with lengths uniform in [min_len, max_len]
/// (deliberately including non-multiples of the SIMD width) and per-case
/// magnitude scales swept across ~12 decades, so both tiny and saturated
/// regimes appear.
inline std::vector<Case> random_cases(std::uint64_t seed, std::size_t count,
                                      std::size_t min_len,
                                      std::size_t max_len) {
  Rng rng(seed);
  std::vector<Case> cases;
  cases.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t len =
        min_len + static_cast<std::size_t>(
                      rng.uniform_index(max_len - min_len + 1));
    const double scale = std::pow(10.0, rng.uniform(-6.0, 6.0));
    Case c;
    std::ostringstream tag;
    tag << "random[seed=" << seed << ",case=" << k << ",len=" << len
        << ",scale=" << scale << "]";
    c.tag = tag.str();
    c.a.resize(len);
    c.b.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      c.a[i] = rng.normal(0.0, scale);
      c.b[i] = rng.normal(0.0, scale);
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

/// Deterministic edge shapes: the degenerate and alignment-hostile
/// lengths (0, 1, every residue around the 4/8-lane widths) crossed with
/// all-zeros, constant, alternating-sign, ramp, and denormal fills.
inline std::vector<Case> edge_shape_cases() {
  const std::size_t lengths[] = {0,  1,  2,  3,  5,  7,   8,
                                 9,  12, 15, 16, 17, 31,  33,
                                 63, 65, 127, 255, 256, 257};
  struct Fill {
    const char* name;
    double (*value)(std::size_t i);
  };
  const Fill fills[] = {
      {"zeros", [](std::size_t) { return 0.0; }},
      {"constant", [](std::size_t) { return 3.0; }},
      {"alternating",
       [](std::size_t i) { return (i % 2 == 0) ? 1.0 : -1.0; }},
      {"ramp", [](std::size_t i) { return static_cast<double>(i) - 8.0; }},
      {"denormal",
       [](std::size_t i) {
         return (i % 2 == 0) ? 5e-324 : -4.9e-310;  // min subnormal + mix
       }},
  };
  std::vector<Case> cases;
  for (const std::size_t len : lengths) {
    for (const Fill& fill_a : fills) {
      for (const Fill& fill_b : fills) {
        Case c;
        c.tag = std::string("edge[len=") + std::to_string(len) + ",a=" +
                fill_a.name + ",b=" + fill_b.name + "]";
        c.a.resize(len);
        c.b.resize(len);
        for (std::size_t i = 0; i < len; ++i) {
          c.a[i] = fill_a.value(i);
          c.b[i] = fill_b.value(i);
        }
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

/// Adversarial IEEE cases: NaN / +-Inf planted at block-boundary-hostile
/// positions, denormal-dominated windows, saturated magnitudes (1e150 —
/// large enough to stress, small enough that no 4096-term sum or 256-term
/// product-sum overflows, keeping both arms finite), and huge-offset
/// windows that stress the mean-removal cancellation.
inline std::vector<Case> adversarial_cases(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Case> cases;
  const std::size_t lengths[] = {13, 64, 256, 257};
  const double specials[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
  const char* special_names[] = {"nan", "+inf", "-inf"};
  for (const std::size_t len : lengths) {
    for (std::size_t s = 0; s < std::size(specials); ++s) {
      // Positions chosen to land in the vector body, at a lane boundary,
      // and in the scalar tail.
      const std::size_t positions[] = {0, len / 2, len - 1};
      for (const std::size_t pos : positions) {
        Case c;
        c.tag = std::string("adversarial[len=") + std::to_string(len) +
                ",special=" + special_names[s] + ",pos=" +
                std::to_string(pos) + "]";
        c.a.resize(len);
        c.b.resize(len);
        for (std::size_t i = 0; i < len; ++i) {
          c.a[i] = rng.normal(0.0, 1.0);
          c.b[i] = rng.normal(0.0, 1.0);
        }
        c.a[pos] = specials[s];
        cases.push_back(std::move(c));
      }
    }
    // Both infinities in one window: every summation order lands on NaN.
    {
      Case c;
      c.tag = std::string("adversarial[len=") + std::to_string(len) +
              ",special=+inf-inf]";
      c.a.assign(len, 1.0);
      c.b.assign(len, -1.0);
      c.a[0] = std::numeric_limits<double>::infinity();
      if (len > 1) {
        c.a[len - 1] = -std::numeric_limits<double>::infinity();
      }
      cases.push_back(std::move(c));
    }
    // Saturated, denormal, and huge-offset regimes.
    const struct {
      const char* name;
      double scale;
      double offset;
    } regimes[] = {
        {"saturated", 1e150, 0.0},
        {"denormal", 1e-310, 0.0},
        {"huge_offset", 1.0, 1e9},
    };
    for (const auto& regime : regimes) {
      Case c;
      c.tag = std::string("adversarial[len=") + std::to_string(len) +
              ",regime=" + regime.name + "]";
      c.a.resize(len);
      c.b.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        c.a[i] = regime.offset + rng.normal(0.0, regime.scale);
        c.b[i] = regime.offset + rng.normal(0.0, regime.scale);
      }
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

/// Window pairs drawn from the synthetic EEG corpora — the inputs the
/// production scan actually sees (bandpassed, near zero-mean, EEG-scaled).
inline std::vector<Case> corpus_cases(std::size_t count,
                                      std::size_t window_len) {
  const mdb::MdbStore store = small_mdb(2);
  Rng rng(0xC0123);
  std::vector<Case> cases;
  cases.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto& set_a = store.at(rng.uniform_index(store.size()));
    const auto& set_b = store.at(rng.uniform_index(store.size()));
    if (set_a.samples.size() < window_len ||
        set_b.samples.size() < window_len) {
      continue;
    }
    const std::size_t off_a =
        rng.uniform_index(set_a.samples.size() - window_len + 1);
    const std::size_t off_b =
        rng.uniform_index(set_b.samples.size() - window_len + 1);
    Case c;
    c.tag = std::string("corpus[case=") + std::to_string(k) + ",set_a=" +
            std::to_string(set_a.id) + "@" + std::to_string(off_a) +
            ",set_b=" + std::to_string(set_b.id) + "@" +
            std::to_string(off_b) + "]";
    c.a.assign(set_a.samples.begin() + static_cast<std::ptrdiff_t>(off_a),
               set_a.samples.begin() +
                   static_cast<std::ptrdiff_t>(off_a + window_len));
    c.b.assign(set_b.samples.begin() + static_cast<std::ptrdiff_t>(off_b),
               set_b.samples.begin() +
                   static_cast<std::ptrdiff_t>(off_b + window_len));
    cases.push_back(std::move(c));
  }
  return cases;
}

inline void append_cases(std::vector<Case>& into, std::vector<Case> more) {
  for (Case& c : more) {
    into.push_back(std::move(c));
  }
}

// ---------------------------------------------------------------------------
// Acceptors
// ---------------------------------------------------------------------------

/// Accepts when the ULP distance is within `max_ulp` or the absolute
/// difference is within the analytic reduction bound for the case's term
/// magnitudes (`magnitude(case)`), plus an optional flat `abs_tol`.
template <class MagnitudeFn>
struct ReductionAcceptor {
  std::uint64_t max_ulp;
  MagnitudeFn magnitude;
  double abs_tol = 0.0;

  bool operator()(const Case& c, double ref, double got) const {
    const std::uint64_t ulp = ulp_distance(ref, got);
    if (ulp <= max_ulp) {
      return true;
    }
    if (!std::isfinite(ref) || !std::isfinite(got)) {
      return false;  // mismatched NaN/Inf never passes
    }
    const double bound =
        reduction_tolerance(magnitude(c), c.size()) + abs_tol;
    return std::abs(ref - got) <= bound;
  }
};

template <class MagnitudeFn>
ReductionAcceptor<MagnitudeFn> make_reduction_acceptor(
    std::uint64_t max_ulp, MagnitudeFn magnitude, double abs_tol = 0.0) {
  return ReductionAcceptor<MagnitudeFn>{max_ulp, magnitude, abs_tol};
}

/// Exact bit-identity (scalar-vs-scalar regression checks).
struct ExactAcceptor {
  bool operator()(const Case&, double ref, double got) const {
    return ulp_distance(ref, got) == 0;
  }
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct DiffFailure {
  std::string tag;
  double ref = 0.0;
  double got = 0.0;
  std::uint64_t ulp = 0;
};

struct DiffReport {
  std::size_t cases = 0;
  std::uint64_t max_ulp_seen = 0;  ///< over finite, passing comparisons
  std::vector<DiffFailure> failures;  ///< capped at kMaxReported

  static constexpr std::size_t kMaxReported = 8;

  bool ok() const { return failures.empty(); }

  std::string summary() const {
    std::ostringstream out;
    out << cases << " cases, max ULP divergence " << max_ulp_seen;
    if (!failures.empty()) {
      out << ", " << failures.size() << "+ failures; first:";
      for (const DiffFailure& f : failures) {
        out << "\n  " << f.tag << ": ref=" << std::hexfloat << f.ref
            << " got=" << f.got << std::defaultfloat << " (" << f.ref
            << " vs " << f.got << ", ulp=" << f.ulp << ")";
      }
    }
    return out.str();
  }
};

/// Drives `ref_fn` and `got_fn` (Case -> double) over every case and
/// judges each pair with `accept` (Case, ref, got) -> bool.
template <class RefFn, class GotFn, class AcceptFn>
DiffReport run_diff(const std::vector<Case>& cases, RefFn ref_fn,
                    GotFn got_fn, AcceptFn accept) {
  DiffReport report;
  for (const Case& c : cases) {
    ++report.cases;
    const double ref = ref_fn(c);
    const double got = got_fn(c);
    const bool pass = accept(c, ref, got);
    const std::uint64_t ulp = ulp_distance(ref, got);
    if (pass) {
      if (ulp != std::numeric_limits<std::uint64_t>::max()) {
        report.max_ulp_seen = std::max(report.max_ulp_seen, ulp);
      }
      continue;
    }
    if (report.failures.size() < DiffReport::kMaxReported) {
      report.failures.push_back(DiffFailure{c.tag, ref, got, ulp});
    }
  }
  return report;
}

/// Sequence variant: `ref_fn`/`got_fn` return std::vector<double>; every
/// element is judged with `accept`, and a length mismatch is one failure.
template <class RefFn, class GotFn, class AcceptFn>
DiffReport run_diff_sequences(const std::vector<Case>& cases, RefFn ref_fn,
                              GotFn got_fn, AcceptFn accept) {
  DiffReport report;
  for (const Case& c : cases) {
    ++report.cases;
    const std::vector<double> ref = ref_fn(c);
    const std::vector<double> got = got_fn(c);
    if (ref.size() != got.size()) {
      if (report.failures.size() < DiffReport::kMaxReported) {
        report.failures.push_back(DiffFailure{
            c.tag + " (length " + std::to_string(ref.size()) + " vs " +
                std::to_string(got.size()) + ")",
            static_cast<double>(ref.size()), static_cast<double>(got.size()),
            0});
      }
      continue;
    }
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const std::uint64_t ulp = ulp_distance(ref[i], got[i]);
      if (accept(c, ref[i], got[i])) {
        if (ulp != std::numeric_limits<std::uint64_t>::max()) {
          report.max_ulp_seen = std::max(report.max_ulp_seen, ulp);
        }
        continue;
      }
      if (report.failures.size() < DiffReport::kMaxReported) {
        report.failures.push_back(DiffFailure{
            c.tag + "[" + std::to_string(i) + "]", ref[i], got[i], ulp});
      }
    }
  }
  return report;
}

}  // namespace emap::testing::kdiff
