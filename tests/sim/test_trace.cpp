#include "emap/sim/trace.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::sim {
namespace {

TEST(Trace, RecordsAndTotals) {
  TimelineTrace trace;
  trace.record(ActivityKind::kCloudSearch, 1.0, 3.5);
  trace.record(ActivityKind::kCloudSearch, 5.0, 6.0);
  trace.record(ActivityKind::kEdgeTrack, 4.0, 4.9);
  EXPECT_DOUBLE_EQ(trace.total_seconds(ActivityKind::kCloudSearch), 3.5);
  EXPECT_DOUBLE_EQ(trace.total_seconds(ActivityKind::kEdgeTrack), 0.9);
  EXPECT_DOUBLE_EQ(trace.total_seconds(ActivityKind::kUpload), 0.0);
}

TEST(Trace, FirstFindsEarliestInserted) {
  TimelineTrace trace;
  trace.record(ActivityKind::kUpload, 1.0, 1.1, "first");
  trace.record(ActivityKind::kUpload, 2.0, 2.1, "second");
  const Activity* first = trace.first(ActivityKind::kUpload);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->label, "first");
  EXPECT_EQ(trace.first(ActivityKind::kDownload), nullptr);
}

TEST(Trace, RejectsInvertedInterval) {
  TimelineTrace trace;
  EXPECT_THROW(trace.record(ActivityKind::kSample, 2.0, 1.0), InvalidArgument);
}

TEST(Trace, AsciiRenderContainsAllRows) {
  TimelineTrace trace;
  trace.record(ActivityKind::kSample, 0.0, 1.0);
  trace.record(ActivityKind::kCloudSearch, 1.0, 4.0);
  const std::string art = trace.render_ascii(10.0, 50);
  EXPECT_NE(art.find("sample"), std::string::npos);
  EXPECT_NE(art.find("cloud-search"), std::string::npos);
  EXPECT_NE(art.find("prediction"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Trace, AsciiRenderClipsToHorizon) {
  TimelineTrace trace;
  trace.record(ActivityKind::kSample, 100.0, 200.0);  // beyond horizon
  const std::string art = trace.render_ascii(10.0, 40);
  // The sample row must contain no marks.
  const auto row_start = art.find("sample");
  const auto row_end = art.find('\n', row_start);
  EXPECT_EQ(art.substr(row_start, row_end - row_start).find('#'),
            std::string::npos);
}

TEST(Trace, AsciiRenderClampsActivityStraddlingHorizon) {
  TimelineTrace trace;
  trace.record(ActivityKind::kEdgeTrack, 8.0, 15.0);  // straddles horizon
  const std::string art = trace.render_ascii(10.0, 40);
  const auto row_start = art.find("edge-track");
  const auto row_end = art.find('\n', row_start);
  const std::string row = art.substr(row_start, row_end - row_start);
  const auto open = row.find('|');
  // Marks start at 8 s (column 32 of 40) and run through the final column
  // without indexing past the row.
  EXPECT_EQ(row.find('#'), open + 1 + 32);
  EXPECT_EQ(row.rfind('#'), row.rfind('|') - 1);
}

TEST(Trace, AsciiRenderClampsActivityStraddlingTimeZero) {
  TimelineTrace trace;
  trace.record(ActivityKind::kFilter, -5.0, -1.0);  // entirely before zero
  trace.record(ActivityKind::kFilter, -1.0, 2.0);   // straddles zero
  const std::string art = trace.render_ascii(10.0, 40);
  const auto row_start = art.find("filter");
  const auto row_end = art.find('\n', row_start);
  const std::string row = art.substr(row_start, row_end - row_start);
  const auto open = row.find('|');
  // Only the visible [0, 2] part is drawn, starting at the first column.
  EXPECT_EQ(row.find('#'), open + 1);
  EXPECT_EQ(row.rfind('#'), open + 1 + 8);
}

TEST(Trace, AsciiRenderRejectsBadArguments) {
  TimelineTrace trace;
  EXPECT_THROW(trace.render_ascii(0.0), InvalidArgument);
  EXPECT_THROW(trace.render_ascii(10.0, 2), InvalidArgument);
}

TEST(Trace, ActivityNamesAreStable) {
  EXPECT_STREQ(activity_name(ActivityKind::kCloudSearch), "cloud-search");
  EXPECT_STREQ(activity_name(ActivityKind::kPrediction), "prediction");
}

}  // namespace
}  // namespace emap::sim
