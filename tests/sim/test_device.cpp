#include "emap/sim/device.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"

namespace emap::sim {
namespace {

TEST(Device, SecondsScaleLinearly) {
  const auto edge = edge_raspberry_pi();
  EXPECT_NEAR(edge.seconds_for_abs(2.0e5), 2.0 * edge.seconds_for_abs(1.0e5),
              1e-12);
  EXPECT_DOUBLE_EQ(edge.seconds_for_macs(0.0), 0.0);
}

TEST(Device, RejectsNegativeCounts) {
  const auto edge = edge_raspberry_pi();
  EXPECT_THROW(edge.seconds_for_macs(-1.0), InvalidArgument);
  EXPECT_THROW(edge.seconds_for_abs(-1.0), InvalidArgument);
}

TEST(Device, CloudIsOrdersOfMagnitudeFasterThanEdge) {
  const auto edge = edge_raspberry_pi();
  const auto cloud = cloud_i7();
  EXPECT_GT(cloud.mac_ops_per_sec, 100.0 * edge.mac_ops_per_sec);
}

TEST(Device, EdgeAreaOpsFasterThanMacs) {
  // Per-op, an ABS accumulate is ~2x cheaper than a MAC + normalization on
  // the Python edge runtime; combined with the early-exit advantage this
  // yields the paper's ~4.3x end-to-end tracking speedup (asserted by
  // bench_fig8b, which counts the actual ops).
  const auto edge = edge_raspberry_pi();
  const double ratio = edge.abs_ops_per_sec / edge.mac_ops_per_sec;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(Device, ExhaustiveSearchCalibrationMatchesFig7b) {
  // 8000 signal-sets x 744 offsets x 256 MACs on the cloud ~ 12 s
  // (plus per-set overhead).
  const auto cloud = cloud_i7();
  const double macs = 8000.0 * 744.0 * 256.0;
  const double seconds = cloud.seconds_for_macs(macs) +
                         8000.0 * cloud.per_signal_overhead_sec;
  EXPECT_GT(seconds, 9.0);
  EXPECT_LT(seconds, 18.0);
}

TEST(Device, NamesIdentifyTestbed) {
  EXPECT_NE(edge_raspberry_pi().name.find("raspberry"), std::string::npos);
  EXPECT_NE(cloud_i7().name.find("i7"), std::string::npos);
}

}  // namespace
}  // namespace emap::sim
