#include "emap/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "emap/common/error.hpp"

namespace emap::sim {
namespace {

TEST(EventQueue, StartsAtZero) {
  EventQueue queue;
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueue, EventsFireInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsFifoOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue queue;
  double fired_at = -1.0;
  queue.schedule_at(2.0, [&] {
    queue.schedule_in(1.5, [&] { fired_at = queue.now(); });
  });
  queue.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(queue.schedule_in(-0.1, [] {}), InvalidArgument);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue queue;
  std::vector<double> fired;
  queue.schedule_at(1.0, [&] { fired.push_back(1.0); });
  queue.schedule_at(5.0, [&] { fired.push_back(5.0); });
  queue.run_until(3.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      queue.schedule_in(1.0, recurse);
    }
  };
  queue.schedule_at(0.0, recurse);
  queue.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(queue.now(), 9.0);
}

}  // namespace
}  // namespace emap::sim
