// Parameterized EDF properties across the corpus-native sampling rates and
// randomized content.
#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "emap/edf/edf.hpp"
#include "support/test_util.hpp"

namespace emap::edf {
namespace {

struct EdfCase {
  double fs;
  double record_duration;
  std::size_t seconds;
};

class EdfRateProperty : public ::testing::TestWithParam<EdfCase> {};

TEST_P(EdfRateProperty, RoundTripAtCorpusRates) {
  const auto& param = GetParam();
  EdfFile file;
  file.sample_rate_hz = param.fs;
  file.record_duration_sec = param.record_duration;
  EdfChannel channel;
  channel.physical_min = -350.0;
  channel.physical_max = 350.0;
  const auto count =
      static_cast<std::size_t>(param.fs * static_cast<double>(param.seconds));
  channel.samples = testing::noise(param.seconds, count, 40.0);
  file.channels.push_back(std::move(channel));

  const auto decoded = decode_edf(encode_edf(file));
  EXPECT_DOUBLE_EQ(decoded.sample_rate_hz, param.fs);
  ASSERT_GE(decoded.channels[0].samples.size(), count);
  const double quantum = 700.0 / 65535.0;
  for (std::size_t i = 0; i < count; i += 17) {
    EXPECT_NEAR(decoded.channels[0].samples[i], file.channels[0].samples[i],
                quantum * 1.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CorpusRates, EdfRateProperty,
    ::testing::Values(EdfCase{100.0, 1.0, 4}, EdfCase{173.61, 100.0, 100},
                      EdfCase{250.0, 1.0, 3}, EdfCase{256.0, 1.0, 3},
                      EdfCase{512.0, 0.5, 3}));

class EdfMutationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfMutationProperty, HeaderMutationsNeverCrash) {
  EdfFile file;
  EdfChannel channel;
  channel.samples = testing::noise(GetParam(), 512, 30.0);
  file.channels.push_back(std::move(channel));
  auto bytes = encode_edf(file);

  Rng rng(GetParam());
  // Mutate a handful of header bytes; decoding must either succeed or
  // throw CorruptData — never crash or hang.
  for (int trial = 0; trial < 50; ++trial) {
    auto mutated = bytes;
    const std::size_t header_span = 512;
    for (int flips = 0; flips < 3; ++flips) {
      const auto at = rng.uniform_index(header_span);
      mutated[at] = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    try {
      const auto decoded = decode_edf(mutated);
      EXPECT_FALSE(decoded.channels.empty());
    } catch (const CorruptData&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfMutationProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace emap::edf
