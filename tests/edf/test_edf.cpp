#include "emap/edf/edf.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::edf {
namespace {

EdfFile make_file(std::size_t samples = 512, double fs = 256.0) {
  EdfFile file;
  file.sample_rate_hz = fs;
  EdfChannel channel;
  channel.label = "EEG Fp1";
  channel.physical_min = -200.0;
  channel.physical_max = 200.0;
  channel.samples = testing::sine(16.0, fs, samples, 150.0);
  file.channels.push_back(channel);
  return file;
}

TEST(Edf, HeaderSizeIsCanonical) {
  const auto bytes = encode_edf(make_file());
  // 256 main + 256 per signal.
  ASSERT_GE(bytes.size(), 512u);
  // Version field is "0" padded to 8 chars.
  EXPECT_EQ(bytes[0], '0');
  EXPECT_EQ(bytes[1], ' ');
}

TEST(Edf, RoundTripPreservesMetadata) {
  auto file = make_file();
  file.patient_id = "P001 M 01-JAN-1980 Doe";
  file.start_date = "02.03.21";
  file.start_time = "11.22.33";
  const auto decoded = decode_edf(encode_edf(file));
  EXPECT_EQ(decoded.patient_id, file.patient_id);
  EXPECT_EQ(decoded.start_date, file.start_date);
  EXPECT_EQ(decoded.start_time, file.start_time);
  ASSERT_EQ(decoded.channels.size(), 1u);
  EXPECT_EQ(decoded.channels[0].label, "EEG Fp1");
  EXPECT_DOUBLE_EQ(decoded.sample_rate_hz, 256.0);
}

TEST(Edf, RoundTripPreservesSamplesWithin16BitQuantization) {
  const auto file = make_file(1024);
  const auto decoded = decode_edf(encode_edf(file));
  ASSERT_EQ(decoded.channels[0].samples.size(), 1024u);
  // Quantization step = range / 2^16.
  const double step = 400.0 / 65535.0;
  for (std::size_t i = 0; i < 1024; ++i) {
    EXPECT_NEAR(decoded.channels[0].samples[i],
                file.channels[0].samples[i], step);
  }
}

TEST(Edf, MultiChannelRoundTrip) {
  EdfFile file = make_file(512);
  EdfChannel second = file.channels[0];
  second.label = "EEG Fp2";
  for (double& v : second.samples) {
    v = -v;
  }
  file.channels.push_back(second);
  const auto decoded = decode_edf(encode_edf(file));
  ASSERT_EQ(decoded.channels.size(), 2u);
  EXPECT_EQ(decoded.channels[1].label, "EEG Fp2");
  EXPECT_NEAR(decoded.channels[0].samples[10],
              -decoded.channels[1].samples[10], 0.02);
}

TEST(Edf, PartialFinalRecordIsZeroPadded) {
  const auto file = make_file(300);  // 1.17 records at 256/record
  const auto decoded = decode_edf(encode_edf(file));
  ASSERT_EQ(decoded.channels[0].samples.size(), 512u);  // 2 whole records
  EXPECT_NEAR(decoded.channels[0].samples[400], 0.0, 0.01);
}

TEST(Edf, OutOfRangeSamplesAreClamped) {
  EdfFile file = make_file(256);
  file.channels[0].samples[0] = 1e6;
  file.channels[0].samples[1] = -1e6;
  const auto decoded = decode_edf(encode_edf(file));
  EXPECT_NEAR(decoded.channels[0].samples[0], 200.0, 0.01);
  EXPECT_NEAR(decoded.channels[0].samples[1], -200.0, 0.01);
}

TEST(Edf, WriteReadDiskRoundTrip) {
  testing::TempDir dir("edf");
  const auto path = dir.path() / "test.edf";
  const auto file = make_file();
  write_edf(path, file);
  const auto loaded = read_edf(path);
  EXPECT_EQ(loaded.channels[0].samples.size(), 512u);
}

TEST(Edf, ReadMissingFileThrowsIoError) {
  EXPECT_THROW(read_edf("/nonexistent/path/file.edf"), IoError);
}

TEST(Edf, EncodeRejectsInvalidInput) {
  EdfFile empty;
  EXPECT_THROW(encode_edf(empty), InvalidArgument);

  auto file = make_file();
  file.channels[0].physical_max = file.channels[0].physical_min;
  EXPECT_THROW(encode_edf(file), InvalidArgument);

  file = make_file();
  EdfChannel short_channel = file.channels[0];
  short_channel.samples.resize(10);
  file.channels.push_back(short_channel);
  EXPECT_THROW(encode_edf(file), InvalidArgument);

  file = make_file();
  file.record_duration_sec = 0.7;  // 179.2 samples per record
  EXPECT_THROW(encode_edf(file), InvalidArgument);
}

TEST(Edf, DecodeRejectsTruncatedHeader) {
  auto bytes = encode_edf(make_file());
  bytes.resize(100);
  EXPECT_THROW(decode_edf(bytes), CorruptData);
}

TEST(Edf, DecodeRejectsTruncatedPayload) {
  auto bytes = encode_edf(make_file());
  bytes.resize(bytes.size() - 64);
  EXPECT_THROW(decode_edf(bytes), CorruptData);
}

TEST(Edf, DecodeRejectsBadVersion) {
  auto bytes = encode_edf(make_file());
  bytes[0] = 'X';
  EXPECT_THROW(decode_edf(bytes), CorruptData);
}

TEST(Edf, DecodeRejectsGarbageNumericField) {
  auto bytes = encode_edf(make_file());
  // Record-count field sits at offset 236 (8+80+80+8+8+8+44).
  for (int i = 0; i < 8; ++i) {
    bytes[236 + i] = '?';
  }
  EXPECT_THROW(decode_edf(bytes), CorruptData);
}

}  // namespace
}  // namespace emap::edf
