#include "emap/baselines/fft_search.hpp"

#include <gtest/gtest.h>

#include "emap/baselines/exhaustive.hpp"
#include "support/test_util.hpp"

namespace emap::baselines {
namespace {

TEST(FftSearch, MatchesExhaustiveOnPlantedSignal) {
  mdb::MdbStore store;
  const auto probe = testing::sine(21.0, 256.0, 256, 5.0);
  mdb::SignalSet set;
  set.samples = testing::noise(1, mdb::kSignalSetLength, 5.0);
  for (std::size_t i = 0; i < 256; ++i) {
    set.samples[333 + i] = probe[i] * 0.9 + 0.2;
  }
  store.insert(std::move(set));
  FftSearch fft_search{core::EmapConfig{}};
  const auto result = fft_search.search(probe, store);
  ASSERT_FALSE(result.matches.empty());
  EXPECT_EQ(result.matches.front().beta, 333u);
  EXPECT_GT(result.matches.front().omega, 0.95);
}

class FftVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FftVsExhaustive, IdenticalCandidateSets) {
  const auto store = testing::small_mdb(1);
  synth::EvalInputSpec spec;
  spec.cls = (GetParam() % 2 == 0) ? synth::AnomalyClass::kSeizure
                                   : synth::AnomalyClass::kNormal;
  spec.seed = GetParam();
  spec.duration_sec = 130.0;
  spec.onset_sec = 120.0;
  const auto input = synth::make_eval_input(spec);
  dsp::FirFilter filter{core::EmapConfig{}.filter};
  const auto filtered = filter.apply(input.samples);
  const std::span<const double> probe(filtered.data() + 110 * 256, 256);

  core::EmapConfig config;
  config.delta = 0.6;
  config.top_k = 1000000;
  const auto fft = FftSearch(config).search(probe, store);
  const auto direct = ExhaustiveSearch(config).search(probe, store);

  ASSERT_EQ(fft.matches.size(), direct.matches.size());
  for (std::size_t i = 0; i < fft.matches.size(); ++i) {
    EXPECT_EQ(fft.matches[i].set_id, direct.matches[i].set_id);
    EXPECT_EQ(fft.matches[i].beta, direct.matches[i].beta);
    EXPECT_NEAR(fft.matches[i].omega, direct.matches[i].omega, 1e-9);
  }
}

TEST_P(FftVsExhaustive, FewerMultipliesThanDirect) {
  const auto store = testing::small_mdb(1);
  const auto probe = testing::noise(GetParam(), 256, 5.0);
  core::EmapConfig config;
  const auto fft = FftSearch(config).search(probe, store);
  const auto direct = ExhaustiveSearch(config).search(probe, store);
  EXPECT_LT(fft.stats.mac_ops, direct.stats.mac_ops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftVsExhaustive,
                         ::testing::Range<std::uint64_t>(1, 5));

TEST(FftSearch, DegenerateProbeMatchesNothing) {
  const auto store = testing::small_mdb(1);
  const std::vector<double> flat(256, 3.0);
  FftSearch search{core::EmapConfig{}};
  EXPECT_TRUE(search.search(flat, store).matches.empty());
}

TEST(FftSearch, ParallelMatchesSerial) {
  const auto store = testing::small_mdb(1);
  const auto probe = testing::sine(17.0, 256.0, 256, 7.0);
  core::EmapConfig config;
  config.delta = 0.5;
  ThreadPool pool(4);
  const auto serial = FftSearch(config, nullptr).search(probe, store);
  const auto parallel = FftSearch(config, &pool).search(probe, store);
  ASSERT_EQ(serial.matches.size(), parallel.matches.size());
  for (std::size_t i = 0; i < serial.matches.size(); ++i) {
    EXPECT_EQ(serial.matches[i].set_id, parallel.matches[i].set_id);
    EXPECT_EQ(serial.matches[i].beta, parallel.matches[i].beta);
  }
}

TEST(FftSearch, EmptyStoreGivesEmptyResult) {
  mdb::MdbStore store;
  FftSearch search{core::EmapConfig{}};
  EXPECT_TRUE(
      search.search(testing::noise(9, 256), store).matches.empty());
}

}  // namespace
}  // namespace emap::baselines
