#include "emap/baselines/exhaustive.hpp"

#include <gtest/gtest.h>

#include "support/test_util.hpp"

namespace emap::baselines {
namespace {

TEST(Exhaustive, EvaluatesEveryFullOverlapOffset) {
  mdb::MdbStore store;
  mdb::SignalSet set;
  set.samples = testing::noise(1, mdb::kSignalSetLength, 5.0);
  store.insert(std::move(set));
  ExhaustiveSearch search{core::EmapConfig{}};
  const auto probe = testing::noise(2, 256, 5.0);
  const auto result = search.search(probe, store);
  // Paper Section V-B / Algorithm 1 line 4: beta < len(S) - len(I) -> 744.
  EXPECT_EQ(result.stats.correlation_evals, 744u);
}

TEST(Exhaustive, FindsGlobalBestOffset) {
  mdb::MdbStore store;
  const auto probe = testing::sine(21.0, 256.0, 256, 5.0);
  mdb::SignalSet set;
  set.samples = testing::noise(3, mdb::kSignalSetLength, 5.0);
  for (std::size_t i = 0; i < 256; ++i) {
    set.samples[333 + i] = probe[i] * 0.9 + 0.2;
  }
  store.insert(std::move(set));
  ExhaustiveSearch search{core::EmapConfig{}};
  const auto result = search.search(probe, store);
  ASSERT_FALSE(result.matches.empty());
  EXPECT_EQ(result.matches.front().beta, 333u);
  EXPECT_GT(result.matches.front().omega, 0.95);
}

TEST(Exhaustive, MoreEvaluationsThanAlgorithm1) {
  const auto store = testing::small_mdb(1);
  const auto probe = testing::sine(17.0, 256.0, 256, 7.0);
  core::EmapConfig config;
  const auto exhaustive = ExhaustiveSearch(config).search(probe, store);
  const auto algorithm1 =
      core::CrossCorrelationSearch(config).search(probe, store);
  EXPECT_GT(exhaustive.stats.correlation_evals,
            5 * algorithm1.stats.correlation_evals);
}

TEST(Exhaustive, ParallelMatchesSerial) {
  const auto store = testing::small_mdb(1);
  const auto probe = testing::sine(17.0, 256.0, 256, 7.0);
  core::EmapConfig config;
  config.delta = 0.4;
  ThreadPool pool(4);
  const auto serial = ExhaustiveSearch(config, nullptr).search(probe, store);
  const auto parallel = ExhaustiveSearch(config, &pool).search(probe, store);
  ASSERT_EQ(serial.matches.size(), parallel.matches.size());
  for (std::size_t i = 0; i < serial.matches.size(); ++i) {
    EXPECT_EQ(serial.matches[i].set_id, parallel.matches[i].set_id);
    EXPECT_EQ(serial.matches[i].beta, parallel.matches[i].beta);
  }
}

TEST(Exhaustive, EmptyStoreGivesEmptyResult) {
  mdb::MdbStore store;
  ExhaustiveSearch search{core::EmapConfig{}};
  EXPECT_TRUE(search.search(testing::noise(4, 256), store).matches.empty());
}

}  // namespace
}  // namespace emap::baselines
