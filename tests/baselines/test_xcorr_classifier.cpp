#include "emap/baselines/xcorr_classifier.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::baselines {
namespace {

std::vector<synth::Recording> labeled_recordings(std::uint64_t seed) {
  synth::RecordingGenerator gen;
  std::vector<synth::Recording> recordings;
  for (int i = 0; i < 4; ++i) {
    synth::RecordingSpec seizure;
    seizure.cls = synth::AnomalyClass::kSeizure;
    seizure.archetype = static_cast<std::uint32_t>(i);
    seizure.duration_sec = 150.0;
    seizure.onset_sec = 120.0;
    seizure.preictal_label_sec = 60.0;
    seizure.seed = seed + static_cast<std::uint64_t>(i);
    recordings.push_back(gen.generate(seizure));

    synth::RecordingSpec normal;
    normal.cls = synth::AnomalyClass::kNormal;
    normal.archetype = static_cast<std::uint32_t>(i);
    normal.duration_sec = 150.0;
    normal.seed = seed + 50 + static_cast<std::uint64_t>(i);
    recordings.push_back(gen.generate(normal));
  }
  return recordings;
}

TEST(XcorrClassifier, RejectsBadConfig) {
  XcorrClassifierConfig config;
  config.templates_per_class = 0;
  EXPECT_THROW(XcorrClassifier{config}, InvalidArgument);
}

TEST(XcorrClassifier, TrainRequiresBothClasses) {
  synth::RecordingGenerator gen;
  synth::RecordingSpec normal;
  normal.cls = synth::AnomalyClass::kNormal;
  normal.duration_sec = 30.0;
  normal.seed = 3;
  XcorrClassifier classifier;
  EXPECT_THROW(classifier.train({gen.generate(normal)}), InvalidArgument);
}

TEST(XcorrClassifier, PredictBeforeTrainingThrows) {
  XcorrClassifier classifier;
  EXPECT_THROW(classifier.predict_proba(testing::noise(1, 256)),
               InvalidArgument);
}

TEST(XcorrClassifier, BuildsBoundedTemplateBank) {
  XcorrClassifierConfig config;
  config.templates_per_class = 5;
  XcorrClassifier classifier(config);
  classifier.train(labeled_recordings(100));
  EXPECT_TRUE(classifier.trained());
  EXPECT_LE(classifier.template_count(), 10u);
  EXPECT_GE(classifier.template_count(), 2u);
}

TEST(XcorrClassifier, SeparatesIctalFromBackground) {
  XcorrClassifier classifier;
  classifier.train(labeled_recordings(200));

  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.duration_sec = 150.0;
  spec.onset_sec = 120.0;
  spec.seed = 777;  // unseen instance
  const auto recording = gen.generate(spec);

  // Count correct decisions over late-prodrome vs clean background windows.
  int correct = 0;
  int total = 0;
  for (std::size_t w = 110; w < 118; ++w) {  // deep pre-ictal
    ++total;
    if (classifier.predict(std::span<const double>(
            recording.samples.data() + w * 256, 256))) {
      ++correct;
    }
  }
  synth::RecordingSpec normal_spec;
  normal_spec.cls = synth::AnomalyClass::kNormal;
  normal_spec.duration_sec = 60.0;
  normal_spec.seed = 778;
  const auto normal = gen.generate(normal_spec);
  for (std::size_t w = 10; w < 18; ++w) {
    ++total;
    if (!classifier.predict(std::span<const double>(
            normal.samples.data() + w * 256, 256))) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST(XcorrClassifier, ProbabilityBounds) {
  XcorrClassifier classifier;
  classifier.train(labeled_recordings(300));
  const double p = classifier.predict_proba(testing::noise(5, 256, 7.0));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace emap::baselines
