#include "emap/baselines/iot_predictor.hpp"

#include <gtest/gtest.h>

#include "emap/common/error.hpp"
#include "support/test_util.hpp"

namespace emap::baselines {
namespace {

std::vector<synth::Recording> training_set(std::size_t per_class,
                                           std::uint64_t seed) {
  synth::RecordingGenerator gen;
  std::vector<synth::Recording> recordings;
  for (std::size_t i = 0; i < per_class; ++i) {
    synth::RecordingSpec seizure;
    seizure.cls = synth::AnomalyClass::kSeizure;
    seizure.archetype = static_cast<std::uint32_t>(i % 4);
    seizure.duration_sec = 120.0;
    seizure.onset_sec = 100.0;
    seizure.seed = seed + i;
    recordings.push_back(gen.generate(seizure));

    synth::RecordingSpec normal;
    normal.cls = synth::AnomalyClass::kNormal;
    normal.archetype = static_cast<std::uint32_t>(i % 4);
    normal.duration_sec = 120.0;
    normal.seed = seed + 100 + i;
    recordings.push_back(gen.generate(normal));
  }
  return recordings;
}

TEST(IotPredictor, RejectsBadConfig) {
  IotPredictorConfig config;
  config.votes_needed = 10;
  config.vote_window = 5;
  EXPECT_THROW(IotPredictor{config}, InvalidArgument);
}

TEST(IotPredictor, ObserveBeforeTrainingThrows) {
  IotPredictor predictor;
  EXPECT_THROW(predictor.observe_window(testing::noise(1, 256)),
               InvalidArgument);
}

TEST(IotPredictor, TrainRejectsEmpty) {
  IotPredictor predictor;
  EXPECT_THROW(predictor.train({}), InvalidArgument);
}

TEST(IotPredictor, DetectsPreictalStream) {
  IotPredictor predictor;
  predictor.train(training_set(4, 500));
  ASSERT_TRUE(predictor.trained());

  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.duration_sec = 120.0;
  spec.onset_sec = 100.0;
  spec.seed = 999;
  const auto recording = gen.generate(spec);
  bool alarmed_before_onset = false;
  for (std::size_t w = 0; w * 256 + 256 <= recording.samples.size(); ++w) {
    const double t = static_cast<double>(w);
    if (t >= spec.onset_sec) {
      break;
    }
    (void)predictor.observe_window(std::span<const double>(
        recording.samples.data() + w * 256, 256));
    if (predictor.alarm()) {
      alarmed_before_onset = true;
      break;
    }
  }
  EXPECT_TRUE(alarmed_before_onset);
}

TEST(IotPredictor, QuietOnNormalStream) {
  IotPredictor predictor;
  predictor.train(training_set(4, 600));

  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kNormal;
  spec.duration_sec = 120.0;
  spec.seed = 1234;
  const auto recording = gen.generate(spec);
  for (std::size_t w = 0; w * 256 + 256 <= recording.samples.size(); ++w) {
    (void)predictor.observe_window(std::span<const double>(
        recording.samples.data() + w * 256, 256));
  }
  EXPECT_FALSE(predictor.alarm());
}

TEST(IotPredictor, ResetStreamClearsAlarm) {
  IotPredictor predictor;
  predictor.train(training_set(3, 700));
  // Force votes through a pre-ictal stream until alarm, then reset.
  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.duration_sec = 110.0;
  spec.onset_sec = 100.0;
  spec.seed = 42;
  const auto recording = gen.generate(spec);
  for (std::size_t w = 80; w < 100; ++w) {
    (void)predictor.observe_window(std::span<const double>(
        recording.samples.data() + w * 256, 256));
  }
  predictor.reset_stream();
  EXPECT_FALSE(predictor.alarm());
}

TEST(IotPredictor, MlpBackendDetectsPreictalStream) {
  // hidden_units > 0 swaps the logistic model for the MLP ("[11]-style"
  // cloud DL stand-in); the streaming protocol is unchanged.
  IotPredictorConfig config;
  config.hidden_units = 12;
  IotPredictor predictor(config);
  predictor.train(training_set(4, 900));
  ASSERT_TRUE(predictor.trained());

  synth::RecordingGenerator gen;
  synth::RecordingSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.duration_sec = 120.0;
  spec.onset_sec = 100.0;
  spec.seed = 901;
  const auto recording = gen.generate(spec);
  bool alarmed = false;
  for (std::size_t w = 0; w * 256 + 256 <= recording.samples.size(); ++w) {
    if (static_cast<double>(w) >= spec.onset_sec) {
      break;
    }
    (void)predictor.observe_window(std::span<const double>(
        recording.samples.data() + w * 256, 256));
    if (predictor.alarm()) {
      alarmed = true;
      break;
    }
  }
  EXPECT_TRUE(alarmed);
}

TEST(IotPredictor, ProbabilityIsInUnitInterval) {
  IotPredictor predictor;
  predictor.train(training_set(2, 800));
  const double p = predictor.observe_window(testing::noise(9, 256, 7.0));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace emap::baselines
