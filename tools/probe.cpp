// Calibration probe for the synthetic-EEG / search / tracker stack.
//
// Not part of the CMake build: this is the development utility used to
// calibrate the generator amplitudes, class-variability profiles, and
// predictor thresholds against the paper's headline numbers.  Build by
// hand when re-calibrating:
//   g++ -std=c++20 -O2 -Isrc tools/probe.cpp build/src/libemap_*.a \
//       -lpthread -o build/probe
#include <cstdio>
#include <span>

#include "emap/core/pipeline.hpp"
#include "emap/dsp/fir.hpp"
#include "emap/dsp/stats.hpp"
#include "emap/mdb/builder.hpp"
#include "emap/synth/corpus.hpp"

using namespace emap;

int main() {
  synth::RecordingGenerator gen;
  synth::RecordingSpec normal_spec;
  normal_spec.cls = synth::AnomalyClass::kNormal;
  normal_spec.duration_sec = 30.0;
  normal_spec.seed = 11;
  auto normal = gen.generate(normal_spec);
  auto filter = dsp::FirFilter::paper_bandpass();
  auto filtered = filter.apply(normal.samples);
  std::span<const double> tail(filtered.data() + 2000, filtered.size() - 2000);
  std::printf("normal filtered RMS = %.3f (target ~7)\n", dsp::rms(tail));

  auto corpora = synth::standard_corpora(24);
  mdb::MdbBuilder builder;
  for (const auto& corpus : corpora) {
    auto recordings = synth::generate_corpus(corpus);
    for (std::size_t i = 0; i < recordings.size(); ++i) {
      builder.add_recording(recordings[i], corpus.name,
                            static_cast<std::uint32_t>(i));
    }
  }
  auto store = builder.take_store();
  std::printf("MDB: %zu sets, %zu anomalous (%.2f)\n", store.size(),
              store.count_anomalous(),
              double(store.count_anomalous()) / double(store.size()));

  core::EmapConfig config;
  core::PipelineOptions opt;
  opt.stop_on_alarm = true;
  core::EmapPipeline pipeline(std::move(store), config, opt);

  // One seizure trajectory in detail.
  synth::EvalInputSpec spec;
  spec.cls = synth::AnomalyClass::kSeizure;
  spec.seed = 5;
  auto input = synth::make_eval_input(spec);
  auto res = pipeline.run(input);
  std::printf("seizure run: calls=%zu predicted=%d alarm=%.0f s (onset %.0f)\n",
              res.cloud_calls, res.anomaly_predicted ? 1 : 0,
              res.first_alarm_sec, spec.onset_sec);
  std::printf("delta_initial=%.2f (CS %.2f) track mean %.2f max %.2f\n",
              res.timings.delta_initial_sec, res.timings.delta_cs_sec,
              res.timings.mean_track_sec, res.timings.max_track_sec);
  std::printf("PA trajectory (every 10 s): ");
  for (std::size_t i = 9; i < res.iterations.size(); i += 10) {
    std::printf("%.2f ", res.iterations[i].anomaly_probability);
  }
  std::printf("\n");

  // Lead-time sensitivity per class + FPR: one full run per input; the
  // alarm latches so "predicted at lead L" == first_alarm <= onset - L.
  const double leads[] = {15, 30, 45, 60, 120};
  for (auto cls : {synth::AnomalyClass::kSeizure,
                   synth::AnomalyClass::kEncephalopathy,
                   synth::AnomalyClass::kStroke}) {
    std::printf("%-15s", synth::anomaly_name(cls));
    const int n = 20;
    std::vector<double> alarms;
    double onset = 0.0;
    for (int s = 0; s < n; ++s) {
      synth::EvalInputSpec e;
      e.cls = cls;
      e.seed = 1000 + static_cast<std::uint64_t>(s);
      onset = e.onset_sec;
      auto in = synth::make_eval_input(e);
      auto r = pipeline.run(in, onset);  // monitor up to onset
      alarms.push_back(r.anomaly_predicted ? r.first_alarm_sec : 1e18);
    }
    for (double lead : leads) {
      int hits = 0;
      for (double a : alarms) {
        if (a <= onset - lead) ++hits;
      }
      std::printf(" lead%3.0f=%.2f", lead, double(hits) / n);
    }
    std::printf("\n");
  }
  int fp = 0;
  const int nn = 40;
  for (int s = 0; s < nn; ++s) {
    synth::EvalInputSpec e;
    e.cls = synth::AnomalyClass::kNormal;
    e.seed = 2000 + static_cast<std::uint64_t>(s);
    auto in = synth::make_eval_input(e);
    auto r = pipeline.run(in);
    if (r.anomaly_predicted) ++fp;
  }
  std::printf("normal FPR = %.2f (target ~0.15)\n", double(fp) / nn);
  return 0;
}
