// tracecat: reconstruct per-window critical paths from trace artifacts.
//
//   tracecat <spans.jsonl> [--flight <dump.jsonl>] [--json]
//
// Loads a span log written by `emapctl ... --spans-out` (and optionally a
// flight-recorder dump from `--flight-out`), groups records by trace id,
// and prints each window's Eq. 4 decomposition — uplink, cloud queue wait,
// scan, downlink — plus edge compute and retry tax.  `--json` switches the
// table for one JSONL record per trace (machine-readable, used by CI).
// Exits 0 on success, 2 on usage or I/O errors; malformed lines inside the
// files are skipped and counted, never fatal (a crash dump may end
// mid-line).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "emap/common/build_info.hpp"
#include "emap/obs/tracecat.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spans.jsonl> [--flight <dump.jsonl>] [--json]\n"
               "  --flight  merge a flight-recorder dump into the paths\n"
               "  --json    emit one JSONL record per trace instead of the "
               "table\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spans_path;
  std::string flight_path;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tracecat: --flight needs a value\n");
        return 2;
      }
      flight_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tracecat: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (spans_path.empty()) {
      spans_path = arg;
    } else {
      std::fprintf(stderr, "tracecat: unexpected argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (spans_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const auto spans = emap::obs::load_spans_jsonl(spans_path);
    std::vector<emap::obs::ParsedFlightEvent> events;
    std::string dump_reason;
    std::size_t flight_skipped = 0;
    if (!flight_path.empty()) {
      const auto flight = emap::obs::load_flight_jsonl(flight_path);
      events = flight.events;
      dump_reason = flight.dump_reason;
      flight_skipped = flight.skipped_lines;
    }
    const auto paths = emap::obs::build_critical_paths(spans.spans, events);
    if (json) {
      std::fputs(emap::obs::critical_path_jsonl(paths).c_str(), stdout);
    } else {
      std::printf("tracecat (build %s)\n", emap::build_info::kGitSha);
      if (!dump_reason.empty()) {
        std::printf("flight dump reason: %s\n", dump_reason.c_str());
      }
      std::fputs(emap::obs::critical_path_table(paths).c_str(), stdout);
      if (spans.skipped_lines > 0 || flight_skipped > 0) {
        std::printf("skipped %zu span line(s), %zu flight line(s)\n",
                    spans.skipped_lines, flight_skipped);
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tracecat: %s\n", error.what());
    return 2;
  }
}
