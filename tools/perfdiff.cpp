// perfdiff: perf-regression gate over bench headline records.
//
//   perfdiff --baseline bench/baselines --current out/bench [--threshold 0.1]
//
// Both sides accept either a directory (every BENCH_*.jsonl inside is
// loaded) or a single .jsonl file.  Prints the per-metric delta table and
// exits 0 when no metric moved past the threshold in its bad direction,
// 1 when at least one regressed, 2 on usage or I/O errors.  CI runs this
// against the committed baselines after the perf-smoke bench pass (see
// docs/performance.md for the baseline-refresh policy).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "emap/common/build_info.hpp"
#include "emap/obs/perfdiff.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline <dir|file> --current <dir|file>\n"
      "          [--threshold <frac>] [--ignore-config]\n"
      "          [--require <bench:metric:min>]...\n"
      "  --threshold      relative regression that fails (default 0.10)\n"
      "  --ignore-config  compare even when config fingerprints differ\n"
      "  --require        absolute floor on a current-side metric\n"
      "                   (repeatable; skipped with a note when the bench\n"
      "                   or metric is absent, e.g. AVX2-less hosts)\n",
      argv0);
}

// Loads one side leniently: malformed records are collected into `errors`
// and skipped, so the diff still covers every readable bench and CI sees
// ALL regressions (plus the bad lines) in a single run rather than dying
// at the first corrupt record.
std::vector<emap::obs::BenchRecord> load_side(
    const std::filesystem::path& path, std::vector<std::string>& errors) {
  std::vector<emap::obs::BenchRecord> records;
  if (std::filesystem::is_directory(path)) {
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".jsonl") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      const auto loaded = emap::obs::load_bench_records_lenient(file, errors);
      records.insert(records.end(), loaded.begin(), loaded.end());
    }
  } else {
    records = emap::obs::load_bench_records_lenient(path, errors);
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path baseline_path;
  std::filesystem::path current_path;
  emap::obs::PerfDiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perfdiff: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--current") {
      current_path = next();
    } else if (arg == "--threshold") {
      options.threshold = std::strtod(next(), nullptr);
    } else if (arg == "--ignore-config") {
      options.check_fingerprint = false;
    } else if (arg == "--require") {
      try {
        options.requirements.push_back(
            emap::obs::parse_perf_requirement(next()));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "perfdiff: %s\n", error.what());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "perfdiff: unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (options.threshold <= 0.0) {
    std::fprintf(stderr, "perfdiff: threshold must be > 0\n");
    return 2;
  }

  try {
    std::vector<std::string> parse_errors;
    const auto baseline = load_side(baseline_path, parse_errors);
    const auto current = load_side(current_path, parse_errors);
    if (baseline.empty()) {
      std::fprintf(stderr, "perfdiff: no baseline records under %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("perfdiff (build %s, %s)\n", emap::build_info::kGitSha,
                emap::build_info::kCompiler);
    const auto result = emap::obs::perf_diff(baseline, current, options);
    std::fputs(emap::obs::format_perf_diff(result, options).c_str(), stdout);
    for (const std::string& error : parse_errors) {
      std::printf("bad record: %s\n", error.c_str());
    }
    // Corrupt records fail the gate too (a skipped current-side record
    // could hide a regression), but only after the full table printed.
    if (!result.ok()) {
      return 1;
    }
    return parse_errors.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "perfdiff: %s\n", error.what());
    return 2;
  }
}
