// emapreport: render a post-run dashboard from time-series artifacts.
//
//   emapreport <series.jsonl> [--alerts <alerts.jsonl>] [--html <out.html>]
//              [--series-filter <substring>] [--cusum-h <stddevs>]
//
// Loads a time-series JSONL export written by `emapctl ... --series-out`
// (and optionally the alert-transition log from `--alerts-out`), prints an
// ASCII sparkline table with per-series CUSUM changepoints, and — with
// --html — additionally writes a self-contained HTML page with inline SVG
// charts and alert markers.  Exits 0 on success, 2 on usage or I/O
// errors; malformed lines inside the files are skipped and counted, never
// fatal.
#include <cstdio>
#include <fstream>
#include <string>

#include "emap/obs/dashboard.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <series.jsonl> [--alerts <alerts.jsonl>] [--html <out>]\n"
      "          [--series-filter <substring>] [--cusum-h <stddevs>]\n"
      "  --alerts         annotate the report with alert transitions\n"
      "  --html           also write a self-contained HTML dashboard\n"
      "  --series-filter  render only series whose key contains this\n"
      "  --cusum-h        CUSUM decision threshold in stddevs (default 5)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string series_path;
  std::string alerts_path;
  std::string html_path;
  emap::obs::ReportOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "emapreport: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--alerts") {
      alerts_path = value("--alerts");
    } else if (arg == "--html") {
      html_path = value("--html");
    } else if (arg == "--series-filter") {
      options.series_filter = value("--series-filter");
    } else if (arg == "--cusum-h") {
      options.cusum_h = std::atof(value("--cusum-h"));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "emapreport: unknown argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (series_path.empty()) {
      series_path = arg;
    } else {
      std::fprintf(stderr, "emapreport: unexpected argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (series_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const auto series = emap::obs::load_series_jsonl(series_path);
    emap::obs::AlertLoadResult alerts;
    if (!alerts_path.empty()) {
      alerts = emap::obs::load_alerts_jsonl(alerts_path);
    }
    std::fputs(
        emap::obs::render_ascii_report(series, alerts, options).c_str(),
        stdout);
    if (!html_path.empty()) {
      std::ofstream html(html_path);
      if (!html) {
        std::fprintf(stderr, "emapreport: cannot write '%s'\n",
                     html_path.c_str());
        return 2;
      }
      html << emap::obs::render_html_report(series, alerts, options);
      std::fprintf(stdout, "\nhtml report: %s\n", html_path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "emapreport: %s\n", error.what());
    return 2;
  }
  return 0;
}
